/**
 * @file
 * The TinyX86 interpreter and its Pin-style instrumentation interface.
 */

#ifndef TEA_VM_MACHINE_HH
#define TEA_VM_MACHINE_HH

#include <functional>
#include <vector>

#include "isa/program.hh"
#include "vm/memory.hh"

namespace tea {

/** How one instruction transferred control (or failed to). */
enum class EdgeKind : uint8_t
{
    Sequential,     ///< fell into the next instruction (not a branch)
    BranchTaken,    ///< conditional jump, taken
    BranchNotTaken, ///< conditional jump, fell through
    Jump,           ///< unconditional jmp (direct or indirect)
    Call,           ///< call (direct or indirect)
    Ret,            ///< ret
    Halt,           ///< halt executed; dst is invalid
};

/** True when the kind represents an actual control transfer. */
inline bool
isTransfer(EdgeKind kind)
{
    return kind != EdgeKind::Sequential && kind != EdgeKind::Halt;
}

/**
 * One dynamic control-flow event, as a Pin-like runtime would deliver it
 * to instrumentation placed on the taken and fall-through edges (§4.1).
 */
struct EdgeEvent
{
    Addr src;          ///< address of the transferring instruction
    Addr fallthrough;  ///< address of the instruction after src
    Addr dst;          ///< destination (new PC)
    EdgeKind kind;
    uint32_t repIterations; ///< REP iteration count of src (0 if not REP)
};

/** Per-edge instrumentation callback. */
using EdgeHook = std::function<void(const EdgeEvent &)>;

/** Outcome of Machine::run*(). */
enum class RunExit
{
    Halted,    ///< program executed Halt
    StepLimit, ///< the step budget ran out
};

/**
 * The TinyX86 interpreter.
 *
 * Substitutes for the "runtime environment" role of Pin in the paper: it
 * executes the unmodified guest program and can deliver an event at every
 * taken / fall-through edge to a tool (e.g. the TEA replayer/recorder).
 *
 * Two dynamic instruction counters are maintained simultaneously because
 * StarDBT and Pin disagree on REP-prefixed instructions (§4.1): StarDBT
 * counts a REP as one instruction, Pin counts every iteration.
 */
class Machine
{
  public:
    /** Bind a program; decodes the layout and resets machine state. */
    explicit Machine(const Program &prog);

    /** Reset registers, flags, memory, and counters; reload data. */
    void reset();

    /**
     * Run without instrumentation (the "Native" configuration of
     * Table 4). @return why execution stopped.
     */
    RunExit run(uint64_t max_steps = kDefaultStepLimit);

    /**
     * Run delivering an EdgeEvent for every control transfer. When
     * split_at_special is true, Sequential events are also delivered
     * around CPUID/REP instructions, matching Pin's dynamic
     * basic-block boundaries (§4.1).
     */
    RunExit runHooked(const EdgeHook &hook, bool split_at_special,
                      uint64_t max_steps = kDefaultStepLimit);

    /** @name Architectural state accessors */
    /// @{
    uint32_t reg(Reg r) const { return regs[static_cast<size_t>(r)]; }
    void setReg(Reg r, uint32_t v) { regs[static_cast<size_t>(r)] = v; }
    const Flags &flags() const { return eflags; }
    Addr pc() const { return pcReg; }
    void setPc(Addr addr) { pcReg = addr; }
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }
    bool halted() const { return isHalted; }
    /// @}

    /** Values written by Out instructions, in order (observable output). */
    const std::vector<uint32_t> &output() const { return outPort; }

    /** Dynamic instructions, counting each REP as one (StarDBT policy). */
    uint64_t icountRepAsOne() const { return countRepAsOne; }

    /** Dynamic instructions, counting REP per iteration (Pin policy). */
    uint64_t icountRepPerIter() const { return countRepPerIter; }

    /** The bound program. */
    const Program &program() const { return prog; }

    /** Initial stack pointer given to programs. */
    static constexpr Addr kStackTop = 0x7ff00000;

    /** Default step budget; a backstop against runaway guests. */
    static constexpr uint64_t kDefaultStepLimit = 2'000'000'000ull;

    /**
     * Execute exactly one instruction at the current PC.
     * @return the edge event describing what the instruction did.
     */
    EdgeEvent step();

  private:
    uint32_t operandValue(const Operand &op) const;
    Addr effectiveAddr(const MemRef &mem_ref) const;
    void writeOperand(const Operand &op, uint32_t value);
    void setArithFlags(uint32_t result);
    void push(uint32_t value);
    uint32_t pop();

    const Program &prog;

    /** Dense map from (addr - base) to instruction index, or -1. */
    std::vector<int32_t> layout;

    uint32_t regs[kNumRegs] = {};
    Flags eflags;
    Addr pcReg = 0;
    bool isHalted = false;
    Memory mem;
    std::vector<uint32_t> outPort;
    uint64_t countRepAsOne = 0;
    uint64_t countRepPerIter = 0;
};

} // namespace tea

#endif // TEA_VM_MACHINE_HH
