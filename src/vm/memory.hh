/**
 * @file
 * Sparse paged guest memory.
 */

#ifndef TEA_VM_MEMORY_HH
#define TEA_VM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "isa/types.hh"

namespace tea {

/**
 * A sparse, demand-paged 32-bit byte-addressable memory.
 *
 * Pages are allocated on first touch and zero-filled, so workloads can
 * scatter data sections and stacks anywhere in the address space without
 * reserving host memory up front.
 */
class Memory
{
  public:
    static constexpr uint32_t kPageBits = 12;
    static constexpr uint32_t kPageSize = 1u << kPageBits;

    /** Load a byte. */
    uint8_t load8(Addr addr) const;

    /** Store a byte. */
    void store8(Addr addr, uint8_t value);

    /** Load a little-endian 32-bit word (may straddle pages). */
    uint32_t load32(Addr addr) const;

    /** Store a little-endian 32-bit word (may straddle pages). */
    void store32(Addr addr, uint32_t value);

    /** Drop all pages. */
    void clear();

    /** Number of resident pages (for footprint diagnostics). */
    size_t residentPages() const { return pages.size(); }

  private:
    struct Page
    {
        uint8_t bytes[kPageSize] = {};
    };

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages;
};

} // namespace tea

#endif // TEA_VM_MEMORY_HH
