#include "vm/machine.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

Machine::Machine(const Program &program) : prog(program)
{
    layout.assign(prog.codeBytes(), -1);
    for (size_t i = 0; i < prog.size(); ++i) {
        const Insn &insn = prog.at(i);
        layout[insn.addr - prog.baseAddr()] = static_cast<int32_t>(i);
    }
    reset();
}

void
Machine::reset()
{
    for (auto &r : regs)
        r = 0;
    regs[static_cast<size_t>(Reg::Esp)] = kStackTop;
    eflags = Flags{};
    pcReg = prog.entry();
    isHalted = false;
    mem.clear();
    outPort.clear();
    countRepAsOne = 0;
    countRepPerIter = 0;
    for (const DataWord &d : prog.data())
        mem.store32(d.addr, d.value);
}

Addr
Machine::effectiveAddr(const MemRef &mem_ref) const
{
    Addr addr = static_cast<Addr>(mem_ref.disp);
    if (mem_ref.hasBase)
        addr += regs[static_cast<size_t>(mem_ref.base)];
    if (mem_ref.hasIndex)
        addr += regs[static_cast<size_t>(mem_ref.index)] * mem_ref.scale;
    return addr;
}

uint32_t
Machine::operandValue(const Operand &op) const
{
    switch (op.kind) {
      case OperandKind::Reg:
        return regs[static_cast<size_t>(op.reg)];
      case OperandKind::Imm:
        return static_cast<uint32_t>(op.imm);
      case OperandKind::Mem:
        return mem.load32(effectiveAddr(op.mem));
      case OperandKind::None:
        break;
    }
    panic("reading a None operand");
}

void
Machine::writeOperand(const Operand &op, uint32_t value)
{
    switch (op.kind) {
      case OperandKind::Reg:
        regs[static_cast<size_t>(op.reg)] = value;
        return;
      case OperandKind::Mem:
        mem.store32(effectiveAddr(op.mem), value);
        return;
      default:
        fatal("instruction writes to a non-writable operand");
    }
}

void
Machine::setArithFlags(uint32_t result)
{
    eflags.zf = result == 0;
    eflags.sf = (result >> 31) != 0;
}

void
Machine::push(uint32_t value)
{
    uint32_t &esp = regs[static_cast<size_t>(Reg::Esp)];
    esp -= 4;
    mem.store32(esp, value);
}

uint32_t
Machine::pop()
{
    uint32_t &esp = regs[static_cast<size_t>(Reg::Esp)];
    uint32_t value = mem.load32(esp);
    esp += 4;
    return value;
}

EdgeEvent
Machine::step()
{
    if (isHalted)
        fatal("step() on a halted machine");

    Addr off = pcReg - prog.baseAddr();
    int32_t idx = (off < layout.size()) ? layout[off] : -1;
    if (idx < 0)
        fatal("PC %s is not an instruction start", hex32(pcReg).c_str());
    const Insn &insn = prog.at(static_cast<size_t>(idx));

    EdgeEvent ev;
    ev.src = insn.addr;
    ev.fallthrough = insn.nextAddr();
    ev.dst = insn.nextAddr();
    ev.kind = EdgeKind::Sequential;
    ev.repIterations = 0;

    ++countRepAsOne;
    ++countRepPerIter; // REP cases add their extra iterations below

    auto branch_to = [&](Addr target, EdgeKind kind) {
        ev.dst = target;
        ev.kind = kind;
    };
    auto cond_jump = [&](bool taken) {
        if (taken)
            branch_to(static_cast<Addr>(operandValue(insn.dst)),
                      EdgeKind::BranchTaken);
        else
            ev.kind = EdgeKind::BranchNotTaken;
    };

    const Flags &f = eflags;
    switch (insn.op) {
      case Opcode::Mov:
        writeOperand(insn.dst, operandValue(insn.src));
        break;
      case Opcode::Lea:
        if (insn.src.kind != OperandKind::Mem)
            fatal("lea needs a memory source");
        writeOperand(insn.dst, effectiveAddr(insn.src.mem));
        break;
      case Opcode::Push:
        push(operandValue(insn.dst));
        break;
      case Opcode::Pop:
        writeOperand(insn.dst, pop());
        break;
      case Opcode::Xchg: {
        uint32_t a = operandValue(insn.dst);
        uint32_t b = operandValue(insn.src);
        writeOperand(insn.dst, b);
        writeOperand(insn.src, a);
        break;
      }
      case Opcode::Add: {
        uint32_t a = operandValue(insn.dst);
        uint32_t b = operandValue(insn.src);
        uint32_t r = a + b;
        eflags.cf = r < a;
        eflags.of = (~(a ^ b) & (a ^ r)) >> 31;
        setArithFlags(r);
        writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Adc: {
        uint32_t a = operandValue(insn.dst);
        uint32_t b = operandValue(insn.src);
        uint64_t wide = static_cast<uint64_t>(a) + b + (f.cf ? 1 : 0);
        uint32_t r = static_cast<uint32_t>(wide);
        eflags.cf = (wide >> 32) != 0;
        eflags.of = (~(a ^ b) & (a ^ r)) >> 31;
        setArithFlags(r);
        writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Sub:
      case Opcode::Cmp: {
        uint32_t a = operandValue(insn.dst);
        uint32_t b = operandValue(insn.src);
        uint32_t r = a - b;
        eflags.cf = a < b;
        eflags.of = ((a ^ b) & (a ^ r)) >> 31;
        setArithFlags(r);
        if (insn.op == Opcode::Sub)
            writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Mul: {
        int64_t wide = static_cast<int64_t>(
                           static_cast<int32_t>(operandValue(insn.dst))) *
                       static_cast<int32_t>(operandValue(insn.src));
        uint32_t r = static_cast<uint32_t>(wide);
        eflags.cf = eflags.of = wide != static_cast<int32_t>(r);
        setArithFlags(r);
        writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Div:
      case Opcode::Mod: {
        int32_t a = static_cast<int32_t>(operandValue(insn.dst));
        int32_t b = static_cast<int32_t>(operandValue(insn.src));
        if (b == 0)
            fatal("division by zero at %s", hex32(insn.addr).c_str());
        if (a == INT32_MIN && b == -1)
            fatal("division overflow at %s", hex32(insn.addr).c_str());
        int32_t r = insn.op == Opcode::Div ? a / b : a % b;
        eflags.cf = eflags.of = false;
        setArithFlags(static_cast<uint32_t>(r));
        writeOperand(insn.dst, static_cast<uint32_t>(r));
        break;
      }
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Test: {
        uint32_t a = operandValue(insn.dst);
        uint32_t b = operandValue(insn.src);
        uint32_t r;
        switch (insn.op) {
          case Opcode::And:
          case Opcode::Test: r = a & b; break;
          case Opcode::Or: r = a | b; break;
          default: r = a ^ b; break;
        }
        eflags.cf = eflags.of = false;
        setArithFlags(r);
        if (insn.op != Opcode::Test)
            writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar: {
        uint32_t a = operandValue(insn.dst);
        uint32_t count = operandValue(insn.src) & 31;
        uint32_t r = a;
        if (count != 0) {
            switch (insn.op) {
              case Opcode::Shl:
                eflags.cf = (a >> (32 - count)) & 1;
                r = a << count;
                break;
              case Opcode::Shr:
                eflags.cf = (a >> (count - 1)) & 1;
                r = a >> count;
                break;
              default:
                eflags.cf = (static_cast<int32_t>(a) >> (count - 1)) & 1;
                r = static_cast<uint32_t>(static_cast<int32_t>(a) >> count);
                break;
            }
            eflags.of = false;
            setArithFlags(r);
        }
        writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Not:
        writeOperand(insn.dst, ~operandValue(insn.dst));
        break;
      case Opcode::Neg: {
        uint32_t a = operandValue(insn.dst);
        uint32_t r = 0 - a;
        eflags.cf = a != 0;
        eflags.of = a == 0x80000000u;
        setArithFlags(r);
        writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Inc: {
        uint32_t a = operandValue(insn.dst);
        uint32_t r = a + 1;
        eflags.of = r == 0x80000000u;
        setArithFlags(r); // CF preserved, as on x86
        writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Dec: {
        uint32_t a = operandValue(insn.dst);
        uint32_t r = a - 1;
        eflags.of = r == 0x7fffffffu;
        setArithFlags(r); // CF preserved
        writeOperand(insn.dst, r);
        break;
      }
      case Opcode::Jmp:
        branch_to(static_cast<Addr>(operandValue(insn.dst)),
                  EdgeKind::Jump);
        break;
      case Opcode::Je: cond_jump(f.zf); break;
      case Opcode::Jne: cond_jump(!f.zf); break;
      case Opcode::Jl: cond_jump(f.sf != f.of); break;
      case Opcode::Jle: cond_jump(f.zf || f.sf != f.of); break;
      case Opcode::Jg: cond_jump(!f.zf && f.sf == f.of); break;
      case Opcode::Jge: cond_jump(f.sf == f.of); break;
      case Opcode::Jb: cond_jump(f.cf); break;
      case Opcode::Jbe: cond_jump(f.cf || f.zf); break;
      case Opcode::Ja: cond_jump(!f.cf && !f.zf); break;
      case Opcode::Jae: cond_jump(!f.cf); break;
      case Opcode::Js: cond_jump(f.sf); break;
      case Opcode::Jns: cond_jump(!f.sf); break;
      case Opcode::Call:
        push(insn.nextAddr());
        branch_to(static_cast<Addr>(operandValue(insn.dst)),
                  EdgeKind::Call);
        break;
      case Opcode::Ret:
        branch_to(pop(), EdgeKind::Ret);
        break;
      case Opcode::RepMovs: {
        uint32_t &ecx = regs[static_cast<size_t>(Reg::Ecx)];
        uint32_t &esi = regs[static_cast<size_t>(Reg::Esi)];
        uint32_t &edi = regs[static_cast<size_t>(Reg::Edi)];
        ev.repIterations = ecx;
        while (ecx != 0) {
            mem.store32(edi, mem.load32(esi));
            esi += 4;
            edi += 4;
            --ecx;
        }
        if (ev.repIterations > 1)
            countRepPerIter += ev.repIterations - 1;
        break;
      }
      case Opcode::RepStos: {
        uint32_t &ecx = regs[static_cast<size_t>(Reg::Ecx)];
        uint32_t &edi = regs[static_cast<size_t>(Reg::Edi)];
        uint32_t eax = regs[static_cast<size_t>(Reg::Eax)];
        ev.repIterations = ecx;
        while (ecx != 0) {
            mem.store32(edi, eax);
            edi += 4;
            --ecx;
        }
        if (ev.repIterations > 1)
            countRepPerIter += ev.repIterations - 1;
        break;
      }
      case Opcode::RepScas: {
        uint32_t &ecx = regs[static_cast<size_t>(Reg::Ecx)];
        uint32_t &edi = regs[static_cast<size_t>(Reg::Edi)];
        uint32_t eax = regs[static_cast<size_t>(Reg::Eax)];
        uint32_t iters = 0;
        eflags.zf = false;
        while (ecx != 0) {
            ++iters;
            uint32_t v = mem.load32(edi);
            edi += 4;
            --ecx;
            if (v == eax) {
                eflags.zf = true;
                break;
            }
        }
        ev.repIterations = iters;
        if (iters > 1)
            countRepPerIter += iters - 1;
        break;
      }
      case Opcode::Cpuid:
        // Model constants; enough to be a data source and a block splitter.
        regs[static_cast<size_t>(Reg::Eax)] = 0x54494e59; // 'TINY'
        regs[static_cast<size_t>(Reg::Ebx)] = 0x58383621; // 'X86!'
        regs[static_cast<size_t>(Reg::Ecx)] = 1;
        regs[static_cast<size_t>(Reg::Edx)] = 0;
        break;
      case Opcode::Out:
        outPort.push_back(operandValue(insn.dst));
        break;
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        isHalted = true;
        ev.kind = EdgeKind::Halt;
        ev.dst = kNoAddr;
        break;
      case Opcode::NumOpcodes:
        panic("invalid opcode");
    }

    if (!isHalted)
        pcReg = ev.dst;
    return ev;
}

RunExit
Machine::run(uint64_t max_steps)
{
    for (uint64_t i = 0; i < max_steps; ++i) {
        step();
        if (isHalted)
            return RunExit::Halted;
    }
    return RunExit::StepLimit;
}

RunExit
Machine::runHooked(const EdgeHook &hook, bool split_at_special,
                   uint64_t max_steps)
{
    auto op_at = [&](Addr addr) -> Opcode {
        Addr off = addr - prog.baseAddr();
        int32_t idx = (off < layout.size()) ? layout[off] : -1;
        return idx >= 0 ? prog.at(static_cast<size_t>(idx)).op : Opcode::Nop;
    };
    for (uint64_t i = 0; i < max_steps; ++i) {
        EdgeEvent ev = step();
        // Deliver control transfers always; deliver Sequential events only
        // around special (CPUID/REP) instructions, where a Pin-like system
        // breaks dynamic basic blocks (§4.1) — both when sequentially
        // leaving a splitter and when sequentially entering one.
        bool deliver = isTransfer(ev.kind) || ev.kind == EdgeKind::Halt;
        if (!deliver && split_at_special) {
            deliver = isPinBlockSplitter(op_at(ev.src)) ||
                      isPinBlockSplitter(op_at(ev.dst));
        }
        if (deliver)
            hook(ev);
        if (isHalted)
            return RunExit::Halted;
    }
    return RunExit::StepLimit;
}

} // namespace tea
