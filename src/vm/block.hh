/**
 * @file
 * Dynamic basic-block discovery on top of the Machine's edge events.
 *
 * Both runtimes in the paper see execution as a stream of *dynamic basic
 * blocks*: StarDBT ends a block at every branch instruction, Pin
 * additionally starts a new block at "unexpected" instructions (CPUID,
 * REP prefixes — §4.1). The Machine already delivers an EdgeEvent at
 * exactly those boundaries (the Pin splitters only when the hook was
 * installed with split_at_special = true), so this tracker just turns
 * consecutive events into block-to-block transitions.
 */

#ifndef TEA_VM_BLOCK_HH
#define TEA_VM_BLOCK_HH

#include <cstdint>
#include <functional>
#include <map>

#include "isa/program.hh"
#include "vm/machine.hh"

namespace tea {

/** A dynamic basic block keyed by its first and last instruction. */
struct BlockRef
{
    Addr start;      ///< address of the first instruction
    Addr end;        ///< address of the last instruction
    uint64_t icount; ///< instructions executed in this block instance

    bool operator==(const BlockRef &) const = default;
};

/** A completed block execution plus where control went next. */
struct BlockTransition
{
    BlockRef from;  ///< the block that just finished executing
    Addr toStart;   ///< start address of the next block (kNoAddr at halt)
    EdgeKind kind;  ///< how the block exited
};

/**
 * Turns the Machine's edge-event stream into block transitions.
 *
 * Also keeps a registry of distinct (start, end) blocks seen, which
 * higher layers use for statistics and for Figure-2-style CFG dumps.
 */
class BlockTracker
{
  public:
    using TransitionFn = std::function<void(const BlockTransition &)>;

    /**
     * @param prog     the running program (for instruction counting)
     * @param callback invoked once per completed block execution
     * @param rep_per_iteration when true, a REP instruction contributes
     *        one instruction per iteration to BlockRef::icount (Pin's
     *        convention); when false it counts as a single instruction
     *        (StarDBT's convention, §4.1)
     * @param collect_blocks maintain the distinct-block registry (adds a
     *        map update per transition; the timing benches turn it off)
     */
    BlockTracker(const Program &prog, TransitionFn callback,
                 bool rep_per_iteration = true, bool collect_blocks = true);

    /** Feed the next edge event; fires the callback exactly once. */
    void onEdge(const EdgeEvent &ev);

    /** Reset to the program entry (for a fresh run). */
    void reset();

    /**
     * Static instruction count of [start, end] inclusive.
     * Counts a REP instruction as one (the StarDBT convention); callers
     * that want Pin's per-iteration convention add EdgeEvent
     * repIterations on top.
     */
    uint64_t staticCount(Addr start, Addr end) const;

    /** Distinct (start, end) blocks seen so far, with execution counts. */
    const std::map<std::pair<Addr, Addr>, uint64_t> &
    blocks() const
    {
        return seen;
    }

  private:
    const Program &prog;
    TransitionFn callback;
    bool repPerIteration;
    bool collectBlocks;
    Addr curStart;
    /** Dense (addr - base) -> instruction index map; -1 between starts. */
    std::vector<int32_t> denseIndex;
    std::map<std::pair<Addr, Addr>, uint64_t> seen;
};

} // namespace tea

#endif // TEA_VM_BLOCK_HH
