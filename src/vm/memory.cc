#include "vm/memory.hh"

namespace tea {

const Memory::Page *
Memory::findPage(Addr addr) const
{
    auto it = pages.find(addr >> kPageBits);
    return it == pages.end() ? nullptr : it->second.get();
}

Memory::Page &
Memory::touchPage(Addr addr)
{
    auto &slot = pages[addr >> kPageBits];
    if (!slot)
        slot = std::make_unique<Page>();
    return *slot;
}

uint8_t
Memory::load8(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? page->bytes[addr & (kPageSize - 1)] : 0;
}

void
Memory::store8(Addr addr, uint8_t value)
{
    touchPage(addr).bytes[addr & (kPageSize - 1)] = value;
}

uint32_t
Memory::load32(Addr addr) const
{
    uint32_t off = addr & (kPageSize - 1);
    if (off + 4 <= kPageSize) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        const uint8_t *p = page->bytes + off;
        return static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) |
               (static_cast<uint32_t>(p[3]) << 24);
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(load8(addr + i)) << (8 * i);
    return v;
}

void
Memory::store32(Addr addr, uint32_t value)
{
    uint32_t off = addr & (kPageSize - 1);
    if (off + 4 <= kPageSize) {
        uint8_t *p = touchPage(addr).bytes + off;
        p[0] = static_cast<uint8_t>(value);
        p[1] = static_cast<uint8_t>(value >> 8);
        p[2] = static_cast<uint8_t>(value >> 16);
        p[3] = static_cast<uint8_t>(value >> 24);
        return;
    }
    for (int i = 0; i < 4; ++i)
        store8(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void
Memory::clear()
{
    pages.clear();
}

} // namespace tea
