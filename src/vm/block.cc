#include "vm/block.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

BlockTracker::BlockTracker(const Program &program, TransitionFn cb,
                           bool rep_per_iteration, bool collect_blocks)
    : prog(program), callback(std::move(cb)),
      repPerIteration(rep_per_iteration), collectBlocks(collect_blocks),
      curStart(program.entry())
{
    TEA_ASSERT(callback != nullptr, "BlockTracker needs a callback");
    // Precompute the address -> instruction-index map once; this sits on
    // the per-transition hot path of every replay/record run.
    denseIndex.assign(prog.codeBytes(), -1);
    for (size_t i = 0; i < prog.size(); ++i)
        denseIndex[prog.at(i).addr - prog.baseAddr()] =
            static_cast<int32_t>(i);
}

void
BlockTracker::reset()
{
    curStart = prog.entry();
}

uint64_t
BlockTracker::staticCount(Addr start, Addr end) const
{
    Addr base = prog.baseAddr();
    Addr s_off = start - base;
    Addr e_off = end - base;
    int32_t first = s_off < denseIndex.size() ? denseIndex[s_off] : -1;
    int32_t last = e_off < denseIndex.size() ? denseIndex[e_off] : -1;
    if (first < 0 || last < 0 || last < first)
        fatal("bad block [%s, %s]", hex32(start).c_str(),
              hex32(end).c_str());
    return static_cast<uint64_t>(last - first) + 1;
}

void
BlockTracker::onEdge(const EdgeEvent &ev)
{
    BlockTransition tr;
    tr.from.start = curStart;
    tr.from.end = ev.src;
    tr.from.icount = staticCount(curStart, ev.src);
    if (repPerIteration && ev.repIterations > 1)
        tr.from.icount += ev.repIterations - 1;
    tr.toStart = ev.kind == EdgeKind::Halt ? kNoAddr : ev.dst;
    tr.kind = ev.kind;

    if (collectBlocks)
        ++seen[{tr.from.start, tr.from.end}];
    curStart = tr.toStart;
    callback(tr);
}

} // namespace tea
