/**
 * @file
 * Fixed-footprint time-series history for the metrics registry.
 *
 * A snapshot answers "how much, ever"; operators need "how fast, just
 * now". HistoryRing turns periodic snapshots into that: a sampler
 * thread (net/server.cc) records one frame every interval — a
 * timestamp plus the current value of each tracked series — and the
 * ring keeps the last maxFrames of them in delta-compressed form, so
 * `teadbt stats --history` and the HTTP `/history.json` surface can
 * serve rates and sparklines without a metrics database.
 *
 * The compression is the v2 trace-log codec's shape (util/varint.hh):
 * each stored frame is the varint Δt against the previous frame
 * followed by one zigzag-varint delta per series. Counters move
 * slowly between one-second samples, so a frame of 10 series is
 * typically 12-15 bytes; even gauges that jump stay cheap. Only the
 * oldest frame is held as absolutes — evicting it decodes the next
 * delta frame into the base, so the ring's footprint is bounded by
 * maxFrames small byte buffers no matter how long the server runs.
 *
 * record() is called by one sampler thread; frames()/toJson() by any
 * reader (STATS worker, HTTP path). A plain mutex serializes them —
 * everything here is seconds-cadence cold path.
 */

#ifndef TEA_OBS_HISTORY_HH
#define TEA_OBS_HISTORY_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tea {
namespace obs {

class HistoryRing
{
  public:
    /**
     * @param seriesNames the tracked series, fixed for the ring's life
     * @param maxFrames frames retained (min 2: a base and one delta)
     */
    HistoryRing(std::vector<std::string> seriesNames, size_t maxFrames);

    /**
     * Append one frame. `values` must carry one entry per series, in
     * the order given at construction; `tMs` is milliseconds on any
     * monotonic scale (the server uses uptime).
     */
    void record(uint64_t tMs, const std::vector<uint64_t> &values);

    /** One decoded frame: a timestamp and per-series absolutes. */
    struct Frame
    {
        uint64_t tMs = 0;
        std::vector<uint64_t> values;
    };

    const std::vector<std::string> &series() const { return names_; }

    /** Decode every retained frame, oldest first. */
    std::vector<Frame> frames() const;

    size_t frameCount() const;

    /** Encoded delta bytes currently held (the footprint story). */
    size_t encodedBytes() const;

    /**
     * {"series": [names...], "frames": [[tMs, v0, v1, ...], ...]} —
     * frames oldest first, absolutes reconstructed.
     */
    std::string toJson() const;

  private:
    std::vector<std::string> names_;
    size_t maxFrames_;

    mutable std::mutex mu_;
    bool any_ = false;
    uint64_t baseT_ = 0;            ///< oldest frame, held absolute
    std::vector<uint64_t> base_;
    uint64_t lastT_ = 0;            ///< newest frame, for encoding
    std::vector<uint64_t> last_;
    /** Delta frames after the base, oldest first. */
    std::deque<std::vector<uint8_t>> deltas_;

    /** Decode one delta frame on top of (t, vals), in place. */
    void apply(const std::vector<uint8_t> &enc, uint64_t &t,
               std::vector<uint64_t> &vals) const;
};

} // namespace obs
} // namespace tea

#endif // TEA_OBS_HISTORY_HH
