#include "obs/trace.hh"

#include <algorithm>
#include <chrono>

namespace tea {
namespace obs {

uint64_t
monotonicNanos()
{
    using namespace std::chrono;
    return static_cast<uint64_t>(
        duration_cast<nanoseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

const char *
spanPhaseName(SpanPhase phase)
{
    switch (phase) {
    case SpanPhase::Accept: return "accept";
    case SpanPhase::Decode: return "decode";
    case SpanPhase::Lookup: return "lookup";
    case SpanPhase::Replay: return "replay";
    case SpanPhase::Reply: return "reply";
    case SpanPhase::Request: return "request";
    case SpanPhase::Dispatch: return "dispatch";
    case SpanPhase::StoreFaultIn: return "store.fault_in";
    }
    return "?";
}

SpanRing::SpanRing(size_t capacity)
{
    size_t cap = 8;
    while (cap < capacity && cap < (size_t(1) << 20))
        cap <<= 1;
    slots = std::vector<Slot>(cap);
    mask = cap - 1;
}

void
SpanRing::push(const Span &span)
{
    uint64_t ticket = head.fetch_add(1, std::memory_order_relaxed);
    Slot &s = slots[ticket & mask];
    // Per-slot seqlock keyed to the ticket: readers discard a slot
    // whose sequence is odd or changed across the copy. Two writers a
    // full ring apart can interleave on one slot; readers then see a
    // sequence mismatch and skip it — one lost span, never a torn one
    // presented as real.
    s.seq.store(2 * ticket + 1, std::memory_order_release);
    s.conn.store(span.conn, std::memory_order_relaxed);
    s.request.store(span.request, std::memory_order_relaxed);
    s.phase.store(static_cast<uint8_t>(span.phase),
                  std::memory_order_relaxed);
    s.startNs.store(span.startNs, std::memory_order_relaxed);
    s.durNs.store(span.durNs, std::memory_order_relaxed);
    s.seq.store(2 * ticket + 2, std::memory_order_release);
}

size_t
SpanRing::snapshotInto(Span *out, size_t max) const
{
    uint64_t end = head.load(std::memory_order_acquire);
    uint64_t count = std::min<uint64_t>(end, slots.size());
    count = std::min<uint64_t>(count, max);
    size_t n = 0;
    // Walk newest -> oldest, then reverse so callers read a timeline.
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t ticket = end - 1 - i;
        const Slot &s = slots[ticket & mask];
        uint64_t a = s.seq.load(std::memory_order_acquire);
        if (a != 2 * ticket + 2)
            continue; // unwritten, mid-write, or already overwritten
        Span span;
        span.conn = s.conn.load(std::memory_order_relaxed);
        span.request = s.request.load(std::memory_order_relaxed);
        span.phase = static_cast<SpanPhase>(
            s.phase.load(std::memory_order_relaxed));
        span.startNs = s.startNs.load(std::memory_order_relaxed);
        span.durNs = s.durNs.load(std::memory_order_relaxed);
        if (s.seq.load(std::memory_order_acquire) != a)
            continue;
        out[n++] = span;
    }
    std::reverse(out, out + n);
    return n;
}

std::vector<Span>
SpanRing::recent(size_t max) const
{
    size_t cap = std::min<size_t>(
        slots.size(), max == SIZE_MAX ? slots.size() : max);
    std::vector<Span> out(cap);
    out.resize(snapshotInto(out.data(), cap));
    return out;
}

} // namespace obs
} // namespace tea
