#include "obs/metrics.hh"

#include <algorithm>

#include "util/json.hh"
#include "util/logging.hh"

namespace tea {
namespace obs {

size_t
threadShard()
{
    static std::atomic<size_t> nextShard{0};
    thread_local size_t shard =
        nextShard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return shard;
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds(std::move(upperBounds))
{
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        panic("histogram bounds must be ascending");
    for (Shard &s : shards) {
        s.counts = std::make_unique<std::atomic<uint64_t>[]>(
            bounds.size() + 1);
        for (size_t b = 0; b <= bounds.size(); ++b)
            s.counts[b].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(double value)
{
    size_t b = 0;
    while (b < bounds.size() && value > bounds[b])
        ++b;
    Shard &s = shards[threadShard()];
    s.counts[b].fetch_add(1, std::memory_order_relaxed);
    double cur = s.sum.load(std::memory_order_relaxed);
    while (!s.sum.compare_exchange_weak(cur, cur + value,
                                        std::memory_order_relaxed)) {
    }
}

HistogramView
Histogram::view() const
{
    HistogramView v;
    v.bounds = bounds;
    v.counts.assign(bounds.size() + 1, 0);
    for (const Shard &s : shards) {
        for (size_t b = 0; b <= bounds.size(); ++b)
            v.counts[b] += s.counts[b].load(std::memory_order_relaxed);
        v.sum += s.sum.load(std::memory_order_relaxed);
    }
    for (uint64_t c : v.counts)
        v.count += c;
    return v;
}

const std::vector<double> &
Histogram::latencyBoundsMs()
{
    static const std::vector<double> bounds{
        0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,    10,   25,
        50,   100, 250,  500, 1000, 2500, 5000, 10000};
    return bounds;
}

// ------------------------------------------------------- MetricsRegistry

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(bounds);
    return *slot;
}

void
MetricsRegistry::gaugeFn(const std::string &name,
                         std::function<int64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mu);
    gaugeFns[name] = std::move(fn);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[name, c] : counters)
        snap.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : gauges)
        snap.gauges.emplace_back(name, g->value());
    for (const auto &[name, fn] : gaugeFns)
        snap.gauges.emplace_back(name, fn());
    std::sort(snap.gauges.begin(), snap.gauges.end());
    for (const auto &[name, h] : histograms)
        snap.histograms.emplace_back(name, h->view());
    return snap;
}

// ------------------------------------------------------- MetricsSnapshot

uint64_t
MetricsSnapshot::counterValue(const std::string &name) const
{
    for (const auto &[n, v] : counters)
        if (n == name)
            return v;
    return 0;
}

std::string
MetricsSnapshot::toText() const
{
    std::string out;
    for (const auto &[name, v] : counters)
        out += strprintf("counter %-28s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(v));
    for (const auto &[name, v] : gauges)
        out += strprintf("gauge   %-28s %lld\n", name.c_str(),
                         static_cast<long long>(v));
    for (const auto &[name, h] : histograms) {
        out += strprintf("hist    %-28s count %llu mean %.3f",
                         name.c_str(),
                         static_cast<unsigned long long>(h.count),
                         h.mean());
        for (size_t b = 0; b < h.counts.size(); ++b) {
            if (h.counts[b] == 0)
                continue;
            if (b < h.bounds.size())
                out += strprintf("  le%g:%llu", h.bounds[b],
                                 static_cast<unsigned long long>(
                                     h.counts[b]));
            else
                out += strprintf("  inf:%llu",
                                 static_cast<unsigned long long>(
                                     h.counts[b]));
        }
        out += '\n';
    }
    return out;
}

void
MetricsSnapshot::writeJson(JsonWriter &w) const
{
    w.key("counters").beginObject();
    for (const auto &[name, v] : counters)
        w.key(name).value(v);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, v] : gauges)
        w.key(name).value(v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : histograms) {
        w.key(name).beginObject();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("buckets").beginArray();
        for (size_t b = 0; b < h.counts.size(); ++b) {
            if (h.counts[b] == 0)
                continue; // sparse: empty buckets add bytes, not data
            w.beginObject();
            if (b < h.bounds.size())
                w.key("le").value(h.bounds[b]);
            else
                w.key("le").value("+inf");
            w.key("count").value(h.counts[b]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

std::string
MetricsSnapshot::toJson() const
{
    JsonWriter w;
    w.beginObject();
    writeJson(w);
    w.endObject();
    return w.str();
}

} // namespace obs
} // namespace tea
