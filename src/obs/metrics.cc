#include "obs/metrics.hh"

#include <algorithm>

#include "util/json.hh"
#include "util/logging.hh"

namespace tea {
namespace obs {

size_t
threadShard()
{
    static std::atomic<size_t> nextShard{0};
    thread_local size_t shard =
        nextShard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return shard;
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds(std::move(upperBounds))
{
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        panic("histogram bounds must be ascending");
    for (Shard &s : shards) {
        s.counts = std::make_unique<std::atomic<uint64_t>[]>(
            bounds.size() + 1);
        for (size_t b = 0; b <= bounds.size(); ++b)
            s.counts[b].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(double value)
{
    size_t b = 0;
    while (b < bounds.size() && value > bounds[b])
        ++b;
    Shard &s = shards[threadShard()];
    s.counts[b].fetch_add(1, std::memory_order_relaxed);
    double cur = s.sum.load(std::memory_order_relaxed);
    while (!s.sum.compare_exchange_weak(cur, cur + value,
                                        std::memory_order_relaxed)) {
    }
}

HistogramView
Histogram::view() const
{
    HistogramView v;
    v.bounds = bounds;
    v.counts.assign(bounds.size() + 1, 0);
    for (const Shard &s : shards) {
        for (size_t b = 0; b <= bounds.size(); ++b)
            v.counts[b] += s.counts[b].load(std::memory_order_relaxed);
        v.sum += s.sum.load(std::memory_order_relaxed);
    }
    for (uint64_t c : v.counts)
        v.count += c;
    return v;
}

const std::vector<double> &
Histogram::latencyBoundsMs()
{
    static const std::vector<double> bounds{
        0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,    10,   25,
        50,   100, 250,  500, 1000, 2500, 5000, 10000};
    return bounds;
}

double
quantile(const HistogramView &v, double q)
{
    if (v.count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    double rank = q * static_cast<double>(v.count);
    uint64_t cum = 0;
    for (size_t b = 0; b < v.counts.size(); ++b) {
        uint64_t prev = cum;
        cum += v.counts[b];
        if (v.counts[b] == 0 || static_cast<double>(cum) < rank)
            continue;
        if (b >= v.bounds.size()) // +inf: no upper edge to lerp toward
            return v.bounds.empty() ? 0.0 : v.bounds.back();
        double lo = b == 0 ? 0.0 : v.bounds[b - 1];
        double hi = v.bounds[b];
        double frac = (rank - static_cast<double>(prev)) /
                      static_cast<double>(v.counts[b]);
        return lo + (hi - lo) * frac;
    }
    return v.bounds.empty() ? 0.0 : v.bounds.back();
}

// ---------------------------------------------------- labeled instruments

const char *const kOtherLabel = "other";

LabeledCounter::LabeledCounter(std::string labelKey, size_t maxLabels)
    : key_(std::move(labelKey)), maxLabels_(maxLabels)
{
}

Counter &
LabeledCounter::at(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = byLabel_.find(label);
    if (it != byLabel_.end())
        return *it->second;
    if (byLabel_.size() >= maxLabels_ || label == kOtherLabel)
        return other_;
    auto &slot = byLabel_[label];
    slot = std::make_unique<Counter>();
    return *slot;
}

std::vector<std::pair<std::string, uint64_t>>
LabeledCounter::series() const
{
    std::vector<std::pair<std::string, uint64_t>> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[label, c] : byLabel_) {
        uint64_t v = c->value();
        if (v != 0)
            out.emplace_back(label, v);
    }
    uint64_t ov = other_.value();
    if (ov != 0)
        out.emplace_back(kOtherLabel, ov);
    std::sort(out.begin(), out.end());
    return out;
}

LabeledHistogram::LabeledHistogram(std::string labelKey,
                                   std::vector<double> bounds,
                                   size_t maxLabels)
    : key_(std::move(labelKey)), bounds_(std::move(bounds)),
      maxLabels_(maxLabels), other_(bounds_)
{
}

Histogram &
LabeledHistogram::at(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = byLabel_.find(label);
    if (it != byLabel_.end())
        return *it->second;
    if (byLabel_.size() >= maxLabels_ || label == kOtherLabel)
        return other_;
    auto &slot = byLabel_[label];
    slot = std::make_unique<Histogram>(bounds_);
    return *slot;
}

std::vector<std::pair<std::string, HistogramView>>
LabeledHistogram::series() const
{
    std::vector<std::pair<std::string, HistogramView>> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[label, h] : byLabel_) {
        HistogramView v = h->view();
        if (v.count != 0)
            out.emplace_back(label, std::move(v));
    }
    HistogramView ov = other_.view();
    if (ov.count != 0)
        out.emplace_back(kOtherLabel, std::move(ov));
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

// ------------------------------------------------------- MetricsRegistry

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(bounds);
    return *slot;
}

void
MetricsRegistry::gaugeFn(const std::string &name,
                         std::function<int64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mu);
    gaugeFns[name] = std::move(fn);
}

LabeledCounter &
MetricsRegistry::labeledCounter(const std::string &name,
                                const std::string &labelKey,
                                size_t maxLabels)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = labeledCounters[name];
    if (!slot)
        slot = std::make_unique<LabeledCounter>(labelKey, maxLabels);
    return *slot;
}

LabeledHistogram &
MetricsRegistry::labeledHistogram(const std::string &name,
                                  const std::string &labelKey,
                                  const std::vector<double> &bounds,
                                  size_t maxLabels)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = labeledHistograms[name];
    if (!slot)
        slot = std::make_unique<LabeledHistogram>(labelKey, bounds,
                                                 maxLabels);
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[name, c] : counters)
        snap.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : gauges)
        snap.gauges.emplace_back(name, g->value());
    for (const auto &[name, fn] : gaugeFns)
        snap.gauges.emplace_back(name, fn());
    std::sort(snap.gauges.begin(), snap.gauges.end());
    for (const auto &[name, h] : histograms)
        snap.histograms.emplace_back(name, h->view());
    for (const auto &[name, lc] : labeledCounters)
        snap.labeledCounters.push_back(
            LabeledCounterView{name, lc->labelKey(), lc->series()});
    for (const auto &[name, lh] : labeledHistograms)
        snap.labeledHistograms.push_back(
            LabeledHistogramView{name, lh->labelKey(), lh->series()});
    return snap;
}

// ------------------------------------------------------- MetricsSnapshot

namespace {

/** One histogram as a JSON object: totals, quantiles, sparse buckets. */
void
writeHistogramJson(JsonWriter &w, const HistogramView &h)
{
    w.beginObject();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    if (h.count > 0) {
        w.key("p50").value(quantile(h, 0.50));
        w.key("p90").value(quantile(h, 0.90));
        w.key("p99").value(quantile(h, 0.99));
    }
    w.key("buckets").beginArray();
    for (size_t b = 0; b < h.counts.size(); ++b) {
        if (h.counts[b] == 0)
            continue; // sparse: empty buckets add bytes, not data
        w.beginObject();
        if (b < h.bounds.size())
            w.key("le").value(h.bounds[b]);
        else
            w.key("le").value("+inf");
        w.key("count").value(h.counts[b]);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

uint64_t
MetricsSnapshot::counterValue(const std::string &name) const
{
    for (const auto &[n, v] : counters)
        if (n == name)
            return v;
    return 0;
}

uint64_t
MetricsSnapshot::labeledValue(const std::string &name,
                              const std::string &label) const
{
    for (const LabeledCounterView &lc : labeledCounters) {
        if (lc.name != name)
            continue;
        for (const auto &[l, v] : lc.series)
            if (l == label)
                return v;
    }
    return 0;
}

std::string
MetricsSnapshot::toText() const
{
    std::string out;
    for (const auto &[name, v] : counters)
        out += strprintf("counter %-28s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(v));
    for (const auto &[name, v] : gauges)
        out += strprintf("gauge   %-28s %lld\n", name.c_str(),
                         static_cast<long long>(v));
    for (const auto &[name, h] : histograms) {
        out += strprintf("hist    %-28s count %llu mean %.3f",
                         name.c_str(),
                         static_cast<unsigned long long>(h.count),
                         h.mean());
        if (h.count > 0)
            out += strprintf("  p50 %.3g p90 %.3g p99 %.3g",
                             quantile(h, 0.50), quantile(h, 0.90),
                             quantile(h, 0.99));
        for (size_t b = 0; b < h.counts.size(); ++b) {
            if (h.counts[b] == 0)
                continue;
            if (b < h.bounds.size())
                out += strprintf("  le%g:%llu", h.bounds[b],
                                 static_cast<unsigned long long>(
                                     h.counts[b]));
            else
                out += strprintf("  inf:%llu",
                                 static_cast<unsigned long long>(
                                     h.counts[b]));
        }
        out += '\n';
    }
    for (const LabeledCounterView &lc : labeledCounters) {
        for (const auto &[label, v] : lc.series) {
            std::string series = strprintf(
                "%s{%s=\"%s\"}", lc.name.c_str(), lc.labelKey.c_str(),
                label.c_str());
            out += strprintf("counter %-28s %llu\n", series.c_str(),
                             static_cast<unsigned long long>(v));
        }
    }
    for (const LabeledHistogramView &lh : labeledHistograms) {
        for (const auto &[label, h] : lh.series) {
            std::string series = strprintf(
                "%s{%s=\"%s\"}", lh.name.c_str(), lh.labelKey.c_str(),
                label.c_str());
            out += strprintf(
                "hist    %-28s count %llu mean %.3f  p50 %.3g "
                "p90 %.3g p99 %.3g\n",
                series.c_str(),
                static_cast<unsigned long long>(h.count), h.mean(),
                quantile(h, 0.50), quantile(h, 0.90),
                quantile(h, 0.99));
        }
    }
    return out;
}

void
MetricsSnapshot::writeJson(JsonWriter &w) const
{
    w.key("counters").beginObject();
    for (const auto &[name, v] : counters)
        w.key(name).value(v);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, v] : gauges)
        w.key(name).value(v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : histograms) {
        w.key(name);
        writeHistogramJson(w, h);
    }
    w.endObject();
    w.key("labeledCounters").beginObject();
    for (const LabeledCounterView &lc : labeledCounters) {
        w.key(lc.name).beginObject();
        w.key("labelKey").value(lc.labelKey);
        w.key("series").beginObject();
        for (const auto &[label, v] : lc.series)
            w.key(label).value(v);
        w.endObject();
        w.endObject();
    }
    w.endObject();
    w.key("labeledHistograms").beginObject();
    for (const LabeledHistogramView &lh : labeledHistograms) {
        w.key(lh.name).beginObject();
        w.key("labelKey").value(lh.labelKey);
        w.key("series").beginObject();
        for (const auto &[label, h] : lh.series) {
            w.key(label);
            writeHistogramJson(w, h);
        }
        w.endObject();
        w.endObject();
    }
    w.endObject();
}

std::string
MetricsSnapshot::toJson() const
{
    JsonWriter w;
    w.beginObject();
    writeJson(w);
    w.endObject();
    return w.str();
}

} // namespace obs
} // namespace tea
