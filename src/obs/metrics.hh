/**
 * @file
 * tea_obs metrics: named counters, gauges, and fixed-bucket histograms.
 *
 * The paper's argument is quantitative (Table 1 memory, Table 4
 * transition overhead), and so is the replay service's: the whole
 * production stack is only credible if its runtime behavior is
 * measured. This registry is the measuring instrument, built so that
 * instrumenting the replay hot path costs one relaxed atomic add:
 *
 * - every Counter and Histogram is sharded across kMetricShards
 *   cache-line-aligned slots; a thread picks its shard once (a
 *   thread_local index) and increments it with memory_order_relaxed —
 *   no contended cache line, no lock, no fence on x86;
 * - registration (name -> handle) takes a mutex, but happens once per
 *   metric at setup time; hot paths hold the returned reference, which
 *   is stable for the registry's lifetime;
 * - snapshot() merges the shards into an immutable MetricsSnapshot and
 *   evaluates the callback gauges; it is safe to call concurrently
 *   with any number of writers. Relaxed increments mean a snapshot
 *   taken mid-write races benignly (it may miss in-flight increments);
 *   once the writing threads are joined — or have handed their result
 *   to the snapshotting thread through any synchronizing handoff — the
 *   totals are exact (tests/test_obs.cc pins this).
 *
 * The snapshot renders as human text (one metric per line) and as JSON
 * via the shared util/json writer; the STATS wire frame and `teadbt
 * stats` both serve those renderings.
 */

#ifndef TEA_OBS_METRICS_HH
#define TEA_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tea {

class JsonWriter;

namespace obs {

/** Shards per metric; a power of two, sized for small-host fleets. */
constexpr size_t kMetricShards = 16;

/**
 * This thread's shard index: assigned round-robin at first use, so up
 * to kMetricShards concurrent threads never share a cache line.
 */
size_t threadShard();

/** A monotonically increasing count (events, bytes, faults). */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        shards[threadShard()].v.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const Shard &s : shards)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    std::array<Shard, kMetricShards> shards{};
};

/** A point-in-time signed value (queue depth, live sessions). */
class Gauge
{
  public:
    void set(int64_t value) { v.store(value, std::memory_order_relaxed); }
    void add(int64_t d) { v.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v{0};
};

/** A merged histogram as rendered into a snapshot. */
struct HistogramView
{
    /** Bucket upper bounds; an implicit +inf bucket follows the last. */
    std::vector<double> bounds;
    /** Per-bucket observation counts (bounds.size() + 1 entries). */
    std::vector<uint64_t> counts;
    uint64_t count = 0; ///< total observations
    double sum = 0.0;   ///< sum of observed values

    double mean() const { return count ? sum / double(count) : 0.0; }
};

/**
 * Fixed-bucket histogram, sharded like Counter. observe() is two
 * relaxed atomic updates plus a short linear scan over the bounds —
 * cheap enough for per-request latencies, and kept *out* of per-
 * transition paths by design (replay kernels report at feedAll()
 * batch boundaries instead; see svc/replay_service.hh).
 */
class Histogram
{
  public:
    /** @param upperBounds ascending bucket upper bounds (≤ compare) */
    explicit Histogram(std::vector<double> upperBounds);

    void observe(double value);

    /** Merge every shard into one immutable view. */
    HistogramView view() const;

    /** Default latency bounds in milliseconds: 0.05 ms .. 10 s. */
    static const std::vector<double> &latencyBoundsMs();

  private:
    std::vector<double> bounds;

    struct alignas(64) Shard
    {
        // counts[bucket] sized at construction; sum via CAS because
        // atomic<double>::fetch_add is not portable everywhere yet.
        std::unique_ptr<std::atomic<uint64_t>[]> counts;
        std::atomic<double> sum{0.0};
    };
    std::array<Shard, kMetricShards> shards;
};

/**
 * Quantile estimate from a merged histogram: find the bucket holding
 * rank q*count, then interpolate linearly inside it (the Prometheus
 * histogram_quantile shape). The +inf bucket cannot be interpolated
 * and clamps to the last finite bound. 0 when the histogram is empty.
 */
double quantile(const HistogramView &v, double q);

/**
 * How many distinct label values a labeled instrument will intern
 * before routing further labels to the shared `other` series. Labels
 * are automaton names — operator-chosen, not attacker-controlled —
 * but a fleet restart against a huge store directory must not turn
 * the registry into an unbounded map.
 */
constexpr size_t kDefaultMaxLabels = 64;

/** The catch-all label value once maxLabels is exhausted. */
extern const char *const kOtherLabel;

/**
 * A counter with one low-cardinality label dimension (in practice:
 * the automaton name). at() interns the label under a mutex — called
 * once per stream/session at setup, never per transition — and
 * returns a plain Counter whose inc() is the same one relaxed
 * fetch_add as the unlabeled hot path. Past maxLabels every new label
 * shares the `other` series, so memory stays bounded no matter how
 * many automatons a server meets. Raced at() calls for one label
 * return the same instrument (the mutex serializes interning).
 */
class LabeledCounter
{
  public:
    explicit LabeledCounter(std::string labelKey = "automaton",
                            size_t maxLabels = kDefaultMaxLabels);

    /** The per-label counter; stable for the instrument's lifetime. */
    Counter &at(const std::string &label);

    const std::string &labelKey() const { return key_; }

    /** Non-zero series, sorted by label (`other` included when hit). */
    std::vector<std::pair<std::string, uint64_t>> series() const;

  private:
    std::string key_;
    size_t maxLabels_;
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> byLabel_;
    Counter other_;
};

/** Histogram with the same label dimension as LabeledCounter. */
class LabeledHistogram
{
  public:
    explicit LabeledHistogram(std::string labelKey = "automaton",
                              std::vector<double> bounds =
                                  Histogram::latencyBoundsMs(),
                              size_t maxLabels = kDefaultMaxLabels);

    Histogram &at(const std::string &label);

    const std::string &labelKey() const { return key_; }

    /** Non-empty series, sorted by label (`other` included when hit). */
    std::vector<std::pair<std::string, HistogramView>> series() const;

  private:
    std::string key_;
    std::vector<double> bounds_;
    size_t maxLabels_;
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Histogram>> byLabel_;
    Histogram other_;
};

/** One labeled instrument, merged into a snapshot. */
struct LabeledCounterView
{
    std::string name;
    std::string labelKey;
    std::vector<std::pair<std::string, uint64_t>> series;
};

struct LabeledHistogramView
{
    std::string name;
    std::string labelKey;
    std::vector<std::pair<std::string, HistogramView>> series;
};

/** Immutable merged view of every metric, ready to render. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramView>> histograms;
    std::vector<LabeledCounterView> labeledCounters;
    std::vector<LabeledHistogramView> labeledHistograms;

    /** One metric per line, for humans and the serve exit report. */
    std::string toText() const;

    /** {"counters": {...}, "gauges": {...}, "histograms": {...}}. */
    std::string toJson() const;

    /**
     * Write the three member groups into an already-open JSON object,
     * so callers can append siblings (the server adds "spans").
     */
    void writeJson(JsonWriter &w) const;

    /** Convenience for tests: a counter's value, 0 when absent. */
    uint64_t counterValue(const std::string &name) const;

    /** Convenience for tests: a labeled series value, 0 when absent. */
    uint64_t labeledValue(const std::string &name,
                          const std::string &label) const;
};

/**
 * The named-metric store. Handles returned by counter()/gauge()/
 * histogram() are valid for the registry's lifetime; re-registering a
 * name returns the existing instrument (histogram bounds are fixed by
 * the first registration). gaugeFn() registers a callback evaluated at
 * snapshot time — for values another object already maintains
 * (ThreadPool::pending(), live session counts) where mirroring into a
 * Gauge would just invite drift.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds =
                             Histogram::latencyBoundsMs());
    void gaugeFn(const std::string &name, std::function<int64_t()> fn);

    /**
     * A counter family with one label dimension. Like the scalar
     * instruments, the first registration fixes the shape (labelKey,
     * maxLabels); re-registering returns the existing family.
     */
    LabeledCounter &labeledCounter(const std::string &name,
                                   const std::string &labelKey =
                                       "automaton",
                                   size_t maxLabels = kDefaultMaxLabels);

    LabeledHistogram &labeledHistogram(
        const std::string &name,
        const std::string &labelKey = "automaton",
        const std::vector<double> &bounds = Histogram::latencyBoundsMs(),
        size_t maxLabels = kDefaultMaxLabels);

    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mu;
    // std::map keeps snapshots sorted by name — stable, diffable output.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, std::function<int64_t()>> gaugeFns;
    std::map<std::string, std::unique_ptr<LabeledCounter>>
        labeledCounters;
    std::map<std::string, std::unique_ptr<LabeledHistogram>>
        labeledHistograms;
};

} // namespace obs
} // namespace tea

#endif // TEA_OBS_METRICS_HH
