/**
 * @file
 * tea_obs metrics: named counters, gauges, and fixed-bucket histograms.
 *
 * The paper's argument is quantitative (Table 1 memory, Table 4
 * transition overhead), and so is the replay service's: the whole
 * production stack is only credible if its runtime behavior is
 * measured. This registry is the measuring instrument, built so that
 * instrumenting the replay hot path costs one relaxed atomic add:
 *
 * - every Counter and Histogram is sharded across kMetricShards
 *   cache-line-aligned slots; a thread picks its shard once (a
 *   thread_local index) and increments it with memory_order_relaxed —
 *   no contended cache line, no lock, no fence on x86;
 * - registration (name -> handle) takes a mutex, but happens once per
 *   metric at setup time; hot paths hold the returned reference, which
 *   is stable for the registry's lifetime;
 * - snapshot() merges the shards into an immutable MetricsSnapshot and
 *   evaluates the callback gauges; it is safe to call concurrently
 *   with any number of writers. Relaxed increments mean a snapshot
 *   taken mid-write races benignly (it may miss in-flight increments);
 *   once the writing threads are joined — or have handed their result
 *   to the snapshotting thread through any synchronizing handoff — the
 *   totals are exact (tests/test_obs.cc pins this).
 *
 * The snapshot renders as human text (one metric per line) and as JSON
 * via the shared util/json writer; the STATS wire frame and `teadbt
 * stats` both serve those renderings.
 */

#ifndef TEA_OBS_METRICS_HH
#define TEA_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tea {

class JsonWriter;

namespace obs {

/** Shards per metric; a power of two, sized for small-host fleets. */
constexpr size_t kMetricShards = 16;

/**
 * This thread's shard index: assigned round-robin at first use, so up
 * to kMetricShards concurrent threads never share a cache line.
 */
size_t threadShard();

/** A monotonically increasing count (events, bytes, faults). */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        shards[threadShard()].v.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const Shard &s : shards)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    std::array<Shard, kMetricShards> shards{};
};

/** A point-in-time signed value (queue depth, live sessions). */
class Gauge
{
  public:
    void set(int64_t value) { v.store(value, std::memory_order_relaxed); }
    void add(int64_t d) { v.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v{0};
};

/** A merged histogram as rendered into a snapshot. */
struct HistogramView
{
    /** Bucket upper bounds; an implicit +inf bucket follows the last. */
    std::vector<double> bounds;
    /** Per-bucket observation counts (bounds.size() + 1 entries). */
    std::vector<uint64_t> counts;
    uint64_t count = 0; ///< total observations
    double sum = 0.0;   ///< sum of observed values

    double mean() const { return count ? sum / double(count) : 0.0; }
};

/**
 * Fixed-bucket histogram, sharded like Counter. observe() is two
 * relaxed atomic updates plus a short linear scan over the bounds —
 * cheap enough for per-request latencies, and kept *out* of per-
 * transition paths by design (replay kernels report at feedAll()
 * batch boundaries instead; see svc/replay_service.hh).
 */
class Histogram
{
  public:
    /** @param upperBounds ascending bucket upper bounds (≤ compare) */
    explicit Histogram(std::vector<double> upperBounds);

    void observe(double value);

    /** Merge every shard into one immutable view. */
    HistogramView view() const;

    /** Default latency bounds in milliseconds: 0.05 ms .. 10 s. */
    static const std::vector<double> &latencyBoundsMs();

  private:
    std::vector<double> bounds;

    struct alignas(64) Shard
    {
        // counts[bucket] sized at construction; sum via CAS because
        // atomic<double>::fetch_add is not portable everywhere yet.
        std::unique_ptr<std::atomic<uint64_t>[]> counts;
        std::atomic<double> sum{0.0};
    };
    std::array<Shard, kMetricShards> shards;
};

/** Immutable merged view of every metric, ready to render. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramView>> histograms;

    /** One metric per line, for humans and the serve exit report. */
    std::string toText() const;

    /** {"counters": {...}, "gauges": {...}, "histograms": {...}}. */
    std::string toJson() const;

    /**
     * Write the three member groups into an already-open JSON object,
     * so callers can append siblings (the server adds "spans").
     */
    void writeJson(JsonWriter &w) const;

    /** Convenience for tests: a counter's value, 0 when absent. */
    uint64_t counterValue(const std::string &name) const;
};

/**
 * The named-metric store. Handles returned by counter()/gauge()/
 * histogram() are valid for the registry's lifetime; re-registering a
 * name returns the existing instrument (histogram bounds are fixed by
 * the first registration). gaugeFn() registers a callback evaluated at
 * snapshot time — for values another object already maintains
 * (ThreadPool::pending(), live session counts) where mirroring into a
 * Gauge would just invite drift.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds =
                             Histogram::latencyBoundsMs());
    void gaugeFn(const std::string &name, std::function<int64_t()> fn);

    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mu;
    // std::map keeps snapshots sorted by name — stable, diffable output.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, std::function<int64_t()>> gaugeFns;
};

} // namespace obs
} // namespace tea

#endif // TEA_OBS_METRICS_HH
