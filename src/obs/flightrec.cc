#include "obs/flightrec.hh"

#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "util/logging.hh"

namespace tea {
namespace obs {

namespace {

/**
 * A bump appender over a fixed buffer: the only string machinery the
 * signal path uses. Every method is async-signal-safe (no allocation,
 * no locale, no stdio) and silently truncates at the buffer end — a
 * truncated dump is still mostly-parseable prefix + lost tail, which
 * beats a handler that corrupts the heap it is reporting on.
 */
struct Appender
{
    char *p;
    char *end; ///< one past the last writable byte (NUL lives there)

    void
    raw(const char *s)
    {
        while (*s && p < end)
            *p++ = *s++;
    }

    void
    u64(uint64_t v)
    {
        char tmp[20];
        size_t n = 0;
        do {
            tmp[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n > 0 && p < end)
            *p++ = tmp[--n];
    }

    /** A quoted, escaped JSON string from a NUL-terminated source. */
    void
    jstr(const char *s)
    {
        static const char hex[] = "0123456789abcdef";
        if (p < end)
            *p++ = '"';
        for (; *s && p < end; ++s) {
            unsigned char c = static_cast<unsigned char>(*s);
            if (c == '"' || c == '\\') {
                if (end - p < 2)
                    break;
                *p++ = '\\';
                *p++ = static_cast<char>(c);
            } else if (c < 0x20) {
                if (end - p < 6)
                    break;
                *p++ = '\\';
                *p++ = 'u';
                *p++ = '0';
                *p++ = '0';
                *p++ = hex[c >> 4];
                *p++ = hex[c & 0xf];
            } else {
                *p++ = static_cast<char>(c);
            }
        }
        if (p < end)
            *p++ = '"';
    }
};

const char *
signalName(int sig)
{
    switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    }
    return "signal";
}

void
crashHandler(int sig)
{
    FlightRecorder::instance().dumpFromSignal(sig);
    // SA_RESETHAND restored the default disposition before we ran;
    // re-raising (pending until the handler returns) then dumps core /
    // terminates exactly as an un-armed process would have.
    raise(sig);
}

void
copyTruncated(char *dst, size_t cap, const char *src)
{
    size_t n = std::strlen(src);
    if (n > cap - 1)
        n = cap - 1;
    std::memcpy(dst, src, n);
    dst[n] = '\0';
}

} // namespace

FlightRecorder::FlightRecorder() = default;

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::attachSpans(const SpanRing *ring)
{
    spans_.store(ring, std::memory_order_release);
}

void
FlightRecorder::noteLog(const char *tag, const char *msg)
{
    uint32_t expected = 0;
    while (!logLock_.compare_exchange_weak(expected, 1,
                                           std::memory_order_acquire)) {
        expected = 0;
    }
    LogRec &rec = logs_[logHead_ % kMaxLogs];
    rec.tNs = monotonicNanos();
    copyTruncated(rec.tag, sizeof(rec.tag), tag);
    copyTruncated(rec.msg, sizeof(rec.msg), msg);
    ++logHead_;
    logLock_.store(0, std::memory_order_release);
}

void
FlightRecorder::noteHistoryJson(const char *json, size_t len)
{
    int active = histActive_.load(std::memory_order_acquire);
    int next = active == 0 ? 1 : 0;
    HistBuf &b = hist_[next];
    if (len > kMaxHistory - 1)
        len = kMaxHistory - 1;
    std::memcpy(b.buf, json, len);
    b.buf[len] = '\0';
    b.len = len;
    histActive_.store(next, std::memory_order_release);
}

void
FlightRecorder::setFingerprint(const std::string &text)
{
    copyTruncated(fingerprint_, sizeof(fingerprint_), text.c_str());
}

void
FlightRecorder::arm(const std::string &path)
{
    copyTruncated(path_, sizeof(path_), path.c_str());
    installFlightLogSink();
    if (armed_.exchange(true, std::memory_order_acq_rel))
        return; // handlers already installed; only the path changed
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    sigaction(SIGSEGV, &sa, nullptr);
    sigaction(SIGABRT, &sa, nullptr);
    sigaction(SIGBUS, &sa, nullptr);
    sigaction(SIGFPE, &sa, nullptr);
}

std::string
FlightRecorder::path() const
{
    return std::string(path_);
}

size_t
FlightRecorder::logCount() const
{
    uint32_t expected = 0;
    while (!logLock_.compare_exchange_weak(expected, 1,
                                           std::memory_order_acquire)) {
        expected = 0;
    }
    size_t n = logHead_ < kMaxLogs ? logHead_ : kMaxLogs;
    logLock_.store(0, std::memory_order_release);
    return n;
}

size_t
FlightRecorder::render(char *dst, size_t cap, const char *reason,
                       bool fromSignal) const
{
    Appender a{dst, dst + cap - 1};
    a.raw("{\"version\": 1, \"reason\": ");
    a.jstr(reason);
    a.raw(", \"tNs\": ");
    a.u64(monotonicNanos());
    a.raw(", \"fingerprint\": ");
    a.jstr(fingerprint_);

    a.raw(", \"spans\": [");
    const SpanRing *ring = spans_.load(std::memory_order_acquire);
    size_t nspans =
        ring ? ring->snapshotInto(spanScratch_, kMaxSpans) : 0;
    for (size_t i = 0; i < nspans; ++i) {
        const Span &s = spanScratch_[i];
        if (i > 0)
            a.raw(", ");
        a.raw("{\"conn\": ");
        a.u64(s.conn);
        a.raw(", \"request\": ");
        a.u64(s.request);
        a.raw(", \"phase\": ");
        a.jstr(spanPhaseName(s.phase));
        a.raw(", \"startNs\": ");
        a.u64(s.startNs);
        a.raw(", \"durNs\": ");
        a.u64(s.durNs);
        a.raw("}");
    }
    a.raw("]");

    // The log ring, under its spinlock — bounded spins from a signal
    // handler (the crashing thread may *hold* the lock; waiting
    // forever would hang the dump), unbounded from graceful paths.
    bool locked = false;
    for (int spin = 0; fromSignal ? spin < 4096 : true; ++spin) {
        uint32_t expected = 0;
        if (logLock_.compare_exchange_weak(expected, 1,
                                           std::memory_order_acquire)) {
            locked = true;
            break;
        }
    }
    size_t nlogs = 0;
    uint64_t head = 0;
    if (locked) {
        head = logHead_;
        nlogs = head < kMaxLogs ? head : kMaxLogs;
        for (size_t i = 0; i < nlogs; ++i)
            logScratch_[i] = logs_[(head - nlogs + i) % kMaxLogs];
        logLock_.store(0, std::memory_order_release);
    }
    a.raw(", \"logsDropped\": ");
    a.u64(head > kMaxLogs ? head - kMaxLogs : 0);
    a.raw(", \"logs\": [");
    for (size_t i = 0; i < nlogs; ++i) {
        const LogRec &rec = logScratch_[i];
        if (i > 0)
            a.raw(", ");
        a.raw("{\"tNs\": ");
        a.u64(rec.tNs);
        a.raw(", \"tag\": ");
        a.jstr(rec.tag);
        a.raw(", \"msg\": ");
        a.jstr(rec.msg);
        a.raw("}");
    }
    a.raw("]");

    a.raw(", \"history\": ");
    int active = histActive_.load(std::memory_order_acquire);
    if (active >= 0 && hist_[active].len > 0) {
        std::memcpy(histScratch_, hist_[active].buf,
                    hist_[active].len + 1);
        a.raw(histScratch_); // pre-rendered JSON, embedded verbatim
    } else {
        a.raw("null");
    }
    a.raw("}\n");
    *a.p = '\0';
    return static_cast<size_t>(a.p - dst);
}

std::string
FlightRecorder::toJson(const char *reason) const
{
    std::lock_guard<std::mutex> lock(dumpMu_);
    size_t len = render(dumpBuf_, kDumpBytes, reason, false);
    return std::string(dumpBuf_, len);
}

bool
FlightRecorder::dumpNow(const char *reason)
{
    if (path_[0] == '\0')
        return false;
    std::lock_guard<std::mutex> lock(dumpMu_);
    size_t len = render(dumpBuf_, kDumpBytes, reason, false);
    int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, dumpBuf_ + off, len - off);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    ::close(fd);
    return off == len;
}

void
FlightRecorder::dumpFromSignal(int sig)
{
    // No mutex: the process is dying, and a graceful dump racing this
    // one at worst interleaves bytes in scratch we no longer need.
    if (path_[0] == '\0')
        return;
    size_t len = render(dumpBuf_, kDumpBytes, signalName(sig), true);
    int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return;
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, dumpBuf_ + off, len - off);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    ::close(fd);
    const char note[] = "tead: flight recorder dump written\n";
    ssize_t ignored = ::write(2, note, sizeof(note) - 1);
    (void)ignored;
}

void
installFlightLogSink()
{
    setLogSink([](const char *tag, const char *msg) {
        FlightRecorder::instance().noteLog(tag, msg);
    });
}

} // namespace obs
} // namespace tea
