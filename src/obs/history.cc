#include "obs/history.hh"

#include <algorithm>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/varint.hh"

namespace tea {
namespace obs {

HistoryRing::HistoryRing(std::vector<std::string> seriesNames,
                         size_t maxFrames)
    : names_(std::move(seriesNames)),
      maxFrames_(std::max<size_t>(maxFrames, 2))
{
}

void
HistoryRing::record(uint64_t tMs, const std::vector<uint64_t> &values)
{
    if (values.size() != names_.size())
        panic("history frame carries %zu values for %zu series",
              values.size(), names_.size());
    std::lock_guard<std::mutex> lock(mu_);
    if (!any_) {
        any_ = true;
        baseT_ = lastT_ = tMs;
        base_ = last_ = values;
        return;
    }
    std::vector<uint8_t> enc;
    putVar(enc, tMs - lastT_); // sampler time is monotonic
    for (size_t i = 0; i < values.size(); ++i)
        putVar(enc, zigzag(static_cast<int64_t>(values[i]) -
                           static_cast<int64_t>(last_[i])));
    deltas_.push_back(std::move(enc));
    lastT_ = tMs;
    last_ = values;
    // Evict by folding the oldest delta into the absolute base.
    while (deltas_.size() + 1 > maxFrames_) {
        apply(deltas_.front(), baseT_, base_);
        deltas_.pop_front();
    }
}

void
HistoryRing::apply(const std::vector<uint8_t> &enc, uint64_t &t,
                   std::vector<uint64_t> &vals) const
{
    size_t cursor = 0;
    uint64_t dt = 0;
    if (!getVar(enc.data(), enc.size(), cursor, dt))
        panic("history: truncated delta frame");
    t += dt;
    for (uint64_t &v : vals) {
        uint64_t zz = 0;
        if (!getVar(enc.data(), enc.size(), cursor, zz))
            panic("history: truncated delta frame");
        v = static_cast<uint64_t>(static_cast<int64_t>(v) +
                                  unzigzag(zz));
    }
}

std::vector<HistoryRing::Frame>
HistoryRing::frames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Frame> out;
    if (!any_)
        return out;
    out.reserve(deltas_.size() + 1);
    uint64_t t = baseT_;
    std::vector<uint64_t> vals = base_;
    out.push_back(Frame{t, vals});
    for (const std::vector<uint8_t> &enc : deltas_) {
        apply(enc, t, vals);
        out.push_back(Frame{t, vals});
    }
    return out;
}

size_t
HistoryRing::frameCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return any_ ? deltas_.size() + 1 : 0;
}

size_t
HistoryRing::encodedBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t bytes = 0;
    for (const std::vector<uint8_t> &enc : deltas_)
        bytes += enc.size();
    return bytes;
}

std::string
HistoryRing::toJson() const
{
    std::vector<Frame> fs = frames();
    JsonWriter w;
    w.beginObject();
    w.key("series").beginArray();
    for (const std::string &name : names_)
        w.value(name);
    w.endArray();
    w.key("frames").beginArray();
    for (const Frame &f : fs) {
        w.beginArray();
        w.value(f.tMs);
        for (uint64_t v : f.values)
            w.value(v);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace obs
} // namespace tea
