#include "obs/openmetrics.hh"

#include <cctype>

#include "obs/metrics.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace tea {
namespace obs {

namespace {

/** Escape a label value per the exposition format: \\ " and newline. */
std::string
labelEscape(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

void
histogramBody(std::string &out, const std::string &name,
              const std::string &labels, const HistogramView &h)
{
    // Buckets are cumulative in the exposition format (our view is
    // per-bucket), and the +inf bucket is mandatory.
    uint64_t cum = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
        cum += h.counts[b];
        std::string le =
            b < h.bounds.size() ? strprintf("%g", h.bounds[b]) : "+Inf";
        out += strprintf("%s_bucket{%sle=\"%s\"} %llu\n", name.c_str(),
                         labels.c_str(), le.c_str(),
                         static_cast<unsigned long long>(cum));
    }
    std::string bare =
        labels.empty()
            ? std::string()
            : "{" + labels.substr(0, labels.size() - 1) + "}";
    out += strprintf("%s_sum%s %.6g\n", name.c_str(), bare.c_str(),
                     h.sum);
    out += strprintf("%s_count%s %llu\n", name.c_str(), bare.c_str(),
                     static_cast<unsigned long long>(cum));
}

} // namespace

std::string
openMetricsName(const std::string &name)
{
    std::string out = "tea_";
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) || c == '_'
                   ? c
                   : '_';
    return out;
}

std::string
toOpenMetrics(const MetricsSnapshot &snap)
{
    std::string out;
    for (const auto &[name, v] : snap.counters) {
        std::string n = openMetricsName(name);
        out += strprintf("# TYPE %s counter\n", n.c_str());
        out += strprintf("%s_total %llu\n", n.c_str(),
                         static_cast<unsigned long long>(v));
    }
    for (const LabeledCounterView &lc : snap.labeledCounters) {
        std::string n = openMetricsName(lc.name);
        out += strprintf("# TYPE %s counter\n", n.c_str());
        for (const auto &[label, v] : lc.series)
            out += strprintf(
                "%s_total{%s=\"%s\"} %llu\n", n.c_str(),
                lc.labelKey.c_str(), labelEscape(label).c_str(),
                static_cast<unsigned long long>(v));
    }
    for (const auto &[name, v] : snap.gauges) {
        std::string n = openMetricsName(name);
        out += strprintf("# TYPE %s gauge\n", n.c_str());
        out += strprintf("%s %lld\n", n.c_str(),
                         static_cast<long long>(v));
    }
    for (const auto &[name, h] : snap.histograms) {
        std::string n = openMetricsName(name);
        out += strprintf("# TYPE %s histogram\n", n.c_str());
        histogramBody(out, n, "", h);
    }
    for (const LabeledHistogramView &lh : snap.labeledHistograms) {
        std::string n = openMetricsName(lh.name);
        out += strprintf("# TYPE %s histogram\n", n.c_str());
        for (const auto &[label, h] : lh.series) {
            std::string labels =
                strprintf("%s=\"%s\",", lh.labelKey.c_str(),
                          labelEscape(label).c_str());
            histogramBody(out, n, labels, h);
        }
    }
    out += "# EOF\n";
    return out;
}

} // namespace obs
} // namespace tea
