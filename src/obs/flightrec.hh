/**
 * @file
 * The flight recorder: a preallocated black box for post-mortem debug.
 *
 * `teadbt stats` answers questions while the process is alive; this
 * answers the one that matters after it isn't. The recorder holds, in
 * memory allocated up front and never grown:
 *
 * - the last K log lines (tee'd from util/logging via setLogSink);
 * - a borrowed pointer to the server's span ring, snapshot at dump
 *   time with SpanRing::snapshotInto (no allocation);
 * - the most recent history JSON (double-buffered; the sampler thread
 *   refreshes it after every frame);
 * - a config fingerprint string set at arm time.
 *
 * arm(path) installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that
 * render the whole box as one JSON document into a preallocated
 * buffer — integer formatting and string escaping by hand, no malloc,
 * no stdio — write(2) it to `path`, and re-raise the signal so the
 * default disposition (core dump, exit status) is preserved. The same
 * renderer serves the graceful paths: `teadbt flight-dump` over the
 * wire (STATS format byte 3), the dump-on-FatalError hook in the CLI,
 * and toJson() for tests.
 *
 * Log capture is guarded by an atomic spinlock; the signal handler
 * try-acquires with a bounded spin and skips the log section if the
 * crashing thread lost the race mid-append — a dump with fewer log
 * lines beats a deadlocked handler. Everything else the handler reads
 * is either immutable after arm() (path, fingerprint) or torn-tolerant
 * by construction (span seqlocks, the history buffer flip).
 */

#ifndef TEA_OBS_FLIGHTREC_HH
#define TEA_OBS_FLIGHTREC_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/trace.hh"

namespace tea {
namespace obs {

class FlightRecorder
{
  public:
    static constexpr size_t kMaxSpans = 128;
    static constexpr size_t kMaxLogs = 64;
    static constexpr size_t kMaxLogMsg = 224;
    static constexpr size_t kMaxTag = 15;
    static constexpr size_t kMaxHistory = 32 * 1024;
    static constexpr size_t kMaxFingerprint = 4096;
    static constexpr size_t kMaxPath = 1024;
    static constexpr size_t kDumpBytes = 256 * 1024;

    FlightRecorder();

    /** The process singleton the signal handlers and log sink use. */
    static FlightRecorder &instance();

    /** Borrow the span ring to snapshot at dump time (may be null). */
    void attachSpans(const SpanRing *ring);

    /** Append one log record (the registered sink calls this). */
    void noteLog(const char *tag, const char *msg);

    /** Refresh the retained history JSON (sampler thread). */
    void noteHistoryJson(const char *json, size_t len);

    /** Set the config fingerprint (call before arm()). */
    void setFingerprint(const std::string &text);

    /**
     * Install the crash-signal handlers and remember the dump path;
     * also tees util/logging into this recorder. Only meaningful on
     * instance() — the handlers reach the singleton. Idempotent.
     */
    void arm(const std::string &path);

    bool armed() const { return armed_.load(std::memory_order_acquire); }

    /** The dump path set by arm() ("" before). */
    std::string path() const;

    /**
     * Graceful dump to the armed path (FatalError hook, tests).
     * @return true when the file was written
     */
    bool dumpNow(const char *reason);

    /** Render the box as JSON without touching the filesystem. */
    std::string toJson(const char *reason) const;

    /** Signal-handler entry: render + write(2) + no return value. */
    void dumpFromSignal(int sig);

    /** Log records currently retained (tests). */
    size_t logCount() const;

  private:
    struct LogRec
    {
        uint64_t tNs = 0;
        char tag[kMaxTag + 1] = {0};
        char msg[kMaxLogMsg + 1] = {0};
    };

    /**
     * Render the whole document into dst (NUL-terminated) and return
     * the length. Async-signal-safe when fromSignal (skips the log
     * spinlock wait after a bounded spin).
     */
    size_t render(char *dst, size_t cap, const char *reason,
                  bool fromSignal) const;

    std::atomic<const SpanRing *> spans_{nullptr};
    std::atomic<bool> armed_{false};
    char path_[kMaxPath] = {0};
    char fingerprint_[kMaxFingerprint] = {0};

    // Log ring: head counts appends; slot i holds record (i % kMaxLogs).
    mutable std::atomic<uint32_t> logLock_{0};
    uint64_t logHead_ = 0;
    LogRec logs_[kMaxLogs];

    // History JSON, double-buffered: the sampler writes the inactive
    // side then flips `histActive_`; readers (including the signal
    // handler) copy from the active side.
    struct HistBuf
    {
        size_t len = 0;
        char buf[kMaxHistory] = {0};
    };
    HistBuf hist_[2];
    std::atomic<int> histActive_{-1}; ///< -1 = never written

    // Scratch the renderer fills; the signal path is single-shot and
    // the graceful paths serialize on dumpMu_.
    mutable std::mutex dumpMu_;
    mutable Span spanScratch_[kMaxSpans];
    mutable LogRec logScratch_[kMaxLogs];
    mutable char histScratch_[kMaxHistory];
    mutable char dumpBuf_[kDumpBytes];
};

/** Route util/logging's sink into FlightRecorder::instance(). */
void installFlightLogSink();

} // namespace obs
} // namespace tea

#endif // TEA_OBS_FLIGHTREC_HH
