/**
 * @file
 * Per-request span tracing for the replay stack.
 *
 * A Span is one timed phase of one request on one connection: the
 * server stamps Accept when a connection is admitted and Reply/Request
 * when it answers; the session stamps Decode (frame extraction),
 * Lookup (registry snapshot), and Replay (the kernel run). Spans
 * carry monotonic nanosecond timestamps, so a dump reads as a causal
 * timeline without any clock juggling.
 *
 * SpanRing keeps the most recent spans in a fixed, lock-free ring:
 *
 * - push() is a relaxed ticket fetch_add plus a per-slot seqlock
 *   (sequence odd while writing, even when stable); writers never
 *   block and never allocate, so the request path stays flat;
 * - recent() walks backwards from the newest ticket and drops any slot
 *   whose sequence moved mid-copy — a reader racing a wrap loses that
 *   one slot, never coherence. All slot fields are atomics, so the
 *   race is benign under TSan too;
 * - overflow simply overwrites the oldest entries; pushed() tells an
 *   observer how many spans existed in total, so "ring wrapped, N
 *   dropped" is computable.
 *
 * The ring is dumpable on demand (STATS includes the newest spans) and
 * is flushed into the slow-request log: any request slower than
 * ServerConfig::slowRequestMs gets its per-phase breakdown written as
 * one rate-limited warning (net/server.cc).
 */

#ifndef TEA_OBS_TRACE_HH
#define TEA_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace tea {
namespace obs {

/** Current time on the steady clock, in nanoseconds. */
uint64_t monotonicNanos();

/** The traced phases of one request's lifecycle. */
enum class SpanPhase : uint8_t {
    Accept = 0, ///< connection admitted to a session worker
    Decode,     ///< wire bytes -> frames (FrameDecoder)
    Lookup,     ///< automaton registry snapshot pin
    Replay,     ///< the replay kernel run (REPLAY_END)
    Reply,      ///< reply bytes flushed to the socket
    Request,    ///< the whole request, first byte to last reply byte
    Dispatch,   ///< event loop: read-ready to worker pickup latency
    StoreFaultIn, ///< store: cold .teac image mmap'd into residency
};

const char *spanPhaseName(SpanPhase phase);

/** One timed phase of one request. */
struct Span
{
    uint64_t conn = 0;    ///< server connection id
    uint64_t request = 0; ///< request ordinal within the connection
    SpanPhase phase = SpanPhase::Request;
    uint64_t startNs = 0; ///< monotonicNanos() at phase start
    uint64_t durNs = 0;   ///< phase duration
};

class SpanRing
{
  public:
    /** @param capacity slots, rounded up to a power of two (min 8) */
    explicit SpanRing(size_t capacity = 1024);

    /** Record a span; lock-free, overwrites the oldest on overflow. */
    void push(const Span &span);

    /**
     * The newest spans, oldest first, at most `max`. Best-effort under
     * concurrent writers: slots being overwritten are skipped.
     */
    std::vector<Span> recent(size_t max = SIZE_MAX) const;

    /**
     * recent() without the allocation: copy at most `max` of the
     * newest spans into caller-owned storage, oldest first, and
     * return how many were written. Same best-effort semantics as
     * recent(). Async-signal-safe — the flight recorder's crash path
     * calls this from a SIGSEGV handler, where malloc is off-limits.
     */
    size_t snapshotInto(Span *out, size_t max) const;

    /** Spans ever pushed (≥ what the ring still holds). */
    uint64_t pushed() const
    {
        return head.load(std::memory_order_relaxed);
    }

    size_t capacity() const { return slots.size(); }

  private:
    struct Slot
    {
        /** Seqlock: 0 = never written, odd = mid-write, even = stable. */
        std::atomic<uint64_t> seq{0};
        std::atomic<uint64_t> conn{0};
        std::atomic<uint64_t> request{0};
        std::atomic<uint8_t> phase{0};
        std::atomic<uint64_t> startNs{0};
        std::atomic<uint64_t> durNs{0};
    };

    std::vector<Slot> slots;
    size_t mask;
    std::atomic<uint64_t> head{0}; ///< next ticket (= total pushed)
};

} // namespace obs
} // namespace tea

#endif // TEA_OBS_TRACE_HH
