/**
 * @file
 * OpenMetrics text rendering of a MetricsSnapshot.
 *
 * The exposition format Prometheus scrapes: `# TYPE` declarations,
 * counter samples with the `_total` suffix, cumulative histogram
 * `_bucket{le="..."}` series plus `_sum`/`_count`, one label pair for
 * the per-automaton families, and a terminating `# EOF`. Metric names
 * are the registry's dotted names with a `tea_` prefix and dots
 * flattened to underscores (`svc.transitions` ->
 * `tea_svc_transitions_total`), so dashboards can tell this exporter's
 * series from anything else on the host.
 *
 * The renderer is a pure function of the snapshot — the HTTP path on
 * the event loop (net/event_loop.cc) calls it per scrape, and
 * tools/check_openmetrics.cc is the CI parser that keeps the output
 * honest against the subset of the spec we emit.
 */

#ifndef TEA_OBS_OPENMETRICS_HH
#define TEA_OBS_OPENMETRICS_HH

#include <string>

namespace tea {
namespace obs {

struct MetricsSnapshot;

/** The snapshot as OpenMetrics text, `# EOF` terminated. */
std::string toOpenMetrics(const MetricsSnapshot &snap);

/** `tea_` + name with every non-[A-Za-z0-9_] byte flattened to '_'. */
std::string openMetricsName(const std::string &name);

} // namespace obs
} // namespace tea

#endif // TEA_OBS_OPENMETRICS_HH
