/**
 * @file
 * Intra-TBB peephole optimization of trace code.
 *
 * The paper's §2 motivation is that recorded traces get *optimized*
 * using the profile data TEA collects. This pass implements the safe,
 * always-applicable subset a trace JIT would run before anything
 * speculative:
 *
 *  - **constant propagation**: after `mov r, imm`, later reads of r in
 *    the same TBB become immediates (including folding constant bases
 *    or indices into memory displacements) — bit-identical results and
 *    flags, so unconditionally sound;
 *  - **dead-store elimination** for register moves overwritten before
 *    any read (moves never write flags in TinyX86);
 *  - **strength reduction** `mul r, 2^k` -> `shl r, k`, applied only
 *    where the multiply's flags are provably dead within the TBB
 *    (flags are conservatively live across TBB boundaries — think of
 *    the ADC loops in syn.lucas).
 *
 * The scope is one TBB: side exits make cross-block transforms require
 * compensation code, which is exactly the paper's duplication/unrolling
 * discussion and out of scope for a baseline pass.
 */

#ifndef TEA_OPT_PEEPHOLE_HH
#define TEA_OPT_PEEPHOLE_HH

#include <vector>

#include "isa/program.hh"

namespace tea {

/** What the pass did (accumulated across calls). */
struct PeepholeStats
{
    uint64_t constOperands = 0;  ///< register reads become immediates
    uint64_t memFolds = 0;       ///< base/index folded into disp
    uint64_t deadMovs = 0;       ///< register moves removed
    uint64_t strengthReduced = 0;///< mul -> shift

    uint64_t
    total() const
    {
        return constOperands + memFolds + deadMovs + strengthReduced;
    }
};

/**
 * Optimize one TBB's instruction sequence.
 *
 * @param insns  the block's instructions in execution order (the
 *               terminator, if any, is transformed conservatively:
 *               its operands may be simplified but it is never removed)
 * @param stats  accumulates what happened (optional)
 * @return the optimized sequence; never more *instructions* than the
 *         input (encoded bytes may grow slightly where registers become
 *         wide immediates).
 */
std::vector<Insn> optimizeBlock(const std::vector<Insn> &insns,
                                PeepholeStats *stats = nullptr);

/** Convenience: fetch [start, end] from prog and optimize it. */
std::vector<Insn> optimizeBlock(const Program &prog, Addr start, Addr end,
                                PeepholeStats *stats = nullptr);

} // namespace tea

#endif // TEA_OPT_PEEPHOLE_HH
