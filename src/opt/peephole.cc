#include "opt/peephole.hh"

#include <optional>

#include "util/logging.hh"

namespace tea {

namespace {

using RegMask = uint32_t;

RegMask
bit(Reg r)
{
    return 1u << static_cast<unsigned>(r);
}

constexpr RegMask kAllRegs = 0xff;

/** Registers an operand reads when used as a source. */
RegMask
operandReads(const Operand &op)
{
    switch (op.kind) {
      case OperandKind::Reg:
        return bit(op.reg);
      case OperandKind::Mem: {
        RegMask m = 0;
        if (op.mem.hasBase)
            m |= bit(op.mem.base);
        if (op.mem.hasIndex)
            m |= bit(op.mem.index);
        return m;
      }
      default:
        return 0;
    }
}

/** True when the opcode reads its dst operand before writing it. */
bool
readsDst(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Lea:
      case Opcode::Pop:
        return false;
      default:
        return true;
    }
}

/** True when the opcode writes a register dst. */
bool
writesDst(Opcode op)
{
    switch (op) {
      case Opcode::Cmp:
      case Opcode::Test:
      case Opcode::Push:
      case Opcode::Out:
        return false;
      default:
        return !isControlFlow(op) && op != Opcode::Nop &&
               op != Opcode::Halt && op != Opcode::Cpuid &&
               !isRepString(op);
    }
}

RegMask
regsRead(const Insn &insn)
{
    RegMask m = 0;
    // A memory dst always reads its address registers; a register dst
    // is read only by read-modify-write opcodes.
    if (readsDst(insn.op) || insn.dst.kind == OperandKind::Mem)
        m |= operandReads(insn.dst);
    m |= operandReads(insn.src);
    switch (insn.op) {
      case Opcode::Push:
      case Opcode::Pop:
      case Opcode::Call:
      case Opcode::Ret:
        m |= bit(Reg::Esp);
        break;
      case Opcode::RepMovs:
        m |= bit(Reg::Ecx) | bit(Reg::Esi) | bit(Reg::Edi);
        break;
      case Opcode::RepStos:
        m |= bit(Reg::Ecx) | bit(Reg::Edi) | bit(Reg::Eax);
        break;
      case Opcode::RepScas:
        m |= bit(Reg::Ecx) | bit(Reg::Edi) | bit(Reg::Eax);
        break;
      case Opcode::Xchg:
        m |= operandReads(insn.dst);
        break;
      default:
        break;
    }
    return m;
}

RegMask
regsWritten(const Insn &insn)
{
    RegMask m = 0;
    if (writesDst(insn.op) && insn.dst.kind == OperandKind::Reg)
        m |= bit(insn.dst.reg);
    switch (insn.op) {
      case Opcode::Xchg:
        if (insn.src.kind == OperandKind::Reg)
            m |= bit(insn.src.reg);
        if (insn.dst.kind == OperandKind::Reg)
            m |= bit(insn.dst.reg);
        break;
      case Opcode::Push:
      case Opcode::Pop:
      case Opcode::Call:
      case Opcode::Ret:
        m |= bit(Reg::Esp);
        break;
      case Opcode::Cpuid:
        m |= bit(Reg::Eax) | bit(Reg::Ebx) | bit(Reg::Ecx) |
             bit(Reg::Edx);
        break;
      case Opcode::RepMovs:
        m |= bit(Reg::Ecx) | bit(Reg::Esi) | bit(Reg::Edi);
        break;
      case Opcode::RepStos:
      case Opcode::RepScas:
        m |= bit(Reg::Ecx) | bit(Reg::Edi);
        break;
      default:
        break;
    }
    return m;
}

/** True when the opcode writes ZF/SF/CF/OF completely. */
bool
killsAllFlags(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Adc:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Neg:
      case Opcode::Cmp:
      case Opcode::Test:
        return true;
      default:
        // Inc/Dec preserve CF; shifts skip flags when the count is 0.
        return false;
    }
}

/** True when the opcode observes the current flags. */
bool
readsFlags(Opcode op)
{
    return isConditionalJump(op) || op == Opcode::Adc;
}

/** Flags produced by insns[i]: dead if rewritten before any reader. */
bool
flagsDeadAfter(const std::vector<Insn> &insns, size_t i)
{
    for (size_t j = i + 1; j < insns.size(); ++j) {
        if (readsFlags(insns[j].op))
            return false;
        if (killsAllFlags(insns[j].op))
            return true;
    }
    return false; // conservatively live across the block boundary
}

/** log2 for exact powers of two >= 2, else nullopt. */
std::optional<int32_t>
exactLog2(int32_t v)
{
    if (v < 2 || (v & (v - 1)) != 0)
        return std::nullopt;
    int32_t k = 0;
    while ((1 << k) != v)
        ++k;
    return k;
}

/** Constant-register state. */
struct ConstState
{
    std::optional<int32_t> value[kNumRegs];

    void
    invalidate(RegMask written)
    {
        for (size_t r = 0; r < kNumRegs; ++r)
            if (written & (1u << r))
                value[r].reset();
    }
};

} // namespace

std::vector<Insn>
optimizeBlock(const std::vector<Insn> &input, PeepholeStats *stats)
{
    PeepholeStats local;
    std::vector<Insn> out;
    out.reserve(input.size());
    ConstState consts;

    for (size_t i = 0; i < input.size(); ++i) {
        Insn insn = input[i];

        // --- constant propagation into operands ------------------
        auto substitute = [&](Operand &op, bool value_position) {
            if (op.kind == OperandKind::Reg && value_position) {
                auto v = consts.value[static_cast<size_t>(op.reg)];
                if (v) {
                    op = Operand::makeImm(*v);
                    ++local.constOperands;
                }
            } else if (op.kind == OperandKind::Mem) {
                MemRef &m = op.mem;
                if (m.hasBase) {
                    auto v = consts.value[static_cast<size_t>(m.base)];
                    int64_t folded =
                        v ? static_cast<int64_t>(m.disp) + *v : 0;
                    if (v && folded >= INT32_MIN && folded <= INT32_MAX) {
                        m.disp = static_cast<int32_t>(folded);
                        m.hasBase = false;
                        m.base = Reg::Eax;
                        ++local.memFolds;
                    }
                }
                if (m.hasIndex) {
                    auto v = consts.value[static_cast<size_t>(m.index)];
                    int64_t folded =
                        v ? static_cast<int64_t>(m.disp) +
                                static_cast<int64_t>(*v) * m.scale
                          : 0;
                    if (v && folded >= INT32_MIN && folded <= INT32_MAX) {
                        m.disp = static_cast<int32_t>(folded);
                        m.hasIndex = false;
                        m.index = Reg::Eax;
                        m.scale = 1;
                        ++local.memFolds;
                    }
                }
            }
        };
        // src operands are always value reads; dst is a value read only
        // for read-only ops (cmp/test/push/out) and indirect branches.
        bool dst_is_value_read =
            insn.op == Opcode::Cmp || insn.op == Opcode::Test ||
            insn.op == Opcode::Push || insn.op == Opcode::Out;
        // xchg writes its src operand, so it is not a value read.
        if (operandCount(insn.op) >= 2 && insn.op != Opcode::Xchg)
            substitute(insn.src, true);
        if (operandCount(insn.op) >= 1)
            substitute(insn.dst, dst_is_value_read);

        // --- strength reduction -----------------------------------
        if (insn.op == Opcode::Mul && insn.src.kind == OperandKind::Imm) {
            if (auto k = exactLog2(insn.src.imm);
                k && flagsDeadAfter(input, i)) {
                insn.op = Opcode::Shl;
                insn.src = Operand::makeImm(*k);
                ++local.strengthReduced;
            }
        }

        // --- dead-mov elimination ---------------------------------
        if (insn.op == Opcode::Mov && insn.dst.kind == OperandKind::Reg) {
            Reg r = insn.dst.reg;
            if (insn.src.kind == OperandKind::Reg &&
                insn.src.reg == r) {
                ++local.deadMovs; // mov r, r
                continue;
            }
            // Overwritten before any read within the block?
            bool dead = false;
            for (size_t j = i + 1; j < input.size(); ++j) {
                if (regsRead(input[j]) & bit(r))
                    break;
                if (regsWritten(input[j]) & bit(r)) {
                    dead = true;
                    break;
                }
            }
            if (dead) {
                ++local.deadMovs;
                continue; // drop it (mov writes no flags)
            }
        }

        // --- update constant tracking -----------------------------
        consts.invalidate(regsWritten(insn));
        if (insn.op == Opcode::Mov &&
            insn.dst.kind == OperandKind::Reg &&
            insn.src.kind == OperandKind::Imm)
            consts.value[static_cast<size_t>(insn.dst.reg)] =
                insn.src.imm;

        out.push_back(insn);
    }

    if (stats) {
        stats->constOperands += local.constOperands;
        stats->memFolds += local.memFolds;
        stats->deadMovs += local.deadMovs;
        stats->strengthReduced += local.strengthReduced;
    }
    return out;
}

std::vector<Insn>
optimizeBlock(const Program &prog, Addr start, Addr end,
              PeepholeStats *stats)
{
    size_t first = prog.indexAt(start);
    size_t last = prog.indexAt(end);
    if (first == Program::npos || last == Program::npos || last < first)
        fatal("peephole: bad block [%u, %u]", start, end);
    std::vector<Insn> insns(prog.instructions().begin() +
                                static_cast<long>(first),
                            prog.instructions().begin() +
                                static_cast<long>(last) + 1);
    return optimizeBlock(insns, stats);
}

} // namespace tea
