/**
 * @file
 * The event-loop server core: one thread, epoll (or poll) readiness,
 * nonblocking sockets, bounded write queues, and a timer wheel.
 *
 * The thread-per-connection core (net/server.hh) parks one pool worker
 * on every live socket, so concurrency is capped at the worker count
 * and an idle or hostile connection holds a thread hostage. This core
 * inverts the ownership: the loop thread owns every socket, all
 * accept/read/write I/O, and the whole connection lifecycle; the
 * ThreadPool only ever runs Session::consume() — the CPU work — and
 * hands the result back through a completion queue drained on a wakeup
 * eventfd/pipe. Session itself needed no changes: it was always a
 * socket-free byte-stream state machine, which is exactly the shape a
 * readiness loop schedules.
 *
 * Threading rules (the whole contract in four lines):
 *
 * - every Conn field is owned by the loop thread, EXCEPT while a
 *   consume task is in flight (`processing == true`), when the worker
 *   exclusively owns `session`, `rdbuf`, `replies`, and the task*
 *   result fields — the loop does not touch them until the completion
 *   is dequeued (the completion mutex orders the handoff both ways);
 * - the pool never touches a socket; the loop never runs a replay.
 *
 * Robustness mechanics, all loop-local and lock-free:
 *
 * - *bounded write queues*: replies append to a per-connection queue
 *   flushed opportunistically and on EPOLLOUT. Past the high watermark
 *   the loop stops reading from that connection (a peer that won't
 *   drain its replies can't make us buffer its next requests); below
 *   the low watermark reading resumes; past the hard cap
 *   (maxWriteQueueBytes) the connection is fatally closed — memory is
 *   bounded per connection, no matter how hostile the peer;
 * - *timer wheel*: idle timeouts, mid-request deadlines, and drain
 *   deadlines are hashed-wheel timers (net/timer_wheel.hh) — no
 *   per-session waitReadable() polling, O(1) arm/cancel, and the
 *   firing cost scales with expirations, not connections;
 * - *overload shedding*: admission is checked at accept — pool backlog
 *   past maxQueue or live connections past maxSessions answer one BUSY
 *   frame (with the queue depth and cap, so clients back off smart)
 *   and close after it flushes;
 * - *graceful drain*: stop() quiesces accepts, stops reading, lets
 *   in-flight consume tasks finish, flushes every queued reply, and
 *   evicts stragglers when the drain deadline fires.
 *
 * Fault injection: connections are held through FaultySocket, so the
 * chaos config (ServerConfig::loopFaults) can inject EAGAIN storms,
 * partial writes, and spurious readiness — nonblocking failure shapes
 * the blocking core could never meet. Unarmed (the default) every call
 * passes straight through.
 */

#ifndef TEA_NET_EVENT_LOOP_HH
#define TEA_NET_EVENT_LOOP_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/fault.hh"
#include "net/socket.hh"
#include "net/timer_wheel.hh"

namespace tea {

class TeaServer;
class Session;

/**
 * One readiness-poll backend: epoll on Linux, poll(2) everywhere else
 * (and on Linux when forcePoll says so — the fallback is tested, not
 * decorative). Level-triggered semantics on both backends. Tags are
 * opaque caller tokens delivered back with each event.
 */
class Poller
{
  public:
    explicit Poller(bool forcePoll);
    ~Poller();

    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    struct Event
    {
        uint64_t tag = 0;
        bool in = false;
        bool out = false;
        bool err = false; ///< HUP/ERR: read to collect EOF/reset
    };

    void add(int fd, bool in, bool out, uint64_t tag);
    void mod(int fd, bool in, bool out, uint64_t tag);
    void del(int fd);

    /** Wait up to timeoutMs (-1 = forever); fills `out`. */
    void wait(std::vector<Event> &out, int timeoutMs);

    /** True when the epoll backend is active (reporting/tests). */
    bool usingEpoll() const { return epfd_ >= 0; }

  private:
    int epfd_ = -1; ///< epoll instance; -1 = poll backend

    struct PollEntry
    {
        bool in = false;
        bool out = false;
        uint64_t tag = 0;
    };
    std::unordered_map<int, PollEntry> pollSet_; ///< poll backend state
};

/**
 * A self-wakeup fd for the loop: eventfd on Linux, a pipe elsewhere.
 * signal() is async-signal-safe-ish (one write syscall) and callable
 * from any thread; drain() resets it on the loop thread.
 */
class WakeupFd
{
  public:
    WakeupFd();
    ~WakeupFd();

    WakeupFd(const WakeupFd &) = delete;
    WakeupFd &operator=(const WakeupFd &) = delete;

    int fd() const { return rfd_; }
    void signal();
    void drain();

  private:
    int rfd_ = -1;
    int wfd_ = -1; ///< == rfd_ for eventfd
};

class EventLoop
{
  public:
    /** `server` outlives the loop and owns the listener. */
    explicit EventLoop(TeaServer &server);
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** Put the listener in nonblocking mode and spawn the loop thread. */
    void start();

    /**
     * Graceful drain: no new accepts or reads, in-flight consume tasks
     * finish, queued replies flush, stragglers are evicted at the
     * drain deadline. Returns after the loop thread joined; idempotent.
     */
    void stop();

    /** Live admitted connections (excludes BUSY-bounced ones). */
    size_t liveConns() const { return live_.load(); }

  private:
    struct Conn;

    void run();
    void handleAccept();
    void admit(Socket sock);
    void handleReadable(Conn *c);
    void handleWritable(Conn *c);
    /**
     * Sniff the connection's first bytes: `GET ` switches it to HTTP
     * mode (the exposition endpoints share the wire listener — see
     * docs/DESIGN.md §5i); anything else replays the buffered prefix
     * into the normal frame path. Returns false while fewer than four
     * bytes have arrived (keep buffering) or when c was destroyed.
     */
    bool classifyProtocol(Conn *c, const uint8_t *data, size_t n);
    /** Accumulate HTTP bytes; serve and begin closing when complete. */
    void handleHttpBytes(Conn *c, const uint8_t *data, size_t n);
    /** Route one parsed request target and queue the response. */
    void serveHttp(Conn *c, const std::string &target);
    void dispatchConsume(Conn *c, const uint8_t *data, size_t n);
    void drainCompletions();
    void completeConsume(Conn *c);
    void handleTimer(uint64_t key);
    void beginDrain();

    /** Append bytes to c's write queue; may fatally close c (returns
     *  false then). Applies the hard cap and the high watermark. */
    bool queueBytes(Conn *c, const uint8_t *data, size_t len);
    /** Push queued bytes at the socket until empty or EAGAIN. */
    void flushWrites(Conn *c);
    /** Queue a fatal ERROR frame and begin closing c. */
    void evict(Conn *c, const char *why, bool deadline);
    /** Deregister, cancel timers, count, and destroy c. */
    void destroy(Conn *c);
    void updateInterest(Conn *c);
    void armIdle(Conn *c, uint64_t nowMs);
    void armRequestDeadline(Conn *c);

    TeaServer &srv;
    std::unique_ptr<Poller> poller_;
    WakeupFd wakeup_;
    TimerWheel wheel_;
    Xorshift64Star loopRng_; ///< spurious-readiness draws (chaos only)
    /**
     * The loop's single read scratch: recvNb lands here, then the
     * bytes are copied into the connection's own (lazily allocated)
     * buffer for the worker. One buffer for the whole loop keeps an
     * idle connection's footprint at a few hundred bytes — the 10k-
     * connection smoke test depends on that.
     */
    std::vector<uint8_t> readScratch_;

    std::thread thread_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> stopped_{false};
    bool draining_ = false; ///< loop-thread view of stopRequested_

    uint64_t nextConnId_ = 2; ///< 0 = listener tag, 1 = wakeup tag
    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
    std::atomic<size_t> live_{0};

    std::mutex doneMu_;
    std::vector<uint64_t> doneIds_; ///< completed consume tasks
};

} // namespace tea

#endif // TEA_NET_EVENT_LOOP_HH
