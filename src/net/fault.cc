#include "net/fault.hh"

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "util/logging.hh"

namespace tea {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::ShortRead:
        return "short_read";
    case FaultKind::ShortWrite:
        return "short_write";
    case FaultKind::Eintr:
        return "eintr";
    case FaultKind::Delay:
        return "delay";
    case FaultKind::Reset:
        return "reset";
    case FaultKind::Corrupt:
        return "corrupt";
    case FaultKind::NbEagainRead:
        return "nb_eagain_read";
    case FaultKind::NbEagainWrite:
        return "nb_eagain_write";
    case FaultKind::NbPartialWrite:
        return "nb_partial_write";
    case FaultKind::SpuriousReady:
        return "spurious_ready";
    }
    return "unknown";
}

void
FaultySocket::arm(const FaultConfig &config, uint64_t seed)
{
    cfg = config;
    rng = Xorshift64Star(seed);
    armed = cfg.any();
}

bool
FaultySocket::roll(double p, FaultKind kind)
{
    if (p <= 0)
        return false;
    if (!rng.nextBool(p))
        return false;
    ++injected;
    ++byKind[static_cast<size_t>(kind)];
    return true;
}

void
FaultySocket::maybeDelay()
{
    if (!roll(cfg.delay, FaultKind::Delay))
        return;
    uint64_t ms = 1 + rng.nextBelow(std::max(1u, cfg.delayMaxMs));
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void
FaultySocket::injectReset(const char *where)
{
    sock.close();
    fatal("injected fault: connection reset (%s)", where);
}

size_t
FaultySocket::recvSome(void *buf, size_t len)
{
    if (!armed) {
        size_t got = sock.recvSome(buf, len);
        received += got;
        return got;
    }
    maybeDelay();
    // A simulated EINTR: the call was interrupted and retried. Socket
    // retries real EINTRs internally, so from here it is an extra wait
    // plus a second attempt — observable only as latency.
    if (roll(cfg.eintr, FaultKind::Eintr))
        maybeDelay();
    if (roll(cfg.reset, FaultKind::Reset))
        injectReset("recv");
    size_t want = len;
    if (len > 1 && roll(cfg.shortRead, FaultKind::ShortRead))
        want = 1 + rng.nextBelow(len);
    size_t n = sock.recvSome(buf, want);
    if (n > 0 && roll(cfg.corrupt, FaultKind::Corrupt)) {
        uint8_t *p = static_cast<uint8_t *>(buf);
        size_t at = rng.nextBelow(n);
        p[at] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
    }
    received += n;
    return n;
}

void
FaultySocket::sendAll(const void *buf, size_t len)
{
    if (!armed || len == 0) {
        sock.sendAll(buf, len);
        sent += len;
        return;
    }
    maybeDelay();
    if (roll(cfg.eintr, FaultKind::Eintr))
        maybeDelay();
    if (roll(cfg.reset, FaultKind::Reset))
        injectReset("send");
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    if (roll(cfg.corrupt, FaultKind::Corrupt)) {
        // Flip one byte on the way out: the peer's frame CRC must trip.
        std::vector<uint8_t> bent(p, p + len);
        size_t at = rng.nextBelow(len);
        bent[at] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
        sock.sendAll(bent.data(), bent.size());
        sent += len;
        return;
    }
    if (len > 1 && roll(cfg.shortWrite, FaultKind::ShortWrite)) {
        // Split the write: the peer sees the frame arrive in pieces
        // (and a reset may land between the halves, mid-frame).
        size_t cut = 1 + rng.nextBelow(len - 1);
        sock.sendAll(p, cut);
        sent += cut;
        maybeDelay();
        if (roll(cfg.reset, FaultKind::Reset))
            injectReset("send (mid-frame)");
        sock.sendAll(p + cut, len - cut);
        sent += len - cut;
        return;
    }
    sock.sendAll(p, len);
    sent += len;
}

Socket::IoResult
FaultySocket::recvNb(void *buf, size_t len)
{
    if (!armed) {
        Socket::IoResult res = sock.recvNb(buf, len);
        received += res.n;
        return res;
    }
    if (roll(cfg.nbEagainRead, FaultKind::NbEagainRead)) {
        // Nothing touched the fd: the data (if any) is still queued,
        // and level-triggered readiness will re-offer it — an EAGAIN
        // storm only costs extra loop iterations.
        Socket::IoResult res;
        res.wouldBlock = true;
        return res;
    }
    if (roll(cfg.reset, FaultKind::Reset)) {
        // The nonblocking surface reports peer-gone in-band.
        sock.close();
        Socket::IoResult res;
        res.closed = true;
        return res;
    }
    size_t want = len;
    if (len > 1 && roll(cfg.shortRead, FaultKind::ShortRead))
        want = 1 + rng.nextBelow(len);
    Socket::IoResult res = sock.recvNb(buf, want);
    if (res.n > 0 && roll(cfg.corrupt, FaultKind::Corrupt)) {
        uint8_t *p = static_cast<uint8_t *>(buf);
        size_t at = rng.nextBelow(res.n);
        p[at] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
    }
    received += res.n;
    return res;
}

Socket::IoResult
FaultySocket::sendNb(const void *buf, size_t len)
{
    if (!armed || len == 0) {
        Socket::IoResult res = sock.sendNb(buf, len);
        sent += res.n;
        return res;
    }
    if (roll(cfg.nbEagainWrite, FaultKind::NbEagainWrite)) {
        Socket::IoResult res;
        res.wouldBlock = true;
        return res;
    }
    if (roll(cfg.reset, FaultKind::Reset)) {
        sock.close();
        Socket::IoResult res;
        res.closed = true;
        return res;
    }
    size_t want = len;
    if (len > 1 && roll(cfg.nbPartialWrite, FaultKind::NbPartialWrite))
        // Truncate the *attempt*: the bytes after the cut are simply
        // not offered to the kernel, so the caller's write queue keeps
        // them — exactly a short send() under a full socket buffer,
        // landed deliberately at interesting (watermark) boundaries.
        want = 1 + rng.nextBelow(len - 1);
    Socket::IoResult res;
    if (roll(cfg.corrupt, FaultKind::Corrupt)) {
        std::vector<uint8_t> bent(static_cast<const uint8_t *>(buf),
                                  static_cast<const uint8_t *>(buf) +
                                      want);
        size_t at = rng.nextBelow(want);
        bent[at] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
        res = sock.sendNb(bent.data(), bent.size());
    } else {
        res = sock.sendNb(buf, want);
    }
    sent += res.n;
    return res;
}

bool
FaultySocket::rollSpuriousReady()
{
    if (!armed)
        return false;
    return roll(cfg.spuriousReady, FaultKind::SpuriousReady);
}

} // namespace tea

