#include "net/event_loop.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "net/frame.hh"
#include "net/server.hh"
#include "net/session.hh"
#include "obs/flightrec.hh"
#include "util/logging.hh"

namespace tea {

namespace {

uint64_t
steadyMs()
{
    using namespace std::chrono;
    return static_cast<uint64_t>(duration_cast<milliseconds>(
                                     steady_clock::now().time_since_epoch())
                                     .count());
}

/** Timer-wheel key packing: one wheel, three clocks per connection. */
enum TimerKind : uint64_t {
    kTimerIdle = 0,
    kTimerRequest = 1,
    kTimerDrain = 2,
};

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeupTag = 1;

uint64_t
timerKey(uint64_t connId, TimerKind kind)
{
    return (connId << 2) | kind;
}

uint64_t
timerConn(uint64_t key)
{
    return key >> 2;
}

TimerKind
timerKind(uint64_t key)
{
    return static_cast<TimerKind>(key & 3);
}

/** How long the poll may sleep with no timer armed (ms). */
constexpr uint64_t kIdlePollMs = 200;

constexpr size_t kReadChunk = 64 * 1024;

} // namespace

// ------------------------------------------------------------------ Poller

Poller::Poller(bool forcePoll)
{
#if defined(__linux__)
    if (!forcePoll) {
        epfd_ = ::epoll_create1(0);
        if (epfd_ < 0)
            fatal("epoll_create1: %s", std::strerror(errno));
        return;
    }
#else
    (void)forcePoll;
#endif
    // poll(2) backend: pollSet_ is the registration table; each wait
    // builds the pollfd array from it. O(n) per wait, which is the
    // price of portability — the epoll backend is the scale path.
}

Poller::~Poller()
{
#if defined(__linux__)
    if (epfd_ >= 0)
        ::close(epfd_);
#endif
}

void
Poller::add(int fd, bool in, bool out, uint64_t tag)
{
#if defined(__linux__)
    if (epfd_ >= 0) {
        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = (in ? EPOLLIN : 0u) | (out ? EPOLLOUT : 0u);
        ev.data.u64 = tag;
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
            fatal("epoll_ctl(ADD): %s", std::strerror(errno));
        return;
    }
#endif
    pollSet_[fd] = PollEntry{in, out, tag};
}

void
Poller::mod(int fd, bool in, bool out, uint64_t tag)
{
#if defined(__linux__)
    if (epfd_ >= 0) {
        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = (in ? EPOLLIN : 0u) | (out ? EPOLLOUT : 0u);
        ev.data.u64 = tag;
        if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0)
            fatal("epoll_ctl(MOD): %s", std::strerror(errno));
        return;
    }
#endif
    pollSet_[fd] = PollEntry{in, out, tag};
}

void
Poller::del(int fd)
{
#if defined(__linux__)
    if (epfd_ >= 0) {
        // Ignore failures: the fd may already be gone (closed first).
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
        return;
    }
#endif
    pollSet_.erase(fd);
}

void
Poller::wait(std::vector<Event> &out, int timeoutMs)
{
    out.clear();
#if defined(__linux__)
    if (epfd_ >= 0) {
        epoll_event evs[256];
        int n;
        do {
            n = ::epoll_wait(epfd_, evs, 256, timeoutMs);
        } while (n < 0 && errno == EINTR);
        if (n < 0)
            fatal("epoll_wait: %s", std::strerror(errno));
        out.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            Event e;
            e.tag = evs[i].data.u64;
            e.in = (evs[i].events & EPOLLIN) != 0;
            e.out = (evs[i].events & EPOLLOUT) != 0;
            e.err = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
            out.push_back(e);
        }
        return;
    }
#endif
    std::vector<pollfd> pfds;
    std::vector<uint64_t> tags;
    pfds.reserve(pollSet_.size());
    tags.reserve(pollSet_.size());
    for (const auto &kv : pollSet_) {
        pollfd p;
        p.fd = kv.first;
        p.events = static_cast<short>((kv.second.in ? POLLIN : 0) |
                                      (kv.second.out ? POLLOUT : 0));
        p.revents = 0;
        pfds.push_back(p);
        tags.push_back(kv.second.tag);
    }
    int n;
    do {
        n = ::poll(pfds.data(), pfds.size(), timeoutMs);
    } while (n < 0 && errno == EINTR);
    if (n < 0)
        fatal("poll: %s", std::strerror(errno));
    for (size_t i = 0; i < pfds.size() && n > 0; ++i) {
        if (pfds[i].revents == 0)
            continue;
        --n;
        Event e;
        e.tag = tags[i];
        e.in = (pfds[i].revents & POLLIN) != 0;
        e.out = (pfds[i].revents & POLLOUT) != 0;
        e.err = (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        out.push_back(e);
    }
}

// ---------------------------------------------------------------- WakeupFd

WakeupFd::WakeupFd()
{
#if defined(__linux__)
    rfd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (rfd_ < 0)
        fatal("eventfd: %s", std::strerror(errno));
    wfd_ = rfd_;
#else
    int fds[2];
    if (::pipe(fds) != 0)
        fatal("pipe: %s", std::strerror(errno));
    rfd_ = fds[0];
    wfd_ = fds[1];
    // Nonblocking both ends: a full pipe just means "already signaled".
    for (int fd : fds) {
        int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
#endif
}

WakeupFd::~WakeupFd()
{
    if (rfd_ >= 0)
        ::close(rfd_);
    if (wfd_ >= 0 && wfd_ != rfd_)
        ::close(wfd_);
}

void
WakeupFd::signal()
{
    uint64_t one = 1;
    ssize_t rv;
    do {
        rv = ::write(wfd_, &one, sizeof(one));
    } while (rv < 0 && errno == EINTR);
    // EAGAIN means the counter/pipe is already pending: good enough.
}

void
WakeupFd::drain()
{
    uint8_t buf[512];
    ssize_t rv;
    do {
        rv = ::read(rfd_, buf, sizeof(buf));
    } while (rv > 0 || (rv < 0 && errno == EINTR));
}

// --------------------------------------------------------------- EventLoop

/**
 * One connection's loop-side state. Ownership: the loop thread, except
 * the fields a running consume task exclusively writes (see file
 * comment in event_loop.hh).
 */
struct EventLoop::Conn
{
    uint64_t id = 0;
    FaultySocket sock;
    std::unique_ptr<Session> session; ///< null for BUSY-bounced conns

    // Write queue: one flat buffer consumed from wqOff. Compacted when
    // fully drained, so steady-state request/reply traffic never
    // reallocates.
    std::vector<uint8_t> wq;
    size_t wqOff = 0;

    // Consume-task handoff (worker-owned while processing). rdbuf is
    // allocated on the first dispatch and capped at one read chunk, so
    // a connection that never sends costs no buffer at all.
    std::vector<uint8_t> rdbuf;
    std::vector<uint8_t> replies;
    bool taskKeep = true;
    bool taskMid = false;
    uint64_t taskCompleted = 0;

    bool processing = false; ///< consume task in flight
    bool stalled = false;    ///< reads paused by the high watermark
    bool closing = false;    ///< flush the queue, then destroy
    bool doomed = false;     ///< destroy at next completion
    bool peerGone = false;   ///< EOF/reset seen on the read side
    bool busyReject = false; ///< admission bounce: BUSY then close
    bool wantIn = false;     ///< current poller interest
    bool wantOut = false;

    uint64_t lastActivityMs = 0; ///< feeds the idle clock
    uint64_t requestStartMs = 0; ///< feeds the request clock
    uint64_t requestStartNs = 0;
    uint64_t readyNs = 0; ///< read-to-dispatch stamp (Dispatch span)
    bool midRequest = false;
    uint64_t lastCompleted = 0;

    // HTTP exposition on the shared listener: the first bytes of every
    // connection are sniffed once; a `GET ` prefix switches the conn to
    // HTTP mode, where the loop itself parses one request and queues
    // the response (no Session, no pool task). Everything else replays
    // the sniffed prefix into the normal frame path.
    bool protoKnown = false; ///< first-bytes classification done
    bool isHttp = false;
    std::vector<uint8_t> httpBuf; ///< pre-classification + HTTP request
};

/** One HTTP request's headers may not exceed this (scrapers are tiny). */
constexpr size_t kMaxHttpRequest = 8 * 1024;

EventLoop::EventLoop(TeaServer &server)
    : srv(server),
      poller_(new Poller(server.cfg.loopForcePoll)),
      wheel_(server.cfg.loopTickMs == 0 ? 4 : server.cfg.loopTickMs),
      loopRng_(server.cfg.loopFaultSeed ^ 0x9e3779b97f4a7c15ull),
      readScratch_(kReadChunk)
{
}

EventLoop::~EventLoop()
{
    stop();
}

void
EventLoop::start()
{
    if (started_.exchange(true))
        panic("event loop: started twice");
    srv.listener.setNonBlocking(true);
    poller_->add(srv.listener.fd(), /*in=*/true, /*out=*/false,
                 kListenerTag);
    poller_->add(wakeup_.fd(), /*in=*/true, /*out=*/false, kWakeupTag);
    thread_ = std::thread([this] { run(); });
}

void
EventLoop::stop()
{
    if (!started_.load() || stopped_.exchange(true))
        return;
    stopRequested_.store(true);
    wakeup_.signal();
    if (thread_.joinable())
        thread_.join();
}

void
EventLoop::run()
{
    std::vector<Poller::Event> events;
    std::vector<uint64_t> expired;
    for (;;) {
        uint64_t now = steadyMs();

        // Fire due timers first: a poll that slept exactly one budget
        // wakes into the expirations that budget was computed for.
        expired.clear();
        wheel_.advance(now, expired);
        for (uint64_t key : expired) {
            srv.mLoopTimers->inc();
            handleTimer(key);
        }

        if (draining_ && conns_.empty())
            break;

        uint64_t budget = wheel_.pollBudgetMs(now, kIdlePollMs);
        poller_->wait(events,
                      static_cast<int>(std::min<uint64_t>(budget, 1000)));
        uint64_t t0 = obs::monotonicNanos();
        srv.mLoopIterations->inc();

        for (const Poller::Event &ev : events) {
            if (ev.tag == kListenerTag) {
                handleAccept();
                continue;
            }
            if (ev.tag == kWakeupTag) {
                srv.mLoopWakeups->inc();
                wakeup_.drain();
                continue;
            }
            auto it = conns_.find(ev.tag);
            if (it == conns_.end())
                continue; // destroyed earlier this same batch
            Conn *c = it->second.get();
            // Write first: draining the queue may unstall the read
            // side, and an errored fd surfaces EOF through the read.
            if (ev.out)
                handleWritable(c);
            if (conns_.count(ev.tag) == 0)
                continue; // handleWritable may destroy
            if (ev.in || ev.err)
                handleReadable(c);
        }

        // Chaos only: phantom readiness on a random armed connection.
        // A correct loop treats it as any level-triggered wakeup — the
        // recvNb comes back wouldBlock and nothing changes.
        if (srv.cfg.loopFaults.spuriousReady > 0 && !conns_.empty() &&
            loopRng_.nextBool(srv.cfg.loopFaults.spuriousReady)) {
            auto it = conns_.begin();
            std::advance(it, loopRng_.nextBelow(conns_.size()));
            Conn *c = it->second.get();
            if (c->sock.rollSpuriousReady())
                srv.mLoopFaults->inc();
            if (c->wantIn)
                handleReadable(c);
        }

        drainCompletions();

        if (stopRequested_.load() && !draining_)
            beginDrain();

        srv.hLoopMs->observe(
            static_cast<double>(obs::monotonicNanos() - t0) / 1e6);
    }
}

void
EventLoop::handleAccept()
{
    for (;;) {
        if (draining_)
            return;
        Socket sock;
        Socket::IoResult res = srv.listener.acceptNb(sock);
        if (res.wouldBlock || res.closed)
            return;
        admit(std::move(sock));
    }
}

void
EventLoop::admit(Socket sock)
{
    size_t depth = srv.pool.pending();
    bool busy =
        depth >= srv.cfg.maxQueue ||
        (srv.cfg.maxSessions != 0 && live_.load() >= srv.cfg.maxSessions);

    sock.setNonBlocking(true);
    auto conn = std::make_unique<Conn>();
    Conn *c = conn.get();
    c->id = nextConnId_++;
    c->sock = FaultySocket(std::move(sock));
    if (srv.cfg.loopFaults.any())
        c->sock.arm(srv.cfg.loopFaults, srv.cfg.loopFaultSeed + c->id);
    uint64_t now = steadyMs();
    c->lastActivityMs = now;
    conns_.emplace(c->id, std::move(conn));

    if (busy) {
        // Backpressure at the door, exactly like the blocking core:
        // one BUSY frame naming the queue depth and the cap, then
        // close once it flushes. No Session is built, nothing of the
        // client's is buffered.
        c->busyReject = true;
        c->closing = true;
        srv.rejected.fetch_add(1);
        srv.mBusy->inc();
        PayloadWriter w;
        w.u32(static_cast<uint32_t>(std::min<size_t>(depth, UINT32_MAX)));
        w.u32(static_cast<uint32_t>(
            std::min<size_t>(srv.cfg.maxSessions, UINT32_MAX)));
        std::vector<uint8_t> frame;
        appendFrame(frame, MsgType::Busy, w.out());
        poller_->add(c->sock.fd(), /*in=*/false, /*out=*/false, c->id);
        if (!queueBytes(c, frame.data(), frame.size()))
            return; // already destroyed (cap — cannot happen, frame is tiny)
        // A peer that never reads its BUSY must not leak the conn.
        wheel_.schedule(timerKey(c->id, kTimerDrain), now + 1000);
        flushWrites(c);
        return;
    }

    live_.fetch_add(1);
    c->session = srv.makeSession(c->id);
    c->wantIn = true;
    poller_->add(c->sock.fd(), /*in=*/true, /*out=*/false, c->id);
    armIdle(c, now);

    if (srv.svcObs_.spans != nullptr) {
        obs::Span accept;
        accept.conn = c->id;
        accept.phase = obs::SpanPhase::Accept;
        accept.startNs = obs::monotonicNanos();
        accept.durNs = 0; // admission is immediate on the loop
        srv.spans_.push(accept);
    }
}

void
EventLoop::handleReadable(Conn *c)
{
    // While a consume runs, or while backpressure has us deliberately
    // not reading, readable events are ignored (interest should be off;
    // spurious/level-triggered leftovers land here harmlessly).
    if (c->processing || c->stalled || c->closing || c->peerGone)
        return;
    Socket::IoResult res = c->sock.recvNb(readScratch_.data(), kReadChunk);
    if (res.wouldBlock)
        return; // spurious readiness: nothing was there after all
    if (res.closed || res.n == 0) {
        c->peerGone = true;
        // EOF with replies still queued: flush them, then close — the
        // peer may have half-closed and still be reading.
        if (c->wq.size() - c->wqOff == 0)
            destroy(c);
        else {
            c->closing = true;
            c->wantIn = false;
            updateInterest(c);
        }
        return;
    }
    srv.mBytesIn->inc(res.n);
    uint64_t now = steadyMs();
    c->lastActivityMs = now;
    if (!c->protoKnown) {
        if (!classifyProtocol(c, readScratch_.data(), res.n))
            return; // fewer than four bytes so far; keep buffering
        // The sniffed prefix is in httpBuf either way: an HTTP request
        // head, or wire-protocol bytes to replay into the frame path.
        std::vector<uint8_t> prefix = std::move(c->httpBuf);
        c->httpBuf = {};
        if (c->isHttp) {
            handleHttpBytes(c, prefix.data(), prefix.size());
            return;
        }
        if (!c->midRequest) {
            c->requestStartMs = now;
            c->requestStartNs = obs::monotonicNanos();
        }
        dispatchConsume(c, prefix.data(), prefix.size());
        return;
    }
    if (c->isHttp) {
        handleHttpBytes(c, readScratch_.data(), res.n);
        return;
    }
    if (!c->midRequest) {
        c->requestStartMs = now;
        c->requestStartNs = obs::monotonicNanos();
    }
    dispatchConsume(c, readScratch_.data(), res.n);
}

bool
EventLoop::classifyProtocol(Conn *c, const uint8_t *data, size_t n)
{
    c->httpBuf.insert(c->httpBuf.end(), data, data + n);
    if (c->httpBuf.size() < 4)
        return false; // not enough to tell; wait for more bytes
    c->protoKnown = true;
    c->isHttp = std::memcmp(c->httpBuf.data(), "GET ", 4) == 0;
    return true;
}

void
EventLoop::handleHttpBytes(Conn *c, const uint8_t *data, size_t n)
{
    if (c->httpBuf.size() + n > kMaxHttpRequest) {
        destroy(c); // a scraper's request never approaches the cap
        return;
    }
    c->httpBuf.insert(c->httpBuf.end(), data, data + n);
    // One request per connection (Connection: close): serve once the
    // header block is complete, ignore anything after it.
    static const char kEnd[] = "\r\n\r\n";
    auto it = std::search(c->httpBuf.begin(), c->httpBuf.end(), kEnd,
                          kEnd + 4);
    if (it == c->httpBuf.end())
        return; // headers still arriving
    // Request line: "GET <target> HTTP/1.1". The target ends at the
    // first space or CR after the method.
    std::string head(c->httpBuf.begin(), it);
    std::string target;
    size_t start = 4; // past "GET "
    size_t end = head.find_first_of(" \r\n", start);
    target = head.substr(start, (end == std::string::npos
                                     ? head.size()
                                     : end) -
                                    start);
    c->httpBuf.clear();
    c->httpBuf.shrink_to_fit();
    srv.mHttpRequests->inc();
    serveHttp(c, target);
}

void
EventLoop::serveHttp(Conn *c, const std::string &target)
{
    // Strip any query string: /metrics?x=y scrapes /metrics.
    std::string path = target.substr(0, target.find('?'));
    int status = 200;
    const char *statusText = "OK";
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    if (path == "/metrics") {
        contentType = "application/openmetrics-text; version=1.0.0; "
                      "charset=utf-8";
        body = srv.openMetricsText();
    } else if (path == "/healthz") {
        if (draining_ || srv.draining()) {
            status = 503;
            statusText = "Service Unavailable";
            body = "draining\n";
        } else {
            body = "ok\n";
        }
    } else if (path == "/history.json") {
        contentType = "application/json";
        body = srv.historyJson();
    } else if (path == "/flight.json") {
        contentType = "application/json";
        body = obs::FlightRecorder::instance().toJson("http");
    } else {
        status = 404;
        statusText = "Not Found";
        body = "not found\n";
    }
    std::string resp = strprintf("HTTP/1.1 %d %s\r\n"
                                 "Content-Type: %s\r\n"
                                 "Content-Length: %zu\r\n"
                                 "Connection: close\r\n\r\n",
                                 status, statusText, contentType.c_str(),
                                 body.size());
    resp += body;
    // Reply, then close — exactly the eviction-frame flush discipline:
    // queue, stop reading, cut at the drain deadline if never drained.
    c->closing = true;
    c->wantIn = false;
    updateInterest(c);
    if (!queueBytes(c, reinterpret_cast<const uint8_t *>(resp.data()),
                    resp.size()))
        return; // hard cap tripped: connection destroyed
    wheel_.schedule(timerKey(c->id, kTimerDrain),
                    steadyMs() +
                        std::max<uint32_t>(srv.cfg.drainDeadlineMs, 100));
    flushWrites(c);
}

void
EventLoop::dispatchConsume(Conn *c, const uint8_t *data, size_t n)
{
    c->rdbuf.assign(data, data + n);
    c->processing = true;
    c->wantIn = false; // no reads until the session is ours again
    updateInterest(c);
    c->readyNs = obs::monotonicNanos();
    srv.pool.submit([this, c] {
        if (srv.svcObs_.spans != nullptr) {
            obs::Span d;
            d.conn = c->id;
            d.phase = obs::SpanPhase::Dispatch;
            d.startNs = c->readyNs;
            d.durNs = obs::monotonicNanos() - c->readyNs;
            srv.spans_.push(d);
        }
        c->replies.clear();
        bool keep = false;
        try {
            keep = c->session->consume(c->rdbuf.data(), c->rdbuf.size(),
                                       c->replies);
        } catch (const FatalError &) {
            // Session::consume contractually does not throw FatalError;
            // if a library bug ever breaks that, fail the connection,
            // not the server.
        }
        c->taskKeep = keep;
        c->taskMid = c->session->midRequest();
        c->taskCompleted = c->session->requestsCompleted();
        {
            std::lock_guard<std::mutex> lock(doneMu_);
            doneIds_.push_back(c->id);
        }
        wakeup_.signal();
    });
}

void
EventLoop::drainCompletions()
{
    std::vector<uint64_t> done;
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        done.swap(doneIds_);
    }
    for (uint64_t id : done) {
        auto it = conns_.find(id);
        if (it == conns_.end())
            continue; // destroyed while the task ran (cannot happen:
                      // destruction is deferred via doomed)
        completeConsume(it->second.get());
    }
}

void
EventLoop::completeConsume(Conn *c)
{
    c->processing = false;
    if (c->doomed) {
        destroy(c);
        return;
    }
    uint64_t now = steadyMs();
    uint64_t id = c->id; // flushWrites below may destroy (free) c
    c->lastActivityMs = now; // the server worked: that is activity

    if (!c->replies.empty()) {
        uint64_t tReply = obs::monotonicNanos();
        if (!queueBytes(c, c->replies.data(), c->replies.size()))
            return; // hard cap tripped: connection gone
        flushWrites(c);
        if (conns_.count(id) == 0)
            return; // write side died during the flush
        if (srv.svcObs_.spans != nullptr) {
            obs::Span rep;
            rep.conn = c->id;
            rep.request = c->session->requestsBegun();
            rep.phase = obs::SpanPhase::Reply;
            rep.startNs = tReply;
            rep.durNs = obs::monotonicNanos() - tReply;
            srv.spans_.push(rep);
        }
    }

    if (c->taskCompleted != c->lastCompleted) {
        // One or more requests finished in this consume: end-to-end
        // latency, Request span, slow-request log — the same
        // bookkeeping the blocking core does inline.
        c->lastCompleted = c->taskCompleted;
        uint64_t endNs = obs::monotonicNanos();
        uint64_t durNs = endNs - c->requestStartNs;
        double durMs = static_cast<double>(durNs) / 1e6;
        srv.hRequestMs->observe(durMs);
        if (srv.svcObs_.spans != nullptr) {
            obs::Span req;
            req.conn = c->id;
            req.request = c->session->requestsBegun();
            req.phase = obs::SpanPhase::Request;
            req.startNs = c->requestStartNs;
            req.durNs = durNs;
            srv.spans_.push(req);
        }
        std::vector<obs::Span> phases = c->session->takeRequestSpans();
        if (srv.cfg.slowRequestMs != 0 &&
            durMs >= static_cast<double>(srv.cfg.slowRequestMs)) {
            srv.mSlow->inc();
            RateLimiter &limiter = sharedWarnLimiter();
            if (limiter.allow()) {
                limiter.suppressedAndReset();
                std::string breakdown;
                for (const obs::Span &s : phases)
                    breakdown += strprintf(
                        " %s=%.2fms", obs::spanPhaseName(s.phase),
                        static_cast<double>(s.durNs) / 1e6);
                warn("tead: slow request on conn %llu: %.1f ms "
                     "(threshold %u ms)%s",
                     static_cast<unsigned long long>(c->id), durMs,
                     srv.cfg.slowRequestMs, breakdown.c_str());
            }
        }
    }

    c->midRequest = c->taskMid;
    armRequestDeadline(c);

    if (!c->taskKeep || draining_ || c->peerGone) {
        // The session ended (fatal protocol error), the server is
        // draining, or the peer already hung up: flush and close.
        c->closing = true;
        c->wantIn = false;
        updateInterest(c);
        if (c->wq.size() - c->wqOff == 0)
            destroy(c);
        return;
    }

    armIdle(c, now);
    if (!c->stalled) {
        c->wantIn = true;
        updateInterest(c);
        // Bytes that arrived while we were busy are sitting in the
        // kernel buffer; level-triggered readiness re-offers them on
        // the next wait, so no explicit re-read is needed here.
    }
}

bool
EventLoop::queueBytes(Conn *c, const uint8_t *data, size_t len)
{
    size_t pending = c->wq.size() - c->wqOff;
    if (pending + len > srv.cfg.maxWriteQueueBytes) {
        // The peer demanded more output than it is willing to drain.
        // There is no way to tell it (the pipe is exactly what is
        // full), so: count, log rate-limited, close.
        srv.mLoopOverflow->inc();
        srv.evicted.fetch_add(1);
        srv.mEvictDeadline->inc();
        RateLimiter &limiter = sharedWarnLimiter();
        if (limiter.allow()) {
            limiter.suppressedAndReset();
            warn("tead: closing conn %llu: write queue over hard cap "
                 "(%zu + %zu > %zu bytes)",
                 static_cast<unsigned long long>(c->id), pending, len,
                 srv.cfg.maxWriteQueueBytes);
        }
        destroy(c);
        return false;
    }
    if (c->wqOff > 0 && c->wqOff == c->wq.size()) {
        c->wq.clear();
        c->wqOff = 0;
    }
    c->wq.insert(c->wq.end(), data, data + len);
    pending += len;
    if (!c->stalled && pending > srv.cfg.writeHighWatermark) {
        // Stop reading: the peer's unread replies, not our memory, are
        // now the bottleneck.
        c->stalled = true;
        srv.mLoopStalls->inc();
        c->wantIn = false;
        updateInterest(c);
    }
    return true;
}

void
EventLoop::flushWrites(Conn *c)
{
    while (c->wq.size() - c->wqOff > 0) {
        Socket::IoResult res =
            c->sock.sendNb(c->wq.data() + c->wqOff, c->wq.size() - c->wqOff);
        if (res.n > 0) {
            srv.mBytesOut->inc(res.n);
            c->wqOff += res.n;
            continue;
        }
        if (res.wouldBlock) {
            srv.mLoopDeferred->inc();
            if (!c->wantOut) {
                c->wantOut = true;
                updateInterest(c);
            }
            break;
        }
        // closed: the write side is dead; nothing more can reach the
        // peer, so the connection is over regardless of what's queued.
        destroy(c);
        return;
    }
    size_t pending = c->wq.size() - c->wqOff;
    if (pending == 0) {
        c->wq.clear();
        c->wqOff = 0;
        if (c->wantOut) {
            c->wantOut = false;
            updateInterest(c);
        }
        if (c->closing) {
            destroy(c);
            return;
        }
    }
    if (c->stalled && pending <= srv.cfg.writeLowWatermark) {
        // Recovered: the peer drained below the low watermark, reads
        // may resume (unless something else holds them off).
        c->stalled = false;
        if (!c->processing && !c->closing && !c->peerGone) {
            c->wantIn = true;
            updateInterest(c);
        }
    }
}

void
EventLoop::handleWritable(Conn *c)
{
    flushWrites(c);
}

void
EventLoop::evict(Conn *c, const char *why, bool deadline)
{
    srv.evicted.fetch_add(1);
    (deadline ? srv.mEvictDeadline : srv.mEvictIdle)->inc();
    PayloadWriter w;
    w.u8(1); // fatal: the connection closes after this frame
    w.str(strprintf("connection evicted: %s", why));
    std::vector<uint8_t> frame;
    appendFrame(frame, MsgType::Error, w.out());
    RateLimiter &limiter = sharedWarnLimiter();
    if (limiter.allow()) {
        uint64_t dropped = limiter.suppressedAndReset();
        if (dropped > 0)
            warn("tead: evicted connection (%s); %llu similar warnings "
                 "suppressed",
                 why, static_cast<unsigned long long>(dropped));
        else
            warn("tead: evicted connection (%s)", why);
    }
    c->closing = true;
    c->wantIn = false;
    updateInterest(c);
    if (!queueBytes(c, frame.data(), frame.size()))
        return; // queue full: destroyed already, eviction still counted
    // Give the eviction frame a bounded shot at flushing, then cut.
    wheel_.schedule(timerKey(c->id, kTimerDrain),
                    steadyMs() + std::max<uint32_t>(
                                     srv.cfg.drainDeadlineMs, 100));
    flushWrites(c);
}

void
EventLoop::handleTimer(uint64_t key)
{
    auto it = conns_.find(timerConn(key));
    if (it == conns_.end())
        return; // connection already gone; stale by construction
    Conn *c = it->second.get();
    uint64_t now = steadyMs();
    switch (timerKind(key)) {
    case kTimerIdle: {
        if (srv.cfg.idleTimeoutMs == 0 || c->closing)
            return;
        uint64_t deadline = c->lastActivityMs + srv.cfg.idleTimeoutMs;
        if (c->processing || now < deadline) {
            // Activity moved the goalposts (or a consume is running,
            // which counts as activity): re-arm for the real deadline.
            wheel_.schedule(key, std::max(deadline, now + 1));
            return;
        }
        evict(c, "idle timeout", /*deadline=*/false);
        return;
    }
    case kTimerRequest: {
        if (srv.cfg.requestDeadlineMs == 0 || c->closing)
            return;
        if (!c->midRequest)
            return; // request finished since arming; clock disarmed
        uint64_t deadline = c->requestStartMs + srv.cfg.requestDeadlineMs;
        if (c->processing || now < deadline) {
            wheel_.schedule(key, std::max(deadline, now + 1));
            return;
        }
        evict(c, "request deadline exceeded", /*deadline=*/true);
        return;
    }
    case kTimerDrain: {
        // Patience exhausted: BUSY bounce unread, eviction frame
        // unflushed, or stop() drain overdue. Cut the connection; if a
        // consume still runs, defer destruction to its completion.
        if (c->processing) {
            c->doomed = true;
            return;
        }
        destroy(c);
        return;
    }
    }
}

void
EventLoop::armIdle(Conn *c, uint64_t nowMs)
{
    if (srv.cfg.idleTimeoutMs == 0)
        return;
    wheel_.schedule(timerKey(c->id, kTimerIdle),
                    nowMs + srv.cfg.idleTimeoutMs);
}

void
EventLoop::armRequestDeadline(Conn *c)
{
    if (srv.cfg.requestDeadlineMs == 0)
        return;
    uint64_t key = timerKey(c->id, kTimerRequest);
    if (c->midRequest)
        wheel_.schedule(key,
                        c->requestStartMs + srv.cfg.requestDeadlineMs);
    else
        wheel_.cancel(key);
}

void
EventLoop::updateInterest(Conn *c)
{
    poller_->mod(c->sock.fd(), c->wantIn, c->wantOut, c->id);
}

void
EventLoop::destroy(Conn *c)
{
    if (c->processing) {
        // A worker still owns the session: defer to completion.
        c->doomed = true;
        return;
    }
    wheel_.cancel(timerKey(c->id, kTimerIdle));
    wheel_.cancel(timerKey(c->id, kTimerRequest));
    wheel_.cancel(timerKey(c->id, kTimerDrain));
    poller_->del(c->sock.fd());
    srv.mLoopFaults->inc(c->sock.faultsInjected());
    if (!c->busyReject) {
        live_.fetch_sub(1);
        srv.served.fetch_add(1);
        srv.mSessions->inc();
    }
    conns_.erase(c->id); // frees c
}

void
EventLoop::beginDrain()
{
    draining_ = true;
    poller_->del(srv.listener.fd());
    uint64_t now = steadyMs();
    // Snapshot ids: destroy() mutates conns_ under us otherwise.
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto &kv : conns_)
        ids.push_back(kv.first);
    for (uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it == conns_.end())
            continue;
        Conn *c = it->second.get();
        c->wantIn = false;
        if (c->processing) {
            // In-flight replay: its completion sees draining_ and
            // closes after flushing the reply — the same "running
            // replay completes and its reply reaches the client"
            // promise the blocking stop() makes.
            updateInterest(c);
            wheel_.schedule(timerKey(c->id, kTimerDrain),
                            now + srv.cfg.drainDeadlineMs);
            continue;
        }
        c->closing = true;
        updateInterest(c);
        if (c->wq.size() - c->wqOff == 0) {
            destroy(c);
            continue;
        }
        wheel_.schedule(timerKey(c->id, kTimerDrain),
                        now + srv.cfg.drainDeadlineMs);
        flushWrites(c);
    }
}

} // namespace tea
