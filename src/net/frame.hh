/**
 * @file
 * The tead wire protocol: length-prefixed, CRC-protected frames.
 *
 * Every message on a connection — in either direction — is one frame:
 *
 *   u32 body length       ; 1 (type byte) + payload bytes, ≤ 64 MiB + 1
 *   u8  message type      ; MsgType
 *   payload               ; message-specific, see docs/FORMATS.md
 *   u32 CRC-32            ; over the length field AND the body
 *
 * All integers are little endian, matching the repo's other formats.
 * The CRC covers the length prefix so a corrupted length cannot
 * reframe the stream undetected: whatever bytes the corrupt length
 * selects as a "frame", the checksum was computed over different ones.
 *
 * The decoder is a pure byte-stream machine with no socket knowledge,
 * which is what makes the protocol fuzzable in-process
 * (tests/test_net_fuzz.cc): feed() any byte salad, poll() either
 * yields intact frames or throws FatalError — never returns a frame
 * whose checksum did not verify, and never allocates more than the
 * frame cap no matter what the length field claims.
 *
 * A session is a conversation of frames:
 *
 *   client: HELLO {magic, version}     server: HELLO_OK | BUSY | ERROR
 *   client: PUT_AUTOMATON {name, tea}  server: PUT_OK | ERROR
 *   client: LIST                       server: LIST_OK
 *   client: EVICT {name}               server: EVICT_OK
 *   client: PING                       server: PONG {status}
 *   client: STATS [format]             server: STATS_OK {report bytes}
 *   client: REPLAY_BEGIN {name, flags} server: REPLAY_OK | ERROR
 *   client: REPLAY_CHUNK {log bytes}*  (no reply per chunk)
 *   client: REPLAY_END                 server: REPLAY_STATS | ERROR
 *   client: RECORD_BEGIN {name, ...}   server: RECORD_OK | ERROR
 *   client: RECORD_CHUNK {records}*    (no reply per chunk)
 *   client: RECORD_END                 server: RECORD_RESULT | ERROR
 *
 * RECORD grows an automaton server-side from a streamed transition
 * sequence (rec/recording.hh): BEGIN claims the name (one live
 * recording per name), each CHUNK carries transition records that are
 * decoded and fed as one atomic batch, and END publishes the final
 * snapshot and answers with the recording summary plus the recorder's
 * ReplayStats. The verbs follow the PING/STATS versionless-growth
 * pattern — same protocol version, and an older server answers
 * RECORD_BEGIN with its defined unknown-type fatal ERROR, which the
 * client reports as "server too old". A mid-recording disconnect
 * abandons the session: the last hot-swapped snapshot stays installed
 * and the partial batch is discarded.
 *
 * RECORD_CHUNK's record encoding is negotiated through the same
 * tolerant-payload pattern, with no protocol version bump:
 *
 *   client RECORD_BEGIN flags        server RECORD_OK payload
 *   0 (legacy)                       empty (legacy) or u8 0
 *   RecordFlags::kChunksV2           u8 1 = v2 accepted
 *
 * With the bit acknowledged, each chunk payload is one framed
 * encodeWireChunk() v2 delta chunk (svc/tracelog.hh) — revisited
 * blocks cost 2-4 wire bytes instead of ~15. Any other pairing (old
 * client/new server, new client/old server) falls back to bare
 * concatenated encodeTransition() records, because an old server
 * ignores unknown flag bits and an old client never reads RECORD_OK's
 * payload. Streamed REPLAY needs no negotiation: REPLAY_CHUNK carries
 * `.tlog` bytes verbatim, so a v2 log shrinks the wire by itself.
 *
 * BUSY may carry a payload (queue depth + max-sessions hint) since the
 * resilience work; it was empty in the first deployment, so readers
 * must tolerate both shapes. PING/PONG are liveness probes for load
 * balancers and the chaos tests: PONG reports queue depth, active
 * sessions, and uptime. Both ride on the unchanged protocol version —
 * an older server answers PING with its defined unknown-type behavior
 * (a fatal ERROR), which a prober treats as "alive, but old".
 *
 * STATS follows the same versionless pattern: its payload is an
 * optional u8 format selector (absent or 0 = JSON, 1 = text; extra
 * bytes are ignored so the request can grow fields), and STATS_OK
 * carries the rendered metrics snapshot as raw bytes. An old server
 * answers with the unknown-type fatal ERROR, which `teadbt stats`
 * reports as "server too old".
 *
 * ERROR carries a "fatal" flag: requests that merely failed (unknown
 * automaton, corrupt TEA bytes, corrupt log) keep the session alive;
 * protocol violations (bad magic, bad CRC, message out of order) close
 * the connection right after the ERROR frame.
 */

#ifndef TEA_NET_FRAME_HH
#define TEA_NET_FRAME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tea/replayer.hh"

namespace tea {

/** Protocol constants shared by client, server, and the fuzz tests. */
struct Wire
{
    static constexpr uint32_t kMagic = 0x5445414e; // "TEAN"
    static constexpr uint32_t kVersion = 1;
    /** Hard cap on one frame's payload (PUT_AUTOMATON is the largest). */
    static constexpr uint32_t kMaxPayload = 64u << 20;
    /** Longest accepted automaton name. */
    static constexpr size_t kMaxName = 256;
    /** Per-stream cap on accumulated REPLAY_CHUNK bytes. */
    static constexpr uint64_t kMaxLogBytes = 256ull << 20;
    /** Client-side split size for REPLAY_CHUNK frames. */
    static constexpr size_t kReplayChunk = 256u << 10;
};

enum class MsgType : uint8_t {
    Hello = 0x01,
    HelloOk = 0x02,
    Busy = 0x03,
    Error = 0x04,
    Ping = 0x05,
    Pong = 0x06,
    Stats = 0x07,
    StatsOk = 0x08,
    PutAutomaton = 0x10,
    PutOk = 0x11,
    List = 0x12,
    /**
     * u32 count, then `count` names. Store-backed servers append one
     * u8 residency marker per name after the name block (1 = resident
     * in RAM, 0 = cold `.teac` image); decoded tolerantly, like BUSY's
     * hint fields, so the growth needs no version bump.
     */
    ListOk = 0x13,
    Evict = 0x14,
    EvictOk = 0x15,
    ReplayBegin = 0x20,
    ReplayOk = 0x21,
    ReplayChunk = 0x22,
    ReplayEnd = 0x23,
    ReplayResult = 0x24,
    /**
     * str name, u8 flags (reserved, send 0; unknown bits ignored),
     * then optional growth fields decoded tolerantly like BUSY's
     * hints: u32 swap interval (0 = server default) and str selector
     * (empty = server default). Extra bytes are ignored.
     */
    RecordBegin = 0x30,
    /** Optional u8 capability ack: bit 0 = v2 chunks accepted. */
    RecordOk = 0x31,
    /** Concatenated encodeTransition() records, or one framed v2
     *  delta chunk once RecordFlags::kChunksV2 was acknowledged
     *  (svc/tracelog.hh). */
    RecordChunk = 0x32,
    RecordEnd = 0x33,
    /** u64 transitions, u64 traces, u64 states, u64 swaps, then the
     *  recorder's ReplayStats (encodeStats layout). */
    RecordResult = 0x34,
};

/** REPLAY_BEGIN flag bits. */
struct ReplayFlags
{
    static constexpr uint8_t kProfile = 1u << 0;  ///< return execCounts
    static constexpr uint8_t kNoGlobal = 1u << 1; ///< LookupConfig
    static constexpr uint8_t kNoLocal = 1u << 2;  ///< LookupConfig
    /**
     * Replay on the reference (pointer-chasing) kernel instead of the
     * compiled flat kernel. Results are bit-identical either way; the
     * flag exists for ablation and cross-checking. Absent (the
     * default) means the server replays against its shared CompiledTea.
     */
    static constexpr uint8_t kReference = 1u << 3;
};

/** RECORD_BEGIN flag bits (unknown bits are ignored server-side). */
struct RecordFlags
{
    /**
     * Client can send framed v2 delta chunks (encodeWireChunk) in
     * RECORD_CHUNK. The server acknowledges with a u8 1 leading
     * RECORD_OK's payload; without the ack the client must fall back
     * to bare encodeTransition() records.
     */
    static constexpr uint8_t kChunksV2 = 1u << 0;
};

/** One decoded frame. */
struct Frame
{
    MsgType type;
    std::vector<uint8_t> payload;
};

/** Append one encoded frame to `out`. @throws PanicError when oversize. */
void appendFrame(std::vector<uint8_t> &out, MsgType type,
                 const uint8_t *payload, size_t len);

inline void
appendFrame(std::vector<uint8_t> &out, MsgType type,
            const std::vector<uint8_t> &payload)
{
    appendFrame(out, type, payload.data(), payload.size());
}

/**
 * Incremental frame extraction from a byte stream.
 *
 * feed() appends raw bytes; poll() pops the next complete frame.
 * Malformed framing — zero or oversize length, CRC mismatch — throws
 * FatalError and poisons the decoder (every later poll() rethrows),
 * because nothing after a framing error can be trusted.
 */
class FrameDecoder
{
  public:
    void feed(const uint8_t *data, size_t len);

    /**
     * @return true and fill `out` when a complete frame is buffered
     * @throws FatalError on malformed framing
     */
    bool poll(Frame &out);

    /** True when no partial frame is buffered (a clean cut point). */
    bool atBoundary() const { return buf.size() == head; }

    /** Bytes buffered but not yet consumed. */
    size_t buffered() const { return buf.size() - head; }

  private:
    std::vector<uint8_t> buf;
    size_t head = 0; ///< consumed prefix of buf
    bool poisoned = false;
};

// --------------------------------------------------------- payload codecs

/** Little-endian payload builder for frame payloads. */
class PayloadWriter
{
  public:
    void u8(uint8_t v) { bytes.push_back(v); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    /** u32 length + raw bytes. */
    void str(const std::string &s);
    /** Raw bytes, no length prefix (must be the payload's tail). */
    void raw(const uint8_t *data, size_t len);

    const std::vector<uint8_t> &out() const { return bytes; }

  private:
    std::vector<uint8_t> bytes;
};

/**
 * Little-endian payload parser. Underruns, over-long strings, and
 * trailing garbage (via expectEnd) throw FatalError, so a malformed
 * payload can never be partially applied.
 */
class PayloadReader
{
  public:
    explicit PayloadReader(const std::vector<uint8_t> &payload)
        : data(payload.data()), len(payload.size())
    {
    }

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    /** u32 length + bytes; @throws FatalError when longer than maxLen. */
    std::string str(size_t maxLen);
    /** Everything not yet consumed. */
    std::vector<uint8_t> rest();

    size_t remaining() const { return len - pos; }
    /** @throws FatalError unless the payload was fully consumed. */
    void expectEnd() const;

  private:
    const uint8_t *need(size_t n);

    const uint8_t *data;
    size_t len;
    size_t pos = 0;
};

/** Encode ReplayStats as 11 u64 fields in declaration order. */
void encodeStats(PayloadWriter &w, const ReplayStats &st);

/** Decode the encodeStats() layout. @throws FatalError on underrun. */
ReplayStats decodeStats(PayloadReader &r);

/** The PONG liveness snapshot (and the server-side provider's view). */
struct ServerStatus
{
    uint32_t queueDepth = 0;     ///< sessions waiting for a worker
    uint32_t activeSessions = 0; ///< connections currently served
    uint64_t uptimeMs = 0;       ///< since the server started
};

/** Encode ServerStatus as u32, u32, u64. */
void encodeStatus(PayloadWriter &w, const ServerStatus &st);

/** Decode the encodeStatus() layout. @throws FatalError on underrun. */
ServerStatus decodeStatus(PayloadReader &r);

} // namespace tea

#endif // TEA_NET_FRAME_HH
