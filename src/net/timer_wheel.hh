/**
 * @file
 * A hashed timer wheel for the event-loop server core.
 *
 * The loop folds every connection clock — idle timeout, mid-request
 * deadline, drain deadline — into one wheel instead of polling each
 * socket with its own waitReadable() budget. The wheel is sized for
 * that exact load profile: tens of thousands of coarse (millisecond-
 * granularity) timers that are nearly always rescheduled or cancelled
 * before they fire, so insert/cancel must be O(1) and firing cost must
 * be proportional to what actually expires, not to what is armed.
 *
 * Design:
 *
 * - `kSlots` buckets hashed by due-tick; a timer further than one
 *   wheel revolution away simply stays in its bucket and is re-bucketed
 *   when the cursor passes it (classic hashed wheel, not hierarchical —
 *   the server's horizons are seconds, one level is plenty);
 * - timers are keyed by an opaque uint64 the caller packs (the loop
 *   uses connId << 2 | clock-kind). schedule() on a live key moves it;
 *   cancel() is lazy: the map entry is erased and stale bucket entries
 *   are dropped by a generation check when the cursor meets them, so
 *   neither operation ever walks a bucket;
 * - time is an explicit uint64 milliseconds parameter — the wheel never
 *   reads a clock. The loop passes steadyMs(); the unit tests pass
 *   fixed virtual timestamps and prove firing order exactly
 *   (tests/test_event_loop.cc).
 *
 * Not thread-safe: the wheel belongs to the loop thread alone, which is
 * the point — no lock appears anywhere on the timer path.
 */

#ifndef TEA_NET_TIMER_WHEEL_HH
#define TEA_NET_TIMER_WHEEL_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tea {

class TimerWheel
{
  public:
    /** @param tickMs wheel granularity; deadlines round *up* to it. */
    explicit TimerWheel(uint64_t tickMs = 4) : tickMs_(tickMs ? tickMs : 1)
    {
        buckets_.resize(kSlots);
    }

    /**
     * Arm (or move) the timer `key` to fire at `deadlineMs`. A deadline
     * at or before the last advance() fires on the next advance call —
     * never synchronously, so callers may schedule from inside their
     * own expiry handling.
     */
    void
    schedule(uint64_t key, uint64_t deadlineMs)
    {
        Entry &e = live_[key];
        e.deadlineMs = deadlineMs;
        ++e.gen;
        uint64_t tick = dueTick(deadlineMs);
        buckets_[tick % kSlots].push_back(Armed{key, e.gen, tick});
        ++armed_;
    }

    /** Disarm `key`; firing and re-scheduling both count as disarmed. */
    void
    cancel(uint64_t key)
    {
        live_.erase(key);
    }

    /** True when `key` is armed. */
    bool armed(uint64_t key) const { return live_.count(key) != 0; }

    /** Armed timers (for gauges; stale bucket entries excluded). */
    size_t size() const { return live_.size(); }

    /**
     * Advance the cursor to `nowMs`, appending every key whose deadline
     * has passed to `expired` — earlier ticks first; within one tick,
     * insertion order. A fired timer is disarmed; re-arm it from the
     * expiry handler if it should repeat. First call latches `nowMs`
     * as the epoch.
     */
    void
    advance(uint64_t nowMs, std::vector<uint64_t> &expired)
    {
        uint64_t tick = nowMs / tickMs_;
        if (!started_) {
            started_ = true;
            cursor_ = tick;
        }
        while (cursor_ <= tick) {
            sweepBucket(cursor_, expired);
            if (cursor_ == tick)
                break;
            ++cursor_;
        }
    }

    /**
     * Milliseconds until the earliest armed timer could fire after
     * `nowMs`, or `idleCapMs` when nothing is armed — the loop's poll
     * timeout. Conservative: never returns more than one tick past the
     * earliest deadline, never less than 0.
     */
    uint64_t
    pollBudgetMs(uint64_t nowMs, uint64_t idleCapMs) const
    {
        if (live_.empty())
            return idleCapMs;
        uint64_t earliest = UINT64_MAX;
        for (const auto &kv : live_)
            if (kv.second.deadlineMs < earliest)
                earliest = kv.second.deadlineMs;
        uint64_t budget =
            earliest > nowMs ? earliest - nowMs : 0;
        // Round up to the tick so a deadline mid-tick still fires on
        // the advance() after the poll wakes.
        budget += tickMs_;
        return budget < idleCapMs ? budget : idleCapMs;
    }

  private:
    static constexpr size_t kSlots = 256;

    struct Entry
    {
        uint64_t deadlineMs = 0;
        uint64_t gen = 0;
    };

    struct Armed
    {
        uint64_t key;
        uint64_t gen;
        uint64_t tick; ///< absolute due tick (deadline / tickMs_)
    };

    uint64_t
    dueTick(uint64_t deadlineMs) const
    {
        // Round up: a timer never fires before its deadline.
        uint64_t tick = (deadlineMs + tickMs_ - 1) / tickMs_;
        // Entries due behind the cursor land *on* the cursor so the
        // very next advance() sweeps them.
        return started_ && tick < cursor_ ? cursor_ : tick;
    }

    void
    sweepBucket(uint64_t tick, std::vector<uint64_t> &expired)
    {
        std::vector<Armed> &bucket = buckets_[tick % kSlots];
        size_t keep = 0;
        for (size_t i = 0; i < bucket.size(); ++i) {
            Armed &a = bucket[i];
            auto it = live_.find(a.key);
            if (it == live_.end() || it->second.gen != a.gen) {
                --armed_; // cancelled or moved: drop silently
                continue;
            }
            if (a.tick > tick) {
                // More than one revolution out when armed: re-bucket
                // for its real due tick now that the cursor moved.
                bucket[keep++] = a;
                continue;
            }
            expired.push_back(a.key);
            live_.erase(it);
            --armed_;
        }
        // Entries that survived (future revolutions) stay; if their due
        // tick maps to this same bucket they are re-seen next pass.
        bucket.resize(keep);
    }

    uint64_t tickMs_;
    uint64_t cursor_ = 0; ///< next tick to sweep
    bool started_ = false;
    size_t armed_ = 0; ///< bucket entries incl. stale (debug accounting)
    std::vector<std::vector<Armed>> buckets_;
    std::unordered_map<uint64_t, Entry> live_;
};

} // namespace tea

#endif // TEA_NET_TIMER_WHEEL_HH
