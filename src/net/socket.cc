#include "net/socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"
#include "util/strutil.hh"

// Linux suppresses SIGPIPE per send; platforms without the flag get
// the signal's default disposition changed by the caller if needed.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace tea {

// ---------------------------------------------------------------- Endpoint

Endpoint
Endpoint::parse(const std::string &spec)
{
    Endpoint ep;
    if (startsWith(spec, "tcp:")) {
        ep.kind = Kind::Tcp;
        std::string rest = spec.substr(4);
        size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0)
            fatal("endpoint '%s': want tcp:<host>:<port>", spec.c_str());
        ep.host = rest.substr(0, colon);
        int64_t port = 0;
        if (!parseInt(rest.substr(colon + 1), port) || port < 0 ||
            port > 65535)
            fatal("endpoint '%s': bad port", spec.c_str());
        ep.port = static_cast<uint16_t>(port);
        return ep;
    }
    if (startsWith(spec, "unix:")) {
        ep.kind = Kind::Unix;
        ep.path = spec.substr(5);
        sockaddr_un sa;
        if (ep.path.empty() || ep.path.size() >= sizeof(sa.sun_path))
            fatal("endpoint '%s': bad socket path", spec.c_str());
        return ep;
    }
    fatal("endpoint '%s': want tcp:<host>:<port> or unix:<path>",
          spec.c_str());
}

std::string
Endpoint::str() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

namespace {

/** Resolve a TCP endpoint; the caller frees with freeaddrinfo. */
addrinfo *
resolveTcp(const Endpoint &ep, bool forBind)
{
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (forBind)
        hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    int rv = ::getaddrinfo(ep.host.c_str(),
                           std::to_string(ep.port).c_str(), &hints, &res);
    if (rv != 0)
        fatal("resolve '%s': %s", ep.str().c_str(), ::gai_strerror(rv));
    return res;
}

sockaddr_un
unixAddr(const Endpoint &ep)
{
    sockaddr_un sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, ep.path.c_str(), sizeof(sa.sun_path) - 1);
    return sa;
}

} // namespace

// ------------------------------------------------------------------ Socket

Socket &
Socket::operator=(Socket &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

Socket
Socket::connectTo(const Endpoint &ep)
{
    if (ep.kind == Endpoint::Kind::Unix) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket: %s", std::strerror(errno));
        sockaddr_un sa = unixAddr(ep);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) != 0) {
            int err = errno;
            ::close(fd);
            fatal("connect '%s': %s", ep.str().c_str(),
                  std::strerror(err));
        }
        return Socket(fd);
    }

    addrinfo *res = resolveTcp(ep, /*forBind=*/false);
    int fd = -1;
    int err = 0;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            err = errno;
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        err = errno;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        fatal("connect '%s': %s", ep.str().c_str(), std::strerror(err));
    return Socket(fd);
}

size_t
Socket::recvSome(void *buf, size_t len)
{
    for (;;) {
        ssize_t n = ::recv(fd_, buf, len, 0);
        if (n >= 0)
            return static_cast<size_t>(n);
        if (errno == EINTR)
            continue;
        fatal("recv: %s", std::strerror(errno));
    }
}

void
Socket::sendAll(const void *buf, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("send: %s", std::strerror(errno));
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
}

int
Socket::waitReadable(int timeoutMs)
{
    for (;;) {
        pollfd pfd{fd_, POLLIN, 0};
        int rv = ::poll(&pfd, 1, timeoutMs);
        if (rv > 0)
            return 1; // readable, EOF, or error: recv reports which
        if (rv == 0)
            return 0;
        if (errno == EINTR)
            continue; // retry with the full budget; callers re-check
        fatal("poll: %s", std::strerror(errno));
    }
}

void
Socket::setNonBlocking(bool on)
{
    int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0)
        fatal("fcntl(F_GETFL): %s", std::strerror(errno));
    int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (want != flags && ::fcntl(fd_, F_SETFL, want) < 0)
        fatal("fcntl(F_SETFL): %s", std::strerror(errno));
}

Socket::IoResult
Socket::recvNb(void *buf, size_t len)
{
    IoResult res;
    for (;;) {
        ssize_t n = ::recv(fd_, buf, len, 0);
        if (n > 0) {
            res.n = static_cast<size_t>(n);
            return res;
        }
        if (n == 0) {
            res.closed = true; // orderly EOF
            return res;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            res.wouldBlock = true;
            return res;
        }
        if (errno == ECONNRESET || errno == EPIPE ||
            errno == ETIMEDOUT || errno == ECONNABORTED) {
            // The peer is gone: a scheduling event for the event loop,
            // not an exception — the connection simply retires.
            res.closed = true;
            return res;
        }
        fatal("recv (nonblocking): %s", std::strerror(errno));
    }
}

Socket::IoResult
Socket::sendNb(const void *buf, size_t len)
{
    IoResult res;
    for (;;) {
        ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
        if (n >= 0) {
            res.n = static_cast<size_t>(n);
            return res;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            res.wouldBlock = true;
            return res;
        }
        if (errno == ECONNRESET || errno == EPIPE ||
            errno == ETIMEDOUT || errno == ECONNABORTED) {
            res.closed = true;
            return res;
        }
        fatal("send (nonblocking): %s", std::strerror(errno));
    }
}

void
Socket::shutdownRead()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RD);
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ---------------------------------------------------------------- Listener

Listener::Listener(Listener &&o) noexcept
    : fd_(o.fd_), local_(std::move(o.local_))
{
    closing_.store(o.closing_.load());
    o.fd_ = -1;
}

Listener &
Listener::operator=(Listener &&o) noexcept
{
    if (this != &o) {
        release();
        fd_ = o.fd_;
        local_ = std::move(o.local_);
        closing_.store(o.closing_.load());
        o.fd_ = -1;
    }
    return *this;
}

Listener
Listener::open(const Endpoint &ep)
{
    Listener l;
    l.local_ = ep;
    if (ep.kind == Endpoint::Kind::Unix) {
        ::unlink(ep.path.c_str()); // stale socket file from a crash
        l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (l.fd_ < 0)
            fatal("socket: %s", std::strerror(errno));
        sockaddr_un sa = unixAddr(ep);
        if (::bind(l.fd_, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            fatal("bind '%s': %s", ep.str().c_str(),
                  std::strerror(errno));
    } else {
        addrinfo *res = resolveTcp(ep, /*forBind=*/true);
        int err = 0;
        for (addrinfo *ai = res; ai; ai = ai->ai_next) {
            l.fd_ = ::socket(ai->ai_family, ai->ai_socktype,
                             ai->ai_protocol);
            if (l.fd_ < 0) {
                err = errno;
                continue;
            }
            int one = 1;
            ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            if (::bind(l.fd_, ai->ai_addr, ai->ai_addrlen) == 0)
                break;
            err = errno;
            ::close(l.fd_);
            l.fd_ = -1;
        }
        ::freeaddrinfo(res);
        if (l.fd_ < 0)
            fatal("bind '%s': %s", ep.str().c_str(),
                  std::strerror(err));
        // Read back the bound address so port 0 resolves for callers.
        sockaddr_storage ss;
        socklen_t sl = sizeof(ss);
        if (::getsockname(l.fd_, reinterpret_cast<sockaddr *>(&ss),
                          &sl) == 0) {
            if (ss.ss_family == AF_INET)
                l.local_.port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&ss)->sin_port);
            else if (ss.ss_family == AF_INET6)
                l.local_.port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&ss)->sin6_port);
        }
    }
    if (::listen(l.fd_, SOMAXCONN) != 0)
        fatal("listen '%s': %s", ep.str().c_str(), std::strerror(errno));
    return l;
}

bool
Listener::accept(Socket &out)
{
    for (;;) {
        if (closing_.load())
            return false;
        pollfd pfd{fd_, POLLIN, 0};
        // A finite poll bounds how long close() can go unnoticed; the
        // shutdown() in close() usually wakes the poll immediately.
        int rv = ::poll(&pfd, 1, 200);
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (rv == 0)
            continue;
        if (closing_.load())
            return false;
        int cfd = ::accept(fd_, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return false;
        }
        out = Socket(cfd);
        return true;
    }
}

Socket::IoResult
Listener::acceptNb(Socket &out)
{
    Socket::IoResult res;
    for (;;) {
        if (closing_.load()) {
            res.closed = true;
            return res;
        }
        int cfd = ::accept(fd_, nullptr, nullptr);
        if (cfd >= 0) {
            out = Socket(cfd);
            res.n = 1;
            return res;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED || errno == EMFILE ||
            errno == ENFILE) {
            // Backlog drained, the connection died before we got it,
            // or we are out of descriptors: nothing to accept *now*.
            // (EMFILE as wouldBlock means an fd-exhausted server stops
            // accepting instead of spinning in a fatal loop; pending
            // clients wait in the kernel backlog.)
            res.wouldBlock = true;
            return res;
        }
        if (closing_.load()) {
            res.closed = true;
            return res;
        }
        fatal("accept: %s", std::strerror(errno));
    }
}

void
Listener::setNonBlocking(bool on)
{
    int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0)
        fatal("fcntl(F_GETFL): %s", std::strerror(errno));
    int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (want != flags && ::fcntl(fd_, F_SETFL, want) < 0)
        fatal("fcntl(F_SETFL): %s", std::strerror(errno));
}

void
Listener::close()
{
    if (fd_ >= 0 && !closing_.exchange(true))
        ::shutdown(fd_, SHUT_RDWR);
}

void
Listener::release()
{
    close();
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (local_.kind == Endpoint::Kind::Unix)
            ::unlink(local_.path.c_str());
    }
}

} // namespace tea
