#include "net/server.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "net/frame.hh"
#include "net/session.hh"
#include "util/logging.hh"

namespace tea {

namespace {

uint64_t
steadyMs()
{
    using namespace std::chrono;
    return static_cast<uint64_t>(duration_cast<milliseconds>(
                                     steady_clock::now().time_since_epoch())
                                     .count());
}

} // namespace

TeaServer::TeaServer(ServerConfig config)
    : cfg(std::move(config)),
      pool(cfg.workers != 0
               ? cfg.workers
               : std::max(1u, std::thread::hardware_concurrency()))
{
    if (cfg.maxQueue == 0)
        cfg.maxQueue = 1;
}

TeaServer::~TeaServer()
{
    stop();
}

void
TeaServer::start()
{
    if (started.exchange(true))
        panic("tead server: started twice");
    startedAtMs.store(steadyMs());
    listener = Listener::open(Endpoint::parse(cfg.endpoint));
    acceptThread = std::thread([this] { acceptLoop(); });
}

size_t
TeaServer::activeSessions() const
{
    std::lock_guard<std::mutex> lock(connMu);
    return conns.size();
}

uint64_t
TeaServer::uptimeMs() const
{
    uint64_t at = startedAtMs.load();
    return at == 0 ? 0 : steadyMs() - at;
}

std::string
TeaServer::endpoint() const
{
    return started.load() ? listener.local().str() : cfg.endpoint;
}

uint16_t
TeaServer::port() const
{
    return listener.local().port;
}

void
TeaServer::acceptLoop()
{
    Socket sock;
    while (listener.accept(sock)) {
        if (stopping.load())
            break; // socket closes on loop exit
        size_t depth = pool.pending();
        if (depth >= cfg.maxQueue ||
            (cfg.maxSessions != 0 &&
             activeSessions() >= cfg.maxSessions)) {
            // Backpressure: one BUSY frame, then close. Never queue
            // beyond the bound, never buffer the client's bytes. The
            // payload tells the client why (depth, cap) so its backoff
            // can be smarter than a blind sleep.
            rejected.fetch_add(1);
            PayloadWriter w;
            w.u32(static_cast<uint32_t>(
                std::min<size_t>(depth, UINT32_MAX)));
            w.u32(static_cast<uint32_t>(
                std::min<size_t>(cfg.maxSessions, UINT32_MAX)));
            std::vector<uint8_t> busy;
            appendFrame(busy, MsgType::Busy, w.out());
            try {
                sock.sendAll(busy.data(), busy.size());
            } catch (const FatalError &) {
                // The client vanished first; nothing to report.
            }
            sock.close();
            continue;
        }
        uint64_t id;
        auto shared = std::make_shared<Socket>(std::move(sock));
        {
            std::lock_guard<std::mutex> lock(connMu);
            id = nextConnId++;
            conns.emplace(id, shared);
        }
        pool.submit([this, id, shared] {
            serveConnection(*shared);
            std::lock_guard<std::mutex> lock(connMu);
            conns.erase(id);
        });
    }
}

void
TeaServer::evictConnection(Socket &sock, const char *why)
{
    evicted.fetch_add(1);
    PayloadWriter w;
    w.u8(1); // fatal: the connection closes after this frame
    w.str(strprintf("connection evicted: %s", why));
    std::vector<uint8_t> frame;
    appendFrame(frame, MsgType::Error, w.out());
    try {
        sock.sendAll(frame.data(), frame.size());
    } catch (const FatalError &) {
        // Socket already dead; the eviction still counts.
    }
    if (evictWarn.allow()) {
        uint64_t dropped = evictWarn.suppressedAndReset();
        if (dropped > 0)
            warn("tead: evicted connection (%s); %llu similar warnings "
                 "suppressed",
                 why, static_cast<unsigned long long>(dropped));
        else
            warn("tead: evicted connection (%s)", why);
    }
}

void
TeaServer::serveConnection(Socket &sock)
{
    try {
        Session session(registry_, cfg.lookup);
        session.setStatusFn([this] {
            ServerStatus st;
            st.queueDepth = static_cast<uint32_t>(
                std::min<size_t>(pool.pending(), UINT32_MAX));
            st.activeSessions = static_cast<uint32_t>(
                std::min<size_t>(activeSessions(), UINT32_MAX));
            st.uptimeMs = uptimeMs();
            return st;
        });
        std::vector<uint8_t> replies;
        uint8_t buf[64 * 1024];
        // Deadline bookkeeping. `lastByteMs` feeds the idle clock;
        // `requestStartMs` is stamped at the first byte of a request
        // and feeds the request clock while session.midRequest().
        uint64_t lastByteMs = steadyMs();
        uint64_t requestStartMs = lastByteMs;
        bool midRequest = false;
        for (;;) {
            int waitMs = -1;
            if (cfg.idleTimeoutMs != 0 ||
                (cfg.requestDeadlineMs != 0 && midRequest)) {
                uint64_t now = steadyMs();
                int64_t budget = std::numeric_limits<int64_t>::max();
                const char *why = nullptr;
                if (cfg.idleTimeoutMs != 0) {
                    budget = static_cast<int64_t>(
                        lastByteMs + cfg.idleTimeoutMs - now);
                    why = "idle timeout";
                }
                if (cfg.requestDeadlineMs != 0 && midRequest) {
                    int64_t left = static_cast<int64_t>(
                        requestStartMs + cfg.requestDeadlineMs - now);
                    if (left < budget) {
                        budget = left;
                        why = "request deadline exceeded";
                    }
                }
                if (budget <= 0) {
                    evictConnection(sock, why);
                    break;
                }
                waitMs = static_cast<int>(std::min<int64_t>(
                    budget, std::numeric_limits<int>::max()));
            }
            if (sock.waitReadable(waitMs) == 0)
                continue; // budget recomputed (and now expired) above
            size_t n = sock.recvSome(buf, sizeof(buf));
            if (n == 0)
                break; // peer closed (or stop() shut our read down)
            uint64_t now = steadyMs();
            lastByteMs = now;
            if (!midRequest)
                requestStartMs = now; // these bytes open a new request
            replies.clear();
            bool keep = session.consume(buf, n, replies);
            if (!replies.empty())
                sock.sendAll(replies.data(), replies.size());
            if (!keep)
                break;
            midRequest = session.midRequest();
        }
        served.fetch_add(1);
    } catch (const FatalError &) {
        // Socket-level failure (peer reset mid-write): the session is
        // over either way; one broken client must not hurt the server.
        served.fetch_add(1);
    }
}

void
TeaServer::stop()
{
    if (!started.load() || stopped.exchange(true))
        return;
    stopping.store(true);
    listener.close(); // wakes the accept loop
    if (acceptThread.joinable())
        acceptThread.join();
    // No new sessions can be admitted now. Shut down reads on the live
    // ones: blocked recvs wake with EOF; an in-flight replay finishes
    // and its reply still flushes, because the write side stays open.
    {
        std::lock_guard<std::mutex> lock(connMu);
        for (auto &conn : conns)
            conn.second->shutdownRead();
    }
    pool.drain(); // every running and queued session exits
}

} // namespace tea
