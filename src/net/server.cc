#include "net/server.hh"

#include <thread>

#include "net/frame.hh"
#include "net/session.hh"
#include "util/logging.hh"

namespace tea {

TeaServer::TeaServer(ServerConfig config)
    : cfg(std::move(config)),
      pool(cfg.workers != 0
               ? cfg.workers
               : std::max(1u, std::thread::hardware_concurrency()))
{
    if (cfg.maxQueue == 0)
        cfg.maxQueue = 1;
}

TeaServer::~TeaServer()
{
    stop();
}

void
TeaServer::start()
{
    if (started.exchange(true))
        panic("tead server: started twice");
    listener = Listener::open(Endpoint::parse(cfg.endpoint));
    acceptThread = std::thread([this] { acceptLoop(); });
}

std::string
TeaServer::endpoint() const
{
    return started.load() ? listener.local().str() : cfg.endpoint;
}

uint16_t
TeaServer::port() const
{
    return listener.local().port;
}

void
TeaServer::acceptLoop()
{
    Socket sock;
    while (listener.accept(sock)) {
        if (stopping.load())
            break; // socket closes on loop exit
        if (pool.pending() >= cfg.maxQueue) {
            // Backpressure: one BUSY frame, then close. Never queue
            // beyond the bound, never buffer the client's bytes.
            rejected.fetch_add(1);
            std::vector<uint8_t> busy;
            appendFrame(busy, MsgType::Busy, nullptr, 0);
            try {
                sock.sendAll(busy.data(), busy.size());
            } catch (const FatalError &) {
                // The client vanished first; nothing to report.
            }
            sock.close();
            continue;
        }
        uint64_t id;
        auto shared = std::make_shared<Socket>(std::move(sock));
        {
            std::lock_guard<std::mutex> lock(connMu);
            id = nextConnId++;
            conns.emplace(id, shared);
        }
        pool.submit([this, id, shared] {
            serveConnection(*shared);
            std::lock_guard<std::mutex> lock(connMu);
            conns.erase(id);
        });
    }
}

void
TeaServer::serveConnection(Socket &sock)
{
    try {
        Session session(registry_, cfg.lookup);
        std::vector<uint8_t> replies;
        uint8_t buf[64 * 1024];
        for (;;) {
            size_t n = sock.recvSome(buf, sizeof(buf));
            if (n == 0)
                break; // peer closed (or stop() shut our read down)
            replies.clear();
            bool keep = session.consume(buf, n, replies);
            if (!replies.empty())
                sock.sendAll(replies.data(), replies.size());
            if (!keep)
                break;
        }
        served.fetch_add(1);
    } catch (const FatalError &) {
        // Socket-level failure (peer reset mid-write): the session is
        // over either way; one broken client must not hurt the server.
        served.fetch_add(1);
    }
}

void
TeaServer::stop()
{
    if (!started.load() || stopped.exchange(true))
        return;
    stopping.store(true);
    listener.close(); // wakes the accept loop
    if (acceptThread.joinable())
        acceptThread.join();
    // No new sessions can be admitted now. Shut down reads on the live
    // ones: blocked recvs wake with EOF; an in-flight replay finishes
    // and its reply still flushes, because the write side stays open.
    {
        std::lock_guard<std::mutex> lock(connMu);
        for (auto &conn : conns)
            conn.second->shutdownRead();
    }
    pool.drain(); // every running and queued session exits
}

} // namespace tea
