#include "net/server.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "net/event_loop.hh"
#include "net/frame.hh"
#include "net/session.hh"
#include "obs/flightrec.hh"
#include "obs/openmetrics.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace tea {

namespace {

uint64_t
steadyMs()
{
    using namespace std::chrono;
    return static_cast<uint64_t>(duration_cast<milliseconds>(
                                     steady_clock::now().time_since_epoch())
                                     .count());
}

} // namespace

TeaServer::TeaServer(ServerConfig config)
    : cfg(std::move(config)),
      spans_(cfg.traceRing),
      pool(cfg.workers != 0
               ? cfg.workers
               : std::max(1u, std::thread::hardware_concurrency()))
{
    if (cfg.maxQueue == 0)
        cfg.maxQueue = 1;
    // Bounds-check the STATS span limit: at least one span, and no
    // more than a sane report can carry (the ring caps it below this).
    cfg.statsSpanLimit =
        std::min<size_t>(std::max<size_t>(cfg.statsSpanLimit, 1), 4096);

    // The metric catalog (docs/OBSERVABILITY.md). Handles are grabbed
    // once here; the hot paths below touch only the cached pointers.
    mRequests = &metrics_.counter("server.requests");
    mSlow = &metrics_.counter("server.slow_requests");
    mBytesIn = &metrics_.counter("server.bytes_in");
    mBytesOut = &metrics_.counter("server.bytes_out");
    mBusy = &metrics_.counter("server.busy_rejected");
    mEvictIdle = &metrics_.counter("server.evictions_idle");
    mEvictDeadline = &metrics_.counter("server.evictions_deadline");
    mSessions = &metrics_.counter("server.sessions_served");
    mTaskFailures = &metrics_.counter("pool.task_failures");
    hRequestMs = &metrics_.histogram("server.request_ms");
    hTaskMs = &metrics_.histogram("pool.task_ms");

    // Event-loop core health. Registered unconditionally so the metric
    // catalog is stable across cores; on the blocking core they all
    // read zero (a cheap, greppable signal of which engine ran).
    mLoopIterations = &metrics_.counter("loop.iterations");
    mLoopWakeups = &metrics_.counter("loop.wakeups");
    mLoopTimers = &metrics_.counter("loop.timers_fired");
    mLoopDeferred = &metrics_.counter("loop.writes_deferred");
    mLoopStalls = &metrics_.counter("loop.backpressure_stalls");
    mLoopOverflow = &metrics_.counter("loop.wq_overflow");
    mLoopFaults = &metrics_.counter("loop.faults_injected");
    mHttpRequests = &metrics_.counter("loop.http_requests");
    hLoopMs = &metrics_.histogram("loop.latency_ms");
    metrics_.gaugeFn("loop.sessions", [this] {
        return loop_ ? static_cast<int64_t>(loop_->liveConns()) : 0;
    });

    svcObs_.spans = &spans_;
    svcObs_.requests = mRequests;
    svcObs_.replays = &metrics_.counter("svc.streams");
    svcObs_.replayFailures = &metrics_.counter("svc.stream_failures");
    svcObs_.transitions = &metrics_.counter("svc.transitions");
    svcObs_.salvaged = &metrics_.counter("svc.salvaged");
    svcObs_.recWireBytes = &metrics_.counter("rec.wire_bytes");
    // Per-automaton families. Named *_by_automaton so they never
    // collide with the scalar family in the OpenMetrics exposition
    // (one family name cannot be both unlabeled and labeled).
    svcObs_.replaysBy =
        &metrics_.labeledCounter("svc.streams_by_automaton");
    svcObs_.transitionsBy =
        &metrics_.labeledCounter("svc.transitions_by_automaton");
    svcObs_.replayMsBy =
        &metrics_.labeledHistogram("svc.replay_ms_by_automaton");

    // Values other objects already maintain are exported as callback
    // gauges, read at snapshot time — no mirrored state to drift.
    metrics_.gaugeFn("server.active_sessions", [this] {
        return static_cast<int64_t>(activeSessions());
    });
    metrics_.gaugeFn("server.queue_depth", [this] {
        return static_cast<int64_t>(pool.pending());
    });
    metrics_.gaugeFn("server.uptime_ms", [this] {
        return static_cast<int64_t>(uptimeMs());
    });
    metrics_.gaugeFn("pool.workers", [this] {
        return static_cast<int64_t>(pool.workers());
    });
    metrics_.gaugeFn("pool.executed", [this] {
        return static_cast<int64_t>(pool.executed());
    });
    metrics_.gaugeFn("pool.failures", [this] {
        return static_cast<int64_t>(pool.failures());
    });
    metrics_.gaugeFn("log.suppressed", [] {
        return static_cast<int64_t>(sharedWarnLimiter().totalSuppressed());
    });
    metrics_.gaugeFn("spans.pushed", [this] {
        return static_cast<int64_t>(spans_.pushed());
    });
    // Resident compiled bytes: the number the store's maxResidentBytes
    // budget caps, observable whether or not a store is configured.
    metrics_.gaugeFn("registry.footprint_bytes", [this] {
        return static_cast<int64_t>(registry_.footprintBytes());
    });

    if (!cfg.storeDir.empty()) {
        StoreConfig sc;
        sc.dir = cfg.storeDir;
        sc.maxResidentBytes = cfg.storeMaxResidentBytes;
        sc.maxResident = cfg.storeMaxResident;
        store_ = std::make_unique<AutomatonStore>(registry_, sc);
        store_->bindMetrics(metrics_);
        store_->bindTrace(&spans_);
    }

    // The RECORD verb's broker: with a store, hot-swaps publish through
    // replaceResident() and the final snapshot lands on disk.
    recSvc_ = std::make_unique<rec::RecordingService>(registry_,
                                                      store_.get());
    recSvc_->bindMetrics(metrics_);

    // Handles the history sampler reads each tick. counter() is
    // get-or-create by name, so these alias the instruments the store
    // and recorder already bump (or stay zero without a store).
    mRecTransitions = &metrics_.counter("rec.transitions");
    mStoreHits = &metrics_.counter("store.hits");
    mStoreFaults = &metrics_.counter("store.mmap_loads");
    if (cfg.historyIntervalMs != 0) {
        history_ = std::make_unique<obs::HistoryRing>(
            std::vector<std::string>{
                "server.requests", "server.bytes_in",
                "server.bytes_out", "svc.streams", "svc.transitions",
                "rec.transitions", "store.hits", "store.mmap_loads",
                "server.active_sessions"},
            std::max<size_t>(cfg.historyFrames, 2));
    }

    pool.setTaskObserver([this](double ms, bool failed) {
        hTaskMs->observe(ms);
        if (failed)
            mTaskFailures->inc();
    });
}

uint64_t
TeaServer::slowRequests() const
{
    return mSlow->value();
}

std::string
TeaServer::statsReport(bool text) const
{
    obs::MetricsSnapshot snap = metrics_.snapshot();
    if (text)
        return snap.toText();
    JsonWriter w;
    w.beginObject();
    snap.writeJson(w);
    w.key("spans");
    w.beginArray();
    for (const obs::Span &s : spans_.recent(cfg.statsSpanLimit)) {
        w.beginObject();
        w.key("conn");
        w.value(s.conn);
        w.key("request");
        w.value(s.request);
        w.key("phase");
        w.value(obs::spanPhaseName(s.phase));
        w.key("startNs");
        w.value(s.startNs);
        w.key("durNs");
        w.value(s.durNs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
TeaServer::statsPayload(uint8_t format) const
{
    switch (format) {
    case 1:
        return statsReport(true);
    case 2:
        return historyJson();
    case 3:
        return obs::FlightRecorder::instance().toJson("stats");
    default:
        return statsReport(false);
    }
}

std::string
TeaServer::historyJson() const
{
    if (history_)
        return history_->toJson();
    JsonWriter w;
    w.beginObject();
    w.key("series");
    w.beginArray();
    w.endArray();
    w.key("frames");
    w.beginArray();
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
TeaServer::openMetricsText() const
{
    return obs::toOpenMetrics(metrics_.snapshot());
}

void
TeaServer::samplerLoop()
{
    std::unique_lock<std::mutex> lock(samplerMu_);
    while (!samplerStop_) {
        recordHistorySample();
        samplerCv_.wait_for(lock,
                            std::chrono::milliseconds(
                                cfg.historyIntervalMs),
                            [this] { return samplerStop_; });
    }
    // One final frame so a drain's last counter movements are kept.
    recordHistorySample();
}

void
TeaServer::recordHistorySample()
{
    std::vector<uint64_t> vals{
        mRequests->value(),
        mBytesIn->value(),
        mBytesOut->value(),
        svcObs_.replays->value(),
        svcObs_.transitions->value(),
        mRecTransitions->value(),
        mStoreHits->value(),
        mStoreFaults->value(),
        static_cast<uint64_t>(activeSessions()),
    };
    history_->record(uptimeMs(), vals);
    obs::FlightRecorder &flight = obs::FlightRecorder::instance();
    if (flight.armed()) {
        // Keep the black box current: a crash between frames still
        // dumps the last completed one.
        std::string json = history_->toJson();
        flight.noteHistoryJson(json.data(), json.size());
    }
}

TeaServer::~TeaServer()
{
    stop();
}

void
TeaServer::start()
{
    if (started.exchange(true))
        panic("tead server: started twice");
    startedAtMs.store(steadyMs());
    listener = Listener::open(Endpoint::parse(cfg.endpoint));
    if (history_)
        samplerThread_ = std::thread([this] { samplerLoop(); });
    if (cfg.core == ServerCore::EventLoop) {
        loop_ = std::make_unique<EventLoop>(*this);
        loop_->start();
        return;
    }
    acceptThread = std::thread([this] { acceptLoop(); });
}

size_t
TeaServer::activeSessions() const
{
    if (loop_)
        return loop_->liveConns();
    std::lock_guard<std::mutex> lock(connMu);
    return conns.size();
}

uint64_t
TeaServer::uptimeMs() const
{
    uint64_t at = startedAtMs.load();
    return at == 0 ? 0 : steadyMs() - at;
}

std::string
TeaServer::endpoint() const
{
    return started.load() ? listener.local().str() : cfg.endpoint;
}

uint16_t
TeaServer::port() const
{
    return listener.local().port;
}

void
TeaServer::acceptLoop()
{
    Socket sock;
    while (listener.accept(sock)) {
        if (stopping.load())
            break; // socket closes on loop exit
        size_t depth = pool.pending();
        if (depth >= cfg.maxQueue ||
            (cfg.maxSessions != 0 &&
             activeSessions() >= cfg.maxSessions)) {
            // Backpressure: one BUSY frame, then close. Never queue
            // beyond the bound, never buffer the client's bytes. The
            // payload tells the client why (depth, cap) so its backoff
            // can be smarter than a blind sleep.
            rejected.fetch_add(1);
            mBusy->inc();
            PayloadWriter w;
            w.u32(static_cast<uint32_t>(
                std::min<size_t>(depth, UINT32_MAX)));
            w.u32(static_cast<uint32_t>(
                std::min<size_t>(cfg.maxSessions, UINT32_MAX)));
            std::vector<uint8_t> busy;
            appendFrame(busy, MsgType::Busy, w.out());
            try {
                sock.sendAll(busy.data(), busy.size());
                mBytesOut->inc(busy.size());
            } catch (const FatalError &) {
                // The client vanished first; nothing to report.
            }
            sock.close();
            continue;
        }
        uint64_t id;
        auto shared = std::make_shared<Socket>(std::move(sock));
        {
            std::lock_guard<std::mutex> lock(connMu);
            id = nextConnId++;
            conns.emplace(id, shared);
        }
        uint64_t acceptNs = obs::monotonicNanos();
        pool.submit([this, id, shared, acceptNs] {
            serveConnection(*shared, id, acceptNs);
            std::lock_guard<std::mutex> lock(connMu);
            conns.erase(id);
        });
    }
}

void
TeaServer::evictConnection(Socket &sock, const char *why, bool deadline)
{
    evicted.fetch_add(1);
    (deadline ? mEvictDeadline : mEvictIdle)->inc();
    PayloadWriter w;
    w.u8(1); // fatal: the connection closes after this frame
    w.str(strprintf("connection evicted: %s", why));
    std::vector<uint8_t> frame;
    appendFrame(frame, MsgType::Error, w.out());
    try {
        sock.sendAll(frame.data(), frame.size());
        mBytesOut->inc(frame.size());
    } catch (const FatalError &) {
        // Socket already dead; the eviction still counts.
    }
    // Eviction warnings share the process-wide limiter with the pool's
    // failure warnings and the slow-request log, so the *total* warn
    // rate is bounded; drops surface as the log.suppressed metric.
    RateLimiter &limiter = sharedWarnLimiter();
    if (limiter.allow()) {
        uint64_t dropped = limiter.suppressedAndReset();
        if (dropped > 0)
            warn("tead: evicted connection (%s); %llu similar warnings "
                 "suppressed",
                 why, static_cast<unsigned long long>(dropped));
        else
            warn("tead: evicted connection (%s)", why);
    }
}

std::unique_ptr<Session>
TeaServer::makeSession(uint64_t connId)
{
    auto session = std::make_unique<Session>(registry_, cfg.lookup);
    session->setStore(store_.get());
    session->setRecorder(recSvc_.get(), cfg.recordSwapInterval);
    session->setStatusFn([this] {
        ServerStatus st;
        st.queueDepth = static_cast<uint32_t>(
            std::min<size_t>(pool.pending(), UINT32_MAX));
        st.activeSessions = static_cast<uint32_t>(
            std::min<size_t>(activeSessions(), UINT32_MAX));
        st.uptimeMs = uptimeMs();
        return st;
    });
    session->setStatsFn(
        [this](uint8_t format) { return statsPayload(format); });
    SessionObs ob = svcObs_;
    ob.conn = connId;
    session->setObs(ob);
    return session;
}

void
TeaServer::serveConnection(Socket &sock, uint64_t connId,
                           uint64_t acceptNs)
{
    try {
        // The Accept span measures queue wait: accept() to worker
        // pickup. Under load this is the first thing to grow.
        obs::Span accept;
        accept.conn = connId;
        accept.phase = obs::SpanPhase::Accept;
        accept.startNs = acceptNs;
        accept.durNs = obs::monotonicNanos() - acceptNs;
        spans_.push(accept);

        std::unique_ptr<Session> sessionPtr = makeSession(connId);
        Session &session = *sessionPtr;

        std::vector<uint8_t> replies;
        uint8_t buf[64 * 1024];
        // Deadline bookkeeping. `lastByteMs` feeds the idle clock;
        // `requestStartMs` is stamped at the first byte of a request
        // and feeds the request clock while session.midRequest().
        uint64_t lastByteMs = steadyMs();
        uint64_t requestStartMs = lastByteMs;
        uint64_t requestStartNs = obs::monotonicNanos();
        uint64_t lastCompleted = 0;
        bool midRequest = false;
        for (;;) {
            int waitMs = -1;
            if (cfg.idleTimeoutMs != 0 ||
                (cfg.requestDeadlineMs != 0 && midRequest)) {
                uint64_t now = steadyMs();
                int64_t budget = std::numeric_limits<int64_t>::max();
                const char *why = nullptr;
                bool deadline = false;
                if (cfg.idleTimeoutMs != 0) {
                    budget = static_cast<int64_t>(
                        lastByteMs + cfg.idleTimeoutMs - now);
                    why = "idle timeout";
                }
                if (cfg.requestDeadlineMs != 0 && midRequest) {
                    int64_t left = static_cast<int64_t>(
                        requestStartMs + cfg.requestDeadlineMs - now);
                    if (left < budget) {
                        budget = left;
                        why = "request deadline exceeded";
                        deadline = true;
                    }
                }
                if (budget <= 0) {
                    evictConnection(sock, why, deadline);
                    break;
                }
                waitMs = static_cast<int>(std::min<int64_t>(
                    budget, std::numeric_limits<int>::max()));
            }
            if (sock.waitReadable(waitMs) == 0)
                continue; // budget recomputed (and now expired) above
            size_t n = sock.recvSome(buf, sizeof(buf));
            if (n == 0)
                break; // peer closed (or stop() shut our read down)
            mBytesIn->inc(n);
            uint64_t now = steadyMs();
            lastByteMs = now;
            if (!midRequest) {
                requestStartMs = now; // these bytes open a new request
                requestStartNs = obs::monotonicNanos();
            }
            replies.clear();
            bool keep = session.consume(buf, n, replies);
            if (!replies.empty()) {
                uint64_t tReply = obs::monotonicNanos();
                sock.sendAll(replies.data(), replies.size());
                mBytesOut->inc(replies.size());
                obs::Span rep;
                rep.conn = connId;
                rep.request = session.requestsBegun();
                rep.phase = obs::SpanPhase::Reply;
                rep.startNs = tReply;
                rep.durNs = obs::monotonicNanos() - tReply;
                spans_.push(rep);
            }
            uint64_t completed = session.requestsCompleted();
            if (completed != lastCompleted) {
                // One or more requests finished with these bytes:
                // observe the end-to-end latency, stamp the Request
                // span, and feed the slow-request log.
                lastCompleted = completed;
                uint64_t endNs = obs::monotonicNanos();
                uint64_t durNs = endNs - requestStartNs;
                double durMs = static_cast<double>(durNs) / 1e6;
                hRequestMs->observe(durMs);
                obs::Span req;
                req.conn = connId;
                req.request = session.requestsBegun();
                req.phase = obs::SpanPhase::Request;
                req.startNs = requestStartNs;
                req.durNs = durNs;
                spans_.push(req);
                std::vector<obs::Span> phases =
                    session.takeRequestSpans();
                if (cfg.slowRequestMs != 0 &&
                    durMs >= static_cast<double>(cfg.slowRequestMs)) {
                    mSlow->inc();
                    RateLimiter &limiter = sharedWarnLimiter();
                    if (limiter.allow()) {
                        limiter.suppressedAndReset();
                        std::string breakdown;
                        for (const obs::Span &s : phases)
                            breakdown += strprintf(
                                " %s=%.2fms", obs::spanPhaseName(s.phase),
                                static_cast<double>(s.durNs) / 1e6);
                        warn("tead: slow request on conn %llu: %.1f ms "
                             "(threshold %u ms)%s",
                             static_cast<unsigned long long>(connId),
                             durMs, cfg.slowRequestMs,
                             breakdown.c_str());
                    }
                }
            }
            if (!keep)
                break;
            midRequest = session.midRequest();
        }
        served.fetch_add(1);
        mSessions->inc();
    } catch (const FatalError &) {
        // Socket-level failure (peer reset mid-write): the session is
        // over either way; one broken client must not hurt the server.
        served.fetch_add(1);
        mSessions->inc();
    }
}

void
TeaServer::stop()
{
    if (!started.load() || stopped.exchange(true))
        return;
    stopping.store(true);
    if (samplerThread_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(samplerMu_);
            samplerStop_ = true;
        }
        samplerCv_.notify_all();
        samplerThread_.join();
    }
    if (loop_) {
        // The loop drains itself: accepts stop, in-flight consume
        // tasks finish, queued replies flush, stragglers are evicted
        // at the drain deadline. The listener closes after the loop
        // thread joined — it owns the fd's poller registration.
        loop_->stop();
        listener.close();
        pool.drain();
        return;
    }
    listener.close(); // wakes the accept loop
    if (acceptThread.joinable())
        acceptThread.join();
    // No new sessions can be admitted now. Shut down reads on the live
    // ones: blocked recvs wake with EOF; an in-flight replay finishes
    // and its reply still flushes, because the write side stays open.
    {
        std::lock_guard<std::mutex> lock(connMu);
        for (auto &conn : conns)
            conn.second->shutdownRead();
    }
    pool.drain(); // every running and queued session exits
}

} // namespace tea
