#include "net/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "svc/tracelog.hh"
#include "tea/serialize.hh"

namespace tea {

uint32_t
RetryPolicy::delayMs(uint32_t attempt, Xorshift64Star &rng) const
{
    uint64_t base = backoffMs == 0 ? 0 : uint64_t(backoffMs)
                                             << std::min(attempt, 20u);
    base = std::min<uint64_t>(base, maxBackoffMs);
    if (base == 0)
        return 0;
    uint64_t half = base / 2;
    return static_cast<uint32_t>(half + rng.nextBelow(base - half + 1));
}

TeaClient
TeaClient::connect(const std::string &endpoint,
                   const FaultConfig &faults, uint64_t faultSeed)
{
    FaultySocket fs(Socket::connectTo(Endpoint::parse(endpoint)));
    if (faults.any())
        fs.arm(faults, faultSeed);
    TeaClient c(std::move(fs));
    PayloadWriter w;
    w.u32(Wire::kMagic);
    w.u32(Wire::kVersion);
    c.sendFrame(MsgType::Hello, w);
    Frame ok = c.expect(MsgType::HelloOk);
    PayloadReader r(ok.payload);
    uint32_t version = r.u32();
    r.expectEnd();
    if (version != Wire::kVersion)
        fatal("server speaks protocol version %u, want %u", version,
              Wire::kVersion);
    return c;
}

void
TeaClient::sendFrame(MsgType type, const PayloadWriter &w)
{
    std::vector<uint8_t> bytes;
    appendFrame(bytes, type, w.out());
    sock.sendAll(bytes.data(), bytes.size());
}

Frame
TeaClient::recvFrame()
{
    Frame frame;
    uint8_t buf[64 * 1024];
    while (!decoder.poll(frame)) {
        size_t n = sock.recvSome(buf, sizeof(buf));
        if (n == 0)
            fatal("server closed the connection");
        decoder.feed(buf, n);
    }
    return frame;
}

Frame
TeaClient::expect(MsgType want)
{
    Frame frame = recvFrame();
    if (frame.type == want)
        return frame;
    if (frame.type == MsgType::Busy) {
        ServerBusy busy("server busy: admission queue full");
        // Newer servers attach {queue depth, session cap}; an empty
        // payload from an older server leaves the hints at 0.
        if (frame.payload.size() >= 8) {
            PayloadReader r(frame.payload);
            busy.queueDepth = r.u32();
            busy.maxSessions = r.u32();
        }
        throw busy;
    }
    if (frame.type == MsgType::Error) {
        PayloadReader r(frame.payload);
        r.u8(); // fatal flag; either way this request is over
        fatal("server error: %s", r.str(64 * 1024).c_str());
    }
    fatal("unexpected reply type 0x%02x",
          static_cast<unsigned>(frame.type));
}

void
TeaClient::putAutomaton(const std::string &name,
                        const std::vector<uint8_t> &teaBytes)
{
    PayloadWriter w;
    w.str(name);
    w.raw(teaBytes.data(), teaBytes.size());
    sendFrame(MsgType::PutAutomaton, w);
    expect(MsgType::PutOk);
}

void
TeaClient::putAutomaton(const std::string &name, const Tea &tea)
{
    putAutomaton(name, saveTea(tea));
}

std::vector<std::string>
TeaClient::list()
{
    std::vector<std::string> names;
    for (ListEntry &e : listEntries())
        names.push_back(std::move(e.name));
    return names;
}

std::vector<TeaClient::ListEntry>
TeaClient::listEntries()
{
    sendFrame(MsgType::List, PayloadWriter{});
    Frame ok = expect(MsgType::ListOk);
    PayloadReader r(ok.payload);
    uint32_t count = r.u32();
    std::vector<ListEntry> entries;
    entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        entries.push_back(ListEntry{r.str(Wire::kMaxName), true});
    // Store-backed servers append one residency marker per name; the
    // decode is tolerant (like BUSY's hint fields) so either side may
    // predate the other without a version bump.
    if (r.remaining() >= count)
        for (uint32_t i = 0; i < count; ++i)
            entries[i].resident = r.u8() != 0;
    return entries;
}

ServerStatus
TeaClient::ping()
{
    sendFrame(MsgType::Ping, PayloadWriter{});
    Frame pong = expect(MsgType::Pong);
    PayloadReader r(pong.payload);
    ServerStatus st = decodeStatus(r);
    r.expectEnd();
    return st;
}

std::string
TeaClient::stats(bool text)
{
    return statsFormat(text ? 1 : 0);
}

std::string
TeaClient::statsFormat(uint8_t format)
{
    PayloadWriter w;
    w.u8(format);
    sendFrame(MsgType::Stats, w);
    Frame ok = expect(MsgType::StatsOk);
    return std::string(ok.payload.begin(), ok.payload.end());
}

bool
TeaClient::evict(const std::string &name)
{
    PayloadWriter w;
    w.str(name);
    sendFrame(MsgType::Evict, w);
    Frame ok = expect(MsgType::EvictOk);
    PayloadReader r(ok.payload);
    bool found = r.u8() != 0;
    r.expectEnd();
    return found;
}

RemoteReplayResult
TeaClient::replay(const std::string &name, const uint8_t *log,
                  size_t len, RemoteReplayOptions opt)
{
    PayloadWriter begin;
    begin.str(name);
    uint8_t flags = 0;
    if (opt.wantProfile)
        flags |= ReplayFlags::kProfile;
    if (opt.noGlobal)
        flags |= ReplayFlags::kNoGlobal;
    if (opt.noLocal)
        flags |= ReplayFlags::kNoLocal;
    if (opt.reference)
        flags |= ReplayFlags::kReference;
    begin.u8(flags);
    sendFrame(MsgType::ReplayBegin, begin);
    // Wait for the ack before streaming: an unknown name fails here,
    // with no log bytes wasted on the wire.
    expect(MsgType::ReplayOk);

    for (size_t off = 0; off < len; off += Wire::kReplayChunk) {
        size_t n = std::min(Wire::kReplayChunk, len - off);
        PayloadWriter chunk;
        chunk.raw(log + off, n);
        sendFrame(MsgType::ReplayChunk, chunk);
    }
    sendFrame(MsgType::ReplayEnd, PayloadWriter{});

    Frame result = expect(MsgType::ReplayResult);
    PayloadReader r(result.payload);
    RemoteReplayResult out;
    out.stats = decodeStats(r);
    if (r.u8() != 0) {
        uint32_t states = r.u32();
        out.execCounts.reserve(states);
        for (uint32_t i = 0; i < states; ++i)
            out.execCounts.push_back(r.u64());
    }
    r.expectEnd();
    return out;
}

void
TeaClient::recordBegin(const std::string &name, RemoteRecordOptions opt)
{
    PayloadWriter w;
    w.str(name);
    w.u8(opt.v1Chunks ? 0 : RecordFlags::kChunksV2);
    w.u32(opt.swapInterval);
    w.str(opt.selector);
    sendFrame(MsgType::RecordBegin, w);
    // Wait for the ack before streaming: a claimed name or unknown
    // selector fails here, with no transitions wasted on the wire.
    // The ack payload (absent from older servers) carries the
    // capability byte: bit 0 accepts framed v2 delta chunks.
    Frame ok = expect(MsgType::RecordOk);
    recV2 = !opt.v1Chunks && !ok.payload.empty() &&
            (ok.payload[0] & 1) != 0;
}

void
TeaClient::recordChunk(const BlockTransition *batch, size_t n)
{
    PayloadWriter chunk;
    std::vector<uint8_t> bytes;
    if (recV2)
        encodeWireChunk(bytes, batch, n);
    else
        for (size_t i = 0; i < n; ++i)
            encodeTransition(bytes, batch[i]);
    chunk.raw(bytes.data(), bytes.size());
    sendFrame(MsgType::RecordChunk, chunk);
}

RemoteRecordResult
TeaClient::recordEnd()
{
    sendFrame(MsgType::RecordEnd, PayloadWriter{});
    Frame result = expect(MsgType::RecordResult);
    PayloadReader r(result.payload);
    RemoteRecordResult out;
    out.transitions = r.u64();
    out.traces = r.u64();
    out.states = r.u64();
    out.swaps = r.u64();
    out.stats = decodeStats(r);
    r.expectEnd();
    return out;
}

RemoteRecordResult
TeaClient::record(const std::string &name,
                  const std::vector<BlockTransition> &trs,
                  RemoteRecordOptions opt)
{
    recordBegin(name, opt);
    if (recV2) {
        // v2 chunks are framed with a record count, so split on count:
        // a writer-sized chunk encodes far below the frame cap.
        for (size_t off = 0; off < trs.size();
             off += TraceLogFormat::kChunkRecords)
            recordChunk(trs.data() + off,
                        std::min<size_t>(TraceLogFormat::kChunkRecords,
                                         trs.size() - off));
        return recordEnd();
    }
    // Legacy records split on encoded size, like replay(): a chunk
    // stays well under the frame cap however long the sequence is.
    std::vector<uint8_t> bytes;
    for (size_t i = 0; i < trs.size(); ++i) {
        encodeTransition(bytes, trs[i]);
        if (bytes.size() >= Wire::kReplayChunk) {
            PayloadWriter chunk;
            chunk.raw(bytes.data(), bytes.size());
            sendFrame(MsgType::RecordChunk, chunk);
            bytes.clear();
        }
    }
    if (!bytes.empty()) {
        PayloadWriter chunk;
        chunk.raw(bytes.data(), bytes.size());
        sendFrame(MsgType::RecordChunk, chunk);
    }
    return recordEnd();
}

RemoteReplayResult
replayWithRetry(const RemoteReplayJob &job, const RetryPolicy &policy,
                uint32_t *attemptsOut)
{
    Xorshift64Star jitter(policy.seed);
    for (uint32_t attempt = 0;; ++attempt) {
        try {
            // A fresh connection per attempt: the previous one may be
            // half-dead, mid-frame, or poisoned by corruption. The
            // fault seed shifts with the attempt so a chaos retry does
            // not deterministically replay the same injected failure.
            TeaClient c = TeaClient::connect(job.endpoint, job.faults,
                                             job.faultSeed + attempt);
            if (job.teaBytes != nullptr)
                c.putAutomaton(job.name, *job.teaBytes);
            RemoteReplayResult out =
                c.replay(job.name, job.log, job.len, job.opt);
            if (attemptsOut != nullptr)
                *attemptsOut = attempt + 1;
            return out;
        } catch (const FatalError &) {
            // ServerBusy and every transport-level failure land here.
            // Replay never mutates server state, so retrying from
            // scratch is always safe; a *semantic* rejection (unknown
            // name, corrupt log) also lands here and simply fails
            // `retries` more times — acceptable for a bounded count.
            if (attempt >= policy.retries) {
                if (attemptsOut != nullptr)
                    *attemptsOut = attempt + 1;
                throw;
            }
        }
        uint32_t ms = policy.delayMs(attempt, jitter);
        if (ms > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
}

} // namespace tea
