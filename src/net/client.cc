#include "net/client.hh"

#include <algorithm>

#include "tea/serialize.hh"

namespace tea {

TeaClient
TeaClient::connect(const std::string &endpoint)
{
    TeaClient c(Socket::connectTo(Endpoint::parse(endpoint)));
    PayloadWriter w;
    w.u32(Wire::kMagic);
    w.u32(Wire::kVersion);
    c.sendFrame(MsgType::Hello, w);
    Frame ok = c.expect(MsgType::HelloOk);
    PayloadReader r(ok.payload);
    uint32_t version = r.u32();
    r.expectEnd();
    if (version != Wire::kVersion)
        fatal("server speaks protocol version %u, want %u", version,
              Wire::kVersion);
    return c;
}

void
TeaClient::sendFrame(MsgType type, const PayloadWriter &w)
{
    std::vector<uint8_t> bytes;
    appendFrame(bytes, type, w.out());
    sock.sendAll(bytes.data(), bytes.size());
}

Frame
TeaClient::recvFrame()
{
    Frame frame;
    uint8_t buf[64 * 1024];
    while (!decoder.poll(frame)) {
        size_t n = sock.recvSome(buf, sizeof(buf));
        if (n == 0)
            fatal("server closed the connection");
        decoder.feed(buf, n);
    }
    return frame;
}

Frame
TeaClient::expect(MsgType want)
{
    Frame frame = recvFrame();
    if (frame.type == want)
        return frame;
    if (frame.type == MsgType::Busy)
        throw ServerBusy("server busy: admission queue full");
    if (frame.type == MsgType::Error) {
        PayloadReader r(frame.payload);
        r.u8(); // fatal flag; either way this request is over
        fatal("server error: %s", r.str(64 * 1024).c_str());
    }
    fatal("unexpected reply type 0x%02x",
          static_cast<unsigned>(frame.type));
}

void
TeaClient::putAutomaton(const std::string &name,
                        const std::vector<uint8_t> &teaBytes)
{
    PayloadWriter w;
    w.str(name);
    w.raw(teaBytes.data(), teaBytes.size());
    sendFrame(MsgType::PutAutomaton, w);
    expect(MsgType::PutOk);
}

void
TeaClient::putAutomaton(const std::string &name, const Tea &tea)
{
    putAutomaton(name, saveTea(tea));
}

std::vector<std::string>
TeaClient::list()
{
    sendFrame(MsgType::List, PayloadWriter{});
    Frame ok = expect(MsgType::ListOk);
    PayloadReader r(ok.payload);
    uint32_t count = r.u32();
    std::vector<std::string> names;
    names.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        names.push_back(r.str(Wire::kMaxName));
    r.expectEnd();
    return names;
}

bool
TeaClient::evict(const std::string &name)
{
    PayloadWriter w;
    w.str(name);
    sendFrame(MsgType::Evict, w);
    Frame ok = expect(MsgType::EvictOk);
    PayloadReader r(ok.payload);
    bool found = r.u8() != 0;
    r.expectEnd();
    return found;
}

RemoteReplayResult
TeaClient::replay(const std::string &name, const uint8_t *log,
                  size_t len, RemoteReplayOptions opt)
{
    PayloadWriter begin;
    begin.str(name);
    uint8_t flags = 0;
    if (opt.wantProfile)
        flags |= ReplayFlags::kProfile;
    if (opt.noGlobal)
        flags |= ReplayFlags::kNoGlobal;
    if (opt.noLocal)
        flags |= ReplayFlags::kNoLocal;
    if (opt.reference)
        flags |= ReplayFlags::kReference;
    begin.u8(flags);
    sendFrame(MsgType::ReplayBegin, begin);
    // Wait for the ack before streaming: an unknown name fails here,
    // with no log bytes wasted on the wire.
    expect(MsgType::ReplayOk);

    for (size_t off = 0; off < len; off += Wire::kReplayChunk) {
        size_t n = std::min(Wire::kReplayChunk, len - off);
        PayloadWriter chunk;
        chunk.raw(log + off, n);
        sendFrame(MsgType::ReplayChunk, chunk);
    }
    sendFrame(MsgType::ReplayEnd, PayloadWriter{});

    Frame result = expect(MsgType::ReplayResult);
    PayloadReader r(result.payload);
    RemoteReplayResult out;
    out.stats = decodeStats(r);
    if (r.u8() != 0) {
        uint32_t states = r.u32();
        out.execCounts.reserve(states);
        for (uint32_t i = 0; i < states; ++i)
            out.execCounts.push_back(r.u64());
    }
    r.expectEnd();
    return out;
}

} // namespace tea
