/**
 * @file
 * TeaClient: the dialing side of the tead wire protocol.
 *
 * A thin, blocking, single-connection client: connect() performs the
 * versioned HELLO handshake, then each method is one request/response
 * exchange (replay() is one request of many frames). Server-reported
 * request failures and protocol violations surface as FatalError; a
 * server that answers the handshake with BUSY (admission queue full)
 * throws the ServerBusy subclass so callers can back off and retry
 * without string-matching.
 *
 * The client is not thread-safe: one connection, one conversation.
 * Open more clients for parallelism — the loopback integration test
 * and bench/net_throughput run one client per thread.
 */

#ifndef TEA_NET_CLIENT_HH
#define TEA_NET_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hh"
#include "net/socket.hh"
#include "tea/automaton.hh"
#include "util/logging.hh"

namespace tea {

/** The server refused admission (its session queue is full). */
class ServerBusy : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** Per-replay options, mirroring REPLAY_BEGIN's flag bits. */
struct RemoteReplayOptions
{
    bool wantProfile = false; ///< return per-TBB execution counts
    bool noGlobal = false;    ///< LookupConfig::useGlobalBTree = false
    bool noLocal = false;     ///< LookupConfig::useLocalCache = false
    bool reference = false;   ///< LookupConfig::useCompiled = false
};

/** One remote stream's outcome. */
struct RemoteReplayResult
{
    ReplayStats stats;
    /** Per-state execution counts; empty unless wantProfile was set. */
    std::vector<uint64_t> execCounts;
};

class TeaClient
{
  public:
    /**
     * Dial and shake hands.
     * @throws ServerBusy when the server refuses admission
     * @throws FatalError on connect or protocol failures
     */
    static TeaClient connect(const std::string &endpoint);

    /** Upload a serialized TEA under `name` (replaces an older one). */
    void putAutomaton(const std::string &name,
                      const std::vector<uint8_t> &teaBytes);

    /** Serialize and upload an automaton. */
    void putAutomaton(const std::string &name, const Tea &tea);

    /** Names registered on the server, sorted. */
    std::vector<std::string> list();

    /** Drop a name on the server. @return false when it was absent. */
    bool evict(const std::string &name);

    /**
     * Stream a trace log and replay it remotely.
     * @throws FatalError when the server rejects the stream (unknown
     *         name, corrupt log) or the connection breaks
     */
    RemoteReplayResult replay(const std::string &name,
                              const uint8_t *log, size_t len,
                              RemoteReplayOptions opt = {});

    RemoteReplayResult
    replay(const std::string &name, const std::vector<uint8_t> &log,
           RemoteReplayOptions opt = {})
    {
        return replay(name, log.data(), log.size(), opt);
    }

    void close() { sock.close(); }

  private:
    explicit TeaClient(Socket s) : sock(std::move(s)) {}

    void sendFrame(MsgType type, const PayloadWriter &w);
    /** Blocking read of the next frame. @throws FatalError on EOF. */
    Frame recvFrame();
    /**
     * recvFrame(), then unwrap: BUSY throws ServerBusy, ERROR throws
     * FatalError with the server's message, any type other than `want`
     * throws. @return the frame of type `want`
     */
    Frame expect(MsgType want);

    Socket sock;
    FrameDecoder decoder;
};

} // namespace tea

#endif // TEA_NET_CLIENT_HH
