/**
 * @file
 * TeaClient: the dialing side of the tead wire protocol.
 *
 * A thin, blocking, single-connection client: connect() performs the
 * versioned HELLO handshake, then each method is one request/response
 * exchange (replay() is one request of many frames). Server-reported
 * request failures and protocol violations surface as FatalError; a
 * server that answers the handshake with BUSY (admission queue full)
 * throws the ServerBusy subclass — carrying the server's queue depth
 * and session cap when it sent them — so callers can back off and
 * retry without string-matching.
 *
 * The client holds its socket through a FaultySocket, so the chaos
 * suite (tests/test_chaos.cc) exercises the *real* client path with
 * injected faults; unarmed (the default), the wrapper is one branch
 * per call and the client behaves exactly as before.
 *
 * Because a replay is read-only on the server (the registry is only
 * consulted, never modified), the whole exchange is idempotent — which
 * is what makes replayWithRetry() safe: any attempt that dies before,
 * during, or after the result frame can simply be re-run from scratch
 * on a fresh connection.
 *
 * The client is not thread-safe: one connection, one conversation.
 * Open more clients for parallelism — the loopback integration test
 * and bench/net_throughput run one client per thread.
 */

#ifndef TEA_NET_CLIENT_HH
#define TEA_NET_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/fault.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "tea/automaton.hh"
#include "util/logging.hh"

namespace tea {

/**
 * The server refused admission (its session queue or connection cap is
 * full). `queueDepth`/`maxSessions` carry the server's hint when the
 * BUSY frame had one (servers predating the hint send an empty
 * payload; both fields stay 0 then).
 */
class ServerBusy : public FatalError
{
  public:
    using FatalError::FatalError;

    uint32_t queueDepth = 0;  ///< sessions waiting for a worker
    uint32_t maxSessions = 0; ///< server's live-connection cap (0 = none)
};

/** Per-replay options, mirroring REPLAY_BEGIN's flag bits. */
struct RemoteReplayOptions
{
    bool wantProfile = false; ///< return per-TBB execution counts
    bool noGlobal = false;    ///< LookupConfig::useGlobalBTree = false
    bool noLocal = false;     ///< LookupConfig::useLocalCache = false
    bool reference = false;   ///< LookupConfig::useCompiled = false
};

/** One remote stream's outcome. */
struct RemoteReplayResult
{
    ReplayStats stats;
    /** Per-state execution counts; empty unless wantProfile was set. */
    std::vector<uint64_t> execCounts;
};

/** Per-recording options, mirroring RECORD_BEGIN's optional fields. */
struct RemoteRecordOptions
{
    /** Hot-swap interval in transitions; 0 = the server's default. */
    uint32_t swapInterval = 0;
    /** Trace-selection policy name; empty = the server's default. */
    std::string selector;
    /**
     * Escape hatch: do not offer RecordFlags::kChunksV2, so every
     * chunk goes out as bare encodeTransition() records even against
     * a v2-capable server. Diagnostics and differential tests only.
     */
    bool v1Chunks = false;
};

/** One remote recording's outcome (the RECORD_RESULT frame). */
struct RemoteRecordResult
{
    uint64_t transitions = 0; ///< transitions the server ingested
    uint64_t traces = 0;      ///< traces in the final automaton
    uint64_t states = 0;      ///< states (incl. NTE) in the final automaton
    uint64_t swaps = 0;       ///< snapshots published (incl. the final)
    ReplayStats stats;        ///< the server-side recorder's counters
};

/**
 * Capped exponential backoff with seeded jitter, for retrying the
 * idempotent remote-replay exchange. Attempt k (0-based) sleeps a
 * uniform draw from [base/2, base] where base = min(maxBackoffMs,
 * backoffMs << k) — jitter keeps a fleet of retrying clients from
 * re-stampeding a BUSY server in lockstep.
 */
struct RetryPolicy
{
    uint32_t retries = 0;       ///< extra attempts after the first
    uint32_t backoffMs = 50;    ///< base delay before the first retry
    uint32_t maxBackoffMs = 2000;
    uint64_t seed = 1;          ///< jitter PRNG seed

    /** Jittered delay before retry number `attempt` (0-based), in ms. */
    uint32_t delayMs(uint32_t attempt, Xorshift64Star &rng) const;
};

class TeaClient
{
  public:
    /**
     * Dial and shake hands. A nonzero `faults` config arms fault
     * injection on the new connection (chaos tests only; the default
     * injects nothing).
     * @throws ServerBusy when the server refuses admission
     * @throws FatalError on connect or protocol failures
     */
    static TeaClient connect(const std::string &endpoint,
                             const FaultConfig &faults = {},
                             uint64_t faultSeed = 1);

    /** Upload a serialized TEA under `name` (replaces an older one). */
    void putAutomaton(const std::string &name,
                      const std::vector<uint8_t> &teaBytes);

    /** Serialize and upload an automaton. */
    void putAutomaton(const std::string &name, const Tea &tea);

    /** Names registered on the server, sorted. */
    std::vector<std::string> list();

    /** One name from listEntries(), with its residency marker. */
    struct ListEntry
    {
        std::string name;
        /**
         * True when the automaton is resident in server RAM; false
         * when it is a cold `.teac` image the server will fault in on
         * first replay. Servers predating the store omit the markers —
         * everything reports resident then (which is also true).
         */
        bool resident = true;
    };

    /** Names with resident/cold markers (store-backed servers). */
    std::vector<ListEntry> listEntries();

    /** Drop a name on the server. @return false when it was absent. */
    bool evict(const std::string &name);

    /**
     * Liveness + load probe: PING, wait for PONG. Cheap enough to call
     * between requests; the stats are a snapshot taken server-side.
     */
    ServerStatus ping();

    /**
     * Fetch the server's observability snapshot (the STATS frame).
     * @param text true for the human rendering, false for JSON
     * @return the report bytes, verbatim
     * @throws FatalError from an older server that predates STATS (it
     *         answers unknown types with a fatal ERROR)
     */
    std::string stats(bool text = false);

    /**
     * STATS with an explicit format byte: 0 = JSON report, 1 = text
     * report, 2 = history JSON (`teadbt stats --history`), 3 = flight-
     * recorder JSON (`teadbt flight-dump`). stats() delegates here.
     * Servers predating a format treat it as 0 and answer JSON.
     */
    std::string statsFormat(uint8_t format);

    /**
     * Stream a trace log and replay it remotely.
     * @throws FatalError when the server rejects the stream (unknown
     *         name, corrupt log) or the connection breaks
     */
    RemoteReplayResult replay(const std::string &name,
                              const uint8_t *log, size_t len,
                              RemoteReplayOptions opt = {});

    RemoteReplayResult
    replay(const std::string &name, const std::vector<uint8_t> &log,
           RemoteReplayOptions opt = {})
    {
        return replay(name, log.data(), log.size(), opt);
    }

    /**
     * Record a whole transition sequence remotely in one call:
     * RECORD_BEGIN, the transitions in RECORD_CHUNK frames, RECORD_END.
     * The server grows (and hot-swaps) the automaton under `name` as
     * the stream arrives; afterwards the name replays like any PUT one.
     * @throws FatalError when the server rejects the recording (name
     *         already being recorded, unknown selector, old server)
     */
    RemoteRecordResult record(const std::string &name,
                              const std::vector<BlockTransition> &trs,
                              RemoteRecordOptions opt = {});

    /**
     * The incremental recording conversation, for live drivers that do
     * not hold the whole sequence: recordBegin() once, recordChunk()
     * per batch, recordEnd() for the result. One recording at a time
     * per client; replay()/record() must not interleave with it.
     */
    void recordBegin(const std::string &name,
                     RemoteRecordOptions opt = {});

    /** Stream one batch (no reply; errors surface at recordEnd). */
    void recordChunk(const BlockTransition *batch, size_t n);

    /** Finish the recording and fetch the RECORD_RESULT summary. */
    RemoteRecordResult recordEnd();

    void close() { sock.close(); }

    /**
     * Did the server acknowledge RecordFlags::kChunksV2 for the
     * current/last recording? False before any recordBegin(), against
     * old servers, and under RemoteRecordOptions::v1Chunks.
     */
    bool recordChunksV2() const { return recV2; }

    /** Raw bytes written to the socket (frames, after negotiation). */
    uint64_t bytesSent() const { return sock.bytesSent(); }

    /** Raw bytes read from the socket. */
    uint64_t bytesReceived() const { return sock.bytesReceived(); }

    /** Faults the underlying FaultySocket injected (0 when unarmed). */
    uint64_t faultsInjected() const { return sock.faultsInjected(); }

    /** Injected faults of one kind (see FaultKind). */
    uint64_t faultsInjected(FaultKind kind) const
    {
        return sock.faultsInjected(kind);
    }

  private:
    explicit TeaClient(FaultySocket s) : sock(std::move(s)) {}

    void sendFrame(MsgType type, const PayloadWriter &w);
    /** Blocking read of the next frame. @throws FatalError on EOF. */
    Frame recvFrame();
    /**
     * recvFrame(), then unwrap: BUSY throws ServerBusy, ERROR throws
     * FatalError with the server's message, any type other than `want`
     * throws. @return the frame of type `want`
     */
    Frame expect(MsgType want);

    FaultySocket sock;
    FrameDecoder decoder;
    bool recV2 = false; ///< server acknowledged v2 record chunks
};

/**
 * Everything one self-contained remote replay attempt needs, so a
 * retry can rebuild the conversation from scratch: dial `endpoint`,
 * re-upload `teaBytes` when set (the previous attempt may have died
 * before its PUT landed), then stream the log.
 */
struct RemoteReplayJob
{
    std::string endpoint;
    std::string name;
    const uint8_t *log = nullptr;
    size_t len = 0;
    RemoteReplayOptions opt;
    /** When set, PUT these bytes under `name` before each replay. */
    const std::vector<uint8_t> *teaBytes = nullptr;
    /** Chaos-test fault injection; per-attempt seed = faultSeed + k. */
    FaultConfig faults;
    uint64_t faultSeed = 1;
};

/**
 * Run `job`, retrying per `policy` on ServerBusy and on transient
 * transport failures (connect refused/reset, connection lost at any
 * point — replay is idempotent, so a blanket retry is safe). The final
 * failure is rethrown when every attempt is spent.
 * @param attemptsOut when non-null, receives the number of attempts
 *        made (1 = first try succeeded)
 */
RemoteReplayResult replayWithRetry(const RemoteReplayJob &job,
                                   const RetryPolicy &policy,
                                   uint32_t *attemptsOut = nullptr);

} // namespace tea

#endif // TEA_NET_CLIENT_HH
