#include "net/frame.hh"

#include <cstring>

#include "util/crc32.hh"
#include "util/logging.hh"

namespace tea {

namespace {

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

} // namespace

void
appendFrame(std::vector<uint8_t> &out, MsgType type,
            const uint8_t *payload, size_t len)
{
    if (len > Wire::kMaxPayload)
        panic("frame payload of %zu bytes exceeds the %u cap", len,
              Wire::kMaxPayload);
    size_t start = out.size();
    putU32(out, static_cast<uint32_t>(1 + len));
    out.push_back(static_cast<uint8_t>(type));
    if (len > 0)
        out.insert(out.end(), payload, payload + len);
    uint32_t crc = crc32(out.data() + start, out.size() - start);
    putU32(out, crc);
}

void
FrameDecoder::feed(const uint8_t *data, size_t len)
{
    // Compact once the consumed prefix dominates, to keep the buffer
    // bounded by outstanding (not total) bytes.
    if (head > 4096 && head > buf.size() / 2) {
        buf.erase(buf.begin(), buf.begin() + static_cast<long>(head));
        head = 0;
    }
    buf.insert(buf.end(), data, data + len);
}

bool
FrameDecoder::poll(Frame &out)
{
    if (poisoned)
        fatal("frame decoder: stream already failed framing");
    if (buffered() < 4)
        return false;
    const uint8_t *p = buf.data() + head;
    uint32_t bodyLen = getU32(p);
    if (bodyLen == 0 || bodyLen > Wire::kMaxPayload + 1) {
        poisoned = true;
        fatal("frame: bad body length %u", bodyLen);
    }
    size_t total = 4 + static_cast<size_t>(bodyLen) + 4;
    if (buffered() < total)
        return false;
    uint32_t want = getU32(p + 4 + bodyLen);
    uint32_t got = crc32(p, 4 + bodyLen);
    if (want != got) {
        poisoned = true;
        fatal("frame: CRC mismatch (stored 0x%08x, computed 0x%08x)",
              want, got);
    }
    out.type = static_cast<MsgType>(p[4]);
    out.payload.assign(p + 5, p + 4 + bodyLen);
    head += total;
    return true;
}

// --------------------------------------------------------- payload codecs

void
PayloadWriter::u32(uint32_t v)
{
    putU32(bytes, v);
}

void
PayloadWriter::u64(uint64_t v)
{
    putU32(bytes, static_cast<uint32_t>(v));
    putU32(bytes, static_cast<uint32_t>(v >> 32));
}

void
PayloadWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
}

void
PayloadWriter::raw(const uint8_t *data, size_t len)
{
    bytes.insert(bytes.end(), data, data + len);
}

const uint8_t *
PayloadReader::need(size_t n)
{
    if (len - pos < n)
        fatal("payload: truncated (need %zu bytes, have %zu)", n,
              len - pos);
    const uint8_t *p = data + pos;
    pos += n;
    return p;
}

uint8_t
PayloadReader::u8()
{
    return *need(1);
}

uint32_t
PayloadReader::u32()
{
    return getU32(need(4));
}

uint64_t
PayloadReader::u64()
{
    uint64_t lo = u32();
    uint64_t hi = u32();
    return lo | (hi << 32);
}

std::string
PayloadReader::str(size_t maxLen)
{
    uint32_t n = u32();
    if (n > maxLen)
        fatal("payload: string of %u bytes exceeds the %zu limit", n,
              maxLen);
    const uint8_t *p = need(n);
    return std::string(reinterpret_cast<const char *>(p), n);
}

std::vector<uint8_t>
PayloadReader::rest()
{
    const uint8_t *p = data + pos;
    std::vector<uint8_t> out(p, p + remaining());
    pos = len;
    return out;
}

void
PayloadReader::expectEnd() const
{
    if (pos != len)
        fatal("payload: %zu trailing bytes", len - pos);
}

void
encodeStats(PayloadWriter &w, const ReplayStats &st)
{
    w.u64(st.blocks);
    w.u64(st.insnsTotal);
    w.u64(st.insnsInTrace);
    w.u64(st.transitions);
    w.u64(st.intraTraceHits);
    w.u64(st.traceExits);
    w.u64(st.exitsToCold);
    w.u64(st.nteBlocks);
    w.u64(st.localCacheHits);
    w.u64(st.globalLookups);
    w.u64(st.globalHits);
}

void
encodeStatus(PayloadWriter &w, const ServerStatus &st)
{
    w.u32(st.queueDepth);
    w.u32(st.activeSessions);
    w.u64(st.uptimeMs);
}

ServerStatus
decodeStatus(PayloadReader &r)
{
    ServerStatus st;
    st.queueDepth = r.u32();
    st.activeSessions = r.u32();
    st.uptimeMs = r.u64();
    return st;
}

ReplayStats
decodeStats(PayloadReader &r)
{
    ReplayStats st;
    st.blocks = r.u64();
    st.insnsTotal = r.u64();
    st.insnsInTrace = r.u64();
    st.transitions = r.u64();
    st.intraTraceHits = r.u64();
    st.traceExits = r.u64();
    st.exitsToCold = r.u64();
    st.nteBlocks = r.u64();
    st.localCacheHits = r.u64();
    st.globalLookups = r.u64();
    st.globalHits = r.u64();
    return st;
}

} // namespace tea
