#include "net/session.hh"

#include <algorithm>
#include <set>

#include "svc/tracelog.hh"
#include "tea/serialize.hh"
#include "util/logging.hh"

namespace tea {

Session::Session(AutomatonRegistry &reg, LookupConfig cfg)
    : registry(reg), lookup(cfg)
{
}

void
Session::reply(std::vector<uint8_t> &out, MsgType type,
               const PayloadWriter &w)
{
    appendFrame(out, type, w.out());
    ++reqDone;
}

void
Session::replyError(std::vector<uint8_t> &out, bool fatal,
                    const std::string &msg)
{
    PayloadWriter w;
    w.u8(fatal ? 1 : 0);
    w.str(msg);
    appendFrame(out, MsgType::Error, w.out());
    ++reqDone;
}

void
Session::pushSpan(obs::SpanPhase phase, uint64_t startNs)
{
    obs::Span s;
    s.conn = ob.conn;
    s.request = reqBegun;
    s.phase = phase;
    s.startNs = startNs;
    s.durNs = obs::monotonicNanos() - startNs;
    ob.spans->push(s);
    // Keep a small per-request tail for the slow-request breakdown;
    // cap it so an untaken buffer stays bounded.
    if (reqSpans.size() >= 64)
        reqSpans.erase(reqSpans.begin());
    reqSpans.push_back(s);
}

std::vector<obs::Span>
Session::takeRequestSpans()
{
    std::vector<obs::Span> taken = std::move(reqSpans);
    reqSpans.clear();
    return taken;
}

bool
Session::consume(const uint8_t *data, size_t len,
                 std::vector<uint8_t> &out)
{
    if (state == State::Closed)
        return false;
    decoder.feed(data, len);
    for (;;) {
        Frame frame;
        uint64_t t0 = traced() ? obs::monotonicNanos() : 0;
        try {
            if (!decoder.poll(frame))
                return true;
        } catch (const FatalError &e) {
            // Framing is broken; nothing later can be trusted.
            replyError(out, /*fatal=*/true, e.what());
            state = State::Closed;
            return false;
        }
        // A frame other than stream payload begins a request; counted
        // before handling so an in-flight STATS sees itself.
        if (frame.type != MsgType::ReplayChunk &&
            frame.type != MsgType::RecordChunk) {
            ++reqBegun;
            if (ob.requests != nullptr)
                ob.requests->inc();
        }
        if (traced())
            pushSpan(obs::SpanPhase::Decode, t0);
        if (!onFrame(frame, out)) {
            state = State::Closed;
            return false;
        }
    }
}

bool
Session::onFrame(const Frame &frame, std::vector<uint8_t> &out)
{
    // Protocol-order checks first: a frame the current state does not
    // admit is a violation, not a failed request.
    switch (state) {
    case State::ExpectHello:
        if (frame.type != MsgType::Hello) {
            replyError(out, true, "expected HELLO");
            return false;
        }
        break;
    case State::Ready:
        if (frame.type != MsgType::PutAutomaton &&
            frame.type != MsgType::List &&
            frame.type != MsgType::Evict &&
            frame.type != MsgType::Ping &&
            frame.type != MsgType::Stats &&
            frame.type != MsgType::ReplayBegin &&
            frame.type != MsgType::RecordBegin) {
            replyError(out, true, "unexpected message type");
            return false;
        }
        break;
    case State::Streaming:
        if (frame.type != MsgType::ReplayChunk &&
            frame.type != MsgType::ReplayEnd) {
            replyError(out, true,
                       "expected REPLAY_CHUNK or REPLAY_END");
            return false;
        }
        break;
    case State::Recording:
        if (frame.type != MsgType::RecordChunk &&
            frame.type != MsgType::RecordEnd) {
            replyError(out, true,
                       "expected RECORD_CHUNK or RECORD_END");
            return false;
        }
        break;
    case State::Closed:
        return false;
    }

    if (frame.type == MsgType::Hello) {
        try {
            PayloadReader r(frame.payload);
            uint32_t magic = r.u32();
            uint32_t version = r.u32();
            r.expectEnd();
            if (magic != Wire::kMagic)
                fatal("bad protocol magic 0x%08x", magic);
            if (version != Wire::kVersion)
                fatal("unsupported protocol version %u", version);
        } catch (const FatalError &e) {
            replyError(out, true, e.what());
            return false;
        }
        PayloadWriter w;
        w.u32(Wire::kVersion);
        reply(out, MsgType::HelloOk, w);
        state = State::Ready;
        return true;
    }

    // Oversized stream accumulation is a resource violation: close
    // rather than grow without bound.
    if (frame.type == MsgType::ReplayChunk &&
        streamLog.size() + frame.payload.size() > maxLogBytes) {
        replyError(out, true, "replay stream exceeds the size cap");
        return false;
    }

    // Everything else is a request: failures keep the session open.
    try {
        handleRequest(frame, out);
    } catch (const FatalError &e) {
        if (state == State::Streaming) {
            // Abandon the stream; the client restarts with a new BEGIN.
            stream = AutomatonSnapshot{};
            streamLog.clear();
            state = State::Ready;
        } else if (state == State::Recording) {
            // Abandon the recording: the session destructor releases
            // the name and the last swapped snapshot stays installed.
            recSession.reset();
            state = State::Ready;
        }
        replyError(out, false, e.what());
    }
    return true;
}

void
Session::handleRequest(const Frame &frame, std::vector<uint8_t> &out)
{
    switch (frame.type) {
    case MsgType::PutAutomaton: {
        PayloadReader r(frame.payload);
        std::string name = r.str(Wire::kMaxName);
        if (name.empty())
            fatal("automaton name must not be empty");
        Tea tea = loadTea(r.rest()); // validates; throws on corruption
        uint32_t numStates;
        if (store != nullptr) {
            // Write-through: compile once, land the .teac on disk
            // atomically, and make the snapshot resident.
            auto snap = store->put(
                name, std::make_shared<const Tea>(std::move(tea)));
            numStates = snap.compiled->numStates();
        } else {
            auto snap = registry.put(name, std::move(tea));
            numStates = static_cast<uint32_t>(snap->numStates());
        }
        PayloadWriter w;
        w.u32(numStates);
        reply(out, MsgType::PutOk, w);
        return;
    }
    case MsgType::List: {
        PayloadReader r(frame.payload);
        r.expectEnd();
        // The reply grew a residency marker per name (appended after
        // the name block, so pre-store clients simply ignore it):
        // 1 = resident in RAM, 0 = cold on disk, faulted in on first
        // replay. Without a store everything the registry lists is
        // resident by definition.
        std::vector<std::pair<std::string, bool>> names;
        if (store != nullptr) {
            std::vector<std::string> res = registry.list();
            std::set<std::string> resSet(res.begin(), res.end());
            for (const StoreEntry &e : store->list()) {
                names.emplace_back(e.name, resSet.count(e.name) != 0);
                resSet.erase(e.name);
            }
            // Registry names outside the store dir (direct preloads).
            for (const std::string &n : resSet)
                names.emplace_back(n, true);
            std::sort(names.begin(), names.end());
        } else {
            for (const std::string &n : registry.list())
                names.emplace_back(n, true);
        }
        PayloadWriter w;
        w.u32(static_cast<uint32_t>(names.size()));
        for (const auto &[n, resident] : names)
            w.str(n);
        for (const auto &[n, resident] : names)
            w.u8(resident ? 1 : 0);
        reply(out, MsgType::ListOk, w);
        return;
    }
    case MsgType::Evict: {
        PayloadReader r(frame.payload);
        std::string name = r.str(Wire::kMaxName);
        r.expectEnd();
        // With a store, EVICT drops residency only — the .teac image
        // stays, so the name remains replayable (cold). Names the
        // store does not manage (direct preloads) still evict from
        // the registry.
        bool found = store != nullptr
                         ? (store->evictResident(name) ||
                            registry.evict(name))
                         : registry.evict(name);
        PayloadWriter w;
        w.u8(found ? 1 : 0);
        reply(out, MsgType::EvictOk, w);
        return;
    }
    case MsgType::Ping: {
        PayloadReader r(frame.payload);
        r.expectEnd();
        PayloadWriter w;
        encodeStatus(w, statusFn ? statusFn() : ServerStatus{});
        reply(out, MsgType::Pong, w);
        return;
    }
    case MsgType::Stats: {
        // Tolerant by design, like BUSY: empty payload means format 0
        // (JSON), a leading u8 selects the format (1 = text, 2 =
        // history JSON, 3 = flight-recorder JSON), and any extra bytes
        // are ignored so the request can grow fields without a version
        // bump.
        uint8_t format = frame.payload.empty() ? 0 : frame.payload[0];
        std::string report =
            statsFn ? statsFn(format)
                    : std::string(format == 1 ? "" : "{}");
        PayloadWriter w;
        w.raw(reinterpret_cast<const uint8_t *>(report.data()),
              report.size());
        reply(out, MsgType::StatsOk, w);
        return;
    }
    case MsgType::ReplayBegin: {
        PayloadReader r(frame.payload);
        std::string name = r.str(Wire::kMaxName);
        uint8_t flags = r.u8();
        r.expectEnd();
        uint64_t tLookup = traced() ? obs::monotonicNanos() : 0;
        // Through the store a cold name faults its .teac image in by
        // mmap here (no recompile); corruption surfaces as a non-fatal
        // ERROR reply like any other failed request.
        AutomatonSnapshot snap = store != nullptr
                                     ? store->get(name)
                                     : registry.snapshot(name);
        if (traced())
            pushSpan(obs::SpanPhase::Lookup, tLookup);
        if (!snap)
            fatal("no automaton named '%s'", name.c_str());
        // Pin the snapshot now: a concurrent evict cannot touch it,
        // and the replay below reuses the registry's CompiledTea
        // instead of compiling per stream.
        stream = std::move(snap);
        // One interning lookup per stream buys the per-automaton
        // series; the replay loop itself never sees the label map.
        streamReplaysBy =
            ob.replaysBy != nullptr ? &ob.replaysBy->at(name) : nullptr;
        streamTransitionsBy = ob.transitionsBy != nullptr
                                  ? &ob.transitionsBy->at(name)
                                  : nullptr;
        streamReplayMsBy =
            ob.replayMsBy != nullptr ? &ob.replayMsBy->at(name) : nullptr;
        streamLog.clear();
        streamProfile = (flags & ReplayFlags::kProfile) != 0;
        streamCfg = lookup;
        streamCfg.useGlobalBTree = (flags & ReplayFlags::kNoGlobal) == 0;
        streamCfg.useLocalCache = (flags & ReplayFlags::kNoLocal) == 0;
        if ((flags & ReplayFlags::kReference) != 0) {
            streamCfg.useCompiled = false;
            // The reference kernel walks the source Tea; a mapped
            // image carries it only as an embedded blob, so rehydrate
            // per-request — a diagnostic escape hatch, not a hot path.
            if (!stream.tea && stream.compiled)
                stream.tea = std::make_shared<const Tea>(
                    stream.compiled->rehydrateTea());
        }
        state = State::Streaming;
        reply(out, MsgType::ReplayOk, PayloadWriter{});
        return;
    }
    case MsgType::ReplayChunk:
        streamLog.insert(streamLog.end(), frame.payload.begin(),
                         frame.payload.end());
        return;
    case MsgType::ReplayEnd: {
        PayloadReader r(frame.payload);
        r.expectEnd();
        ++replays;
        if (ob.replays != nullptr)
            ob.replays->inc();
        if (streamReplaysBy != nullptr)
            streamReplaysBy->inc();
        ReplayJob job{stream.tea, "", &streamLog, stream.compiled};
        bool timeReplay = traced() || streamReplayMsBy != nullptr;
        uint64_t tReplay = timeReplay ? obs::monotonicNanos() : 0;
        StreamResult res = runReplayJob(job, streamCfg);
        if (traced())
            pushSpan(obs::SpanPhase::Replay, tReplay);
        if (streamReplayMsBy != nullptr)
            streamReplayMsBy->observe(
                static_cast<double>(obs::monotonicNanos() - tReplay) /
                1e6);
        if (ob.transitions != nullptr)
            ob.transitions->inc(res.stats.transitions);
        if (streamTransitionsBy != nullptr)
            streamTransitionsBy->inc(res.stats.transitions);
        if (ob.salvaged != nullptr && res.salvaged)
            ob.salvaged->inc();
        bool wantProfile = streamProfile;
        stream = AutomatonSnapshot{};
        state = State::Ready;
        if (!res.ok()) {
            if (ob.replayFailures != nullptr)
                ob.replayFailures->inc();
            streamLog.clear();
            fatal("replay failed: %s", res.error.c_str());
        }
        streamLog.clear();
        PayloadWriter w;
        encodeStats(w, res.stats);
        w.u8(wantProfile ? 1 : 0);
        if (wantProfile) {
            w.u32(static_cast<uint32_t>(res.execCounts.size()));
            for (uint64_t c : res.execCounts)
                w.u64(c);
        }
        reply(out, MsgType::ReplayResult, w);
        return;
    }
    case MsgType::RecordBegin: {
        if (recSvc == nullptr)
            fatal("recording is not enabled on this server");
        PayloadReader r(frame.payload);
        std::string name = r.str(Wire::kMaxName);
        // Unknown flag bits are ignored (versionless growth); bit 0
        // requests framed v2 delta chunks, acknowledged below.
        uint8_t flags = r.u8();
        // Optional growth fields, decoded tolerantly (cf. BUSY/STATS):
        // a u32 swap interval and a selector name. Extra bytes beyond
        // those are future fields — ignored.
        rec::RecordingConfig rc;
        rc.swapInterval = recSwapInterval;
        if (r.remaining() >= 4) {
            uint32_t interval = r.u32();
            if (interval != 0)
                rc.swapInterval = interval;
        }
        if (r.remaining() >= 4) {
            std::string selector = r.str(Wire::kMaxName);
            if (!selector.empty())
                rc.selector = std::move(selector);
        }
        // Deliberately the default LookupConfig, not the server's
        // replay lookup: the online recorder must be bit-identical to
        // a default offline TeaRecorder over the same transitions.
        recSession = recSvc->begin(name, std::move(rc));
        recChunksV2 = (flags & RecordFlags::kChunksV2) != 0;
        state = State::Recording;
        // The ack byte completes the negotiation: an old client never
        // reads RECORD_OK's payload, a new one reads bit 0.
        PayloadWriter w;
        w.u8(recChunksV2 ? 1 : 0);
        reply(out, MsgType::RecordOk, w);
        return;
    }
    case MsgType::RecordChunk: {
        // Decode the whole chunk before feeding any of it: a malformed
        // record discards the batch atomically instead of leaving the
        // automaton grown by half a chunk.
        if (ob.recWireBytes != nullptr)
            ob.recWireBytes->inc(frame.payload.size());
        std::vector<BlockTransition> batch;
        if (recChunksV2) {
            // One framed v2 delta chunk (CRC-checked, batch-decoded).
            batch = decodeWireChunk(frame.payload.data(),
                                    frame.payload.size());
        } else {
            size_t cursor = 0;
            while (cursor < frame.payload.size())
                batch.push_back(decodeTransition(
                    frame.payload.data(), frame.payload.size(), cursor));
        }
        recSession->feedBatch(batch.data(), batch.size());
        return;
    }
    case MsgType::RecordEnd: {
        PayloadReader r(frame.payload);
        r.expectEnd();
        rec::RecordingResultSummary summary = recSession->finish();
        ReplayStats st = recSession->stats();
        recSession.reset();
        state = State::Ready;
        PayloadWriter w;
        w.u64(summary.transitions);
        w.u64(summary.traces);
        w.u64(summary.states);
        w.u64(summary.swaps);
        encodeStats(w, st);
        reply(out, MsgType::RecordResult, w);
        return;
    }
    default:
        // onFrame() admits only the cases above per state.
        panic("session: unhandled message type 0x%02x",
              static_cast<unsigned>(frame.type));
    }
}

} // namespace tea
