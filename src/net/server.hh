/**
 * @file
 * TeaServer: the networked replay service ("tead").
 *
 * The paper's automata are pure data, so the replay side can be a
 * remote service: clients upload serialized TEAs into the server's
 * AutomatonRegistry and stream trace logs at it; the server replays
 * each stream and returns its ReplayStats (plus the per-TBB profile on
 * request). Results are computed by the same runReplayJob() the
 * in-process ReplayService uses, so a remote replay is bit-identical
 * to a local one — enforced by tests/test_net.cc and
 * bench/net_throughput.
 *
 * Two interchangeable connection engines (ServerConfig::core): the
 * thread-per-connection core documented below, and the epoll/poll
 * event-loop core (net/event_loop.hh) that owns every socket on one
 * thread and scales to tens of thousands of connections. Admission
 * (BUSY), deadlines, eviction, and graceful drain mean the same thing
 * on both; the differences are purely mechanical (who blocks where).
 *
 * Concurrency model of the blocking core — one accept thread, sessions
 * on a ThreadPool:
 *
 * - the accept loop hands each admitted connection to the worker pool;
 *   a session occupies its worker for the connection's lifetime, so
 *   at most `workers` clients are served concurrently;
 * - admission control is the pool's queue depth
 *   (ThreadPool::pending()) plus an optional live-connection cap
 *   (`maxSessions`): when `maxQueue` sessions already wait for a
 *   worker, or `maxSessions` connections are live, new connections get
 *   one BUSY frame — carrying the queue depth and the cap, so the
 *   client can log *why* and back off smarter — and an immediate
 *   close: backpressure instead of unbounded memory;
 * - sessions carry deadlines: `idleTimeoutMs` bounds how long a
 *   connection may sit sending nothing, `requestDeadlineMs` bounds how
 *   long one request (a partial frame, or an open replay stream) may
 *   take end to end. A dead peer trips the idle clock; a slowloris
 *   trickling a byte at a time keeps the idle clock happy but trips
 *   the request clock. Either way the session worker is reclaimed: the
 *   server sends a best-effort fatal ERROR frame (when the socket is
 *   still writable), counts the eviction, and emits a rate-limited
 *   warning — a flapping client cannot flood the log;
 * - stop() is graceful: the listener closes first (no new
 *   connections), then every live session socket gets a read-side
 *   shutdown — a replay already running completes and its reply is
 *   flushed to the client before the connection closes, because
 *   writes stay open. stop() returns only after every session exited.
 */

#ifndef TEA_NET_SERVER_HH
#define TEA_NET_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/fault.hh"
#include "net/session.hh"
#include "net/socket.hh"
#include "obs/history.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "svc/registry.hh"
#include "svc/replay_service.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace tea {

class EventLoop;

/**
 * Which connection engine drives the server.
 *
 * - `Blocking`: the original thread-per-connection core described in
 *   the file comment above — one pool worker parked per live socket.
 * - `EventLoop`: the single-threaded epoll/poll readiness core
 *   (net/event_loop.hh) — sockets are nonblocking and owned by the
 *   loop, replay/record work still runs on the pool, and idle
 *   connections cost a few hundred bytes instead of a thread. Same
 *   wire protocol, same Session, same BUSY/eviction/deadline meaning;
 *   tests/test_chaos.cc proves both cores bit-identical under fault
 *   injection.
 */
enum class ServerCore : uint8_t { Blocking, EventLoop };

struct ServerConfig
{
    /** "tcp:host:port" (port 0 = ephemeral) or "unix:/path". */
    std::string endpoint = "tcp:127.0.0.1:0";
    /** Session workers; 0 picks hardware_concurrency. */
    size_t workers = 0;
    /** Connections allowed to wait for a worker before BUSY (≥ 1). */
    size_t maxQueue = 64;
    /** Live-connection cap before BUSY; 0 = bounded by maxQueue only. */
    size_t maxSessions = 0;
    /**
     * Evict a connection that sends nothing for this long (ms);
     * 0 disables. A stalled or dead client stops pinning its worker.
     */
    uint32_t idleTimeoutMs = 0;
    /**
     * Evict a connection whose single request (first byte of a frame
     * through to its completion, or REPLAY_BEGIN through REPLAY_END)
     * exceeds this budget (ms); 0 disables. Catches slowloris clients
     * that trickle bytes fast enough to dodge the idle clock.
     */
    uint32_t requestDeadlineMs = 0;
    /**
     * Log (rate-limited, with the request's per-phase span breakdown)
     * any request slower than this many milliseconds; 0 disables the
     * slow-request log. Every slow request also bumps the
     * server.slow_requests counter regardless of log rate limiting.
     */
    uint32_t slowRequestMs = 0;
    /** Span ring capacity (entries; rounded up to a power of two). */
    size_t traceRing = 1024;
    /** Default lookup configuration for replays (per-stream flags win). */
    LookupConfig lookup;
    /**
     * Persistent automaton store directory (store/store.hh); empty
     * disables the store and keeps the RAM-only registry. With a store,
     * PUTs write `.teac` images through to disk and replays of cold
     * names fault them in by mmap — no recompile on restart.
     */
    std::string storeDir;
    /** Resident-tier budgets for the store; 0 = unlimited. */
    size_t storeMaxResidentBytes = 0;
    size_t storeMaxResident = 0;
    /**
     * Default hot-swap interval for RECORD sessions (transitions fed
     * between publish attempts); a client's RECORD_BEGIN may override
     * it per recording.
     */
    uint32_t recordSwapInterval = 4096;

    /**
     * Spans included in a STATS reply and statsReport() (newest
     * first). Clamped to [1, 4096] at construction; the span ring's
     * own capacity is the effective ceiling below that.
     */
    size_t statsSpanLimit = 64;
    /**
     * Cadence of the metrics history sampler (ms): a background thread
     * snapshots a fixed set of counters into the delta-compressed
     * history ring (obs/history.hh) this often, serving
     * `teadbt stats --history` and GET /history.json. 0 disables the
     * sampler and the ring entirely.
     */
    uint32_t historyIntervalMs = 1000;
    /** Frames the history ring retains (raised to 2 when sampling). */
    size_t historyFrames = 120;

    /** Connection engine; see ServerCore. */
    ServerCore core = ServerCore::Blocking;

    // ----- event-loop core tuning (ignored by the blocking core) -----

    /**
     * Hard cap on one connection's queued-but-unsent reply bytes. A
     * peer that stops reading while requesting more output is fatally
     * closed when its queue would pass this — per-connection memory is
     * bounded no matter what the peer does.
     */
    size_t maxWriteQueueBytes = 64u << 20;
    /**
     * Stop reading from a connection whose write queue passes this
     * (backpressure: its next request would only pile more replies
     * onto a peer that is not draining the current ones) ...
     */
    size_t writeHighWatermark = 4u << 20;
    /** ... and resume reading once the queue drains below this. */
    size_t writeLowWatermark = 1u << 20;
    /**
     * stop()'s patience: a connection still holding unflushed replies
     * (or an unfinished consume) this long after drain began is
     * evicted. 0 means close stragglers immediately.
     */
    uint32_t drainDeadlineMs = 2000;
    /** Timer-wheel granularity (ms); deadlines round up to it. */
    uint32_t loopTickMs = 4;
    /** Use the poll(2) backend even where epoll is available (tests). */
    bool loopForcePoll = false;
    /**
     * Chaos-test fault injection on the loop's nonblocking sockets
     * (EAGAIN storms, partial writes, spurious readiness). Default:
     * nothing armed, exact pass-through.
     */
    FaultConfig loopFaults;
    uint64_t loopFaultSeed = 1;
};

class TeaServer
{
  public:
    explicit TeaServer(ServerConfig config);

    /** Calls stop(). */
    ~TeaServer();

    TeaServer(const TeaServer &) = delete;
    TeaServer &operator=(const TeaServer &) = delete;

    /**
     * Bind, listen, and start accepting. @throws FatalError when the
     * endpoint cannot be bound. One-shot: a stopped server does not
     * restart.
     */
    void start();

    /** Graceful shutdown (see file comment); idempotent. */
    void stop();

    /** The bound endpoint with any ephemeral port resolved. */
    std::string endpoint() const;

    /** Resolved TCP port (0 for Unix endpoints). */
    uint16_t port() const;

    /** The resident automaton tier; preload or inspect it directly. */
    AutomatonRegistry &registry() { return registry_; }

    /** The persistent store, or nullptr when storeDir is empty. */
    AutomatonStore *store() { return store_.get(); }

    /** The RECORD verb's session broker (always present). */
    rec::RecordingService &recorder() { return *recSvc_; }

    size_t workers() const { return pool.workers(); }

    /** Sessions admitted but still waiting for a worker. */
    size_t queueDepth() const { return pool.pending(); }

    /** Live connections (serving or queued). */
    size_t activeSessions() const;

    /** Milliseconds since start(); 0 before it. */
    uint64_t uptimeMs() const;

    // Counters for the CLI's exit report and the tests.
    uint64_t sessionsServed() const { return served.load(); }
    uint64_t busyRejected() const { return rejected.load(); }
    /** Connections evicted by the idle or request deadline. */
    uint64_t sessionsEvicted() const { return evicted.load(); }
    /** Requests that exceeded ServerConfig::slowRequestMs. */
    uint64_t slowRequests() const;

    /** The server's metric store (counters, gauges, histograms). */
    obs::MetricsRegistry &metrics() { return metrics_; }

    /** The span ring every session traces into. */
    const obs::SpanRing &spans() const { return spans_; }

    /**
     * Render the full observability snapshot: every metric plus the
     * newest spans (ServerConfig::statsSpanLimit of them). text=false
     * yields the JSON document the STATS frame and `teadbt stats
     * --json` serve; text=true the human rendering. Callable from any
     * thread.
     */
    std::string statsReport(bool text) const;

    /**
     * The STATS reply body for a wire format byte: 0 = JSON report,
     * 1 = text report, 2 = history JSON (historyJson()), 3 = flight-
     * recorder JSON (obs::FlightRecorder::instance()). Unknown bytes
     * answer the JSON report, so old servers and new clients coexist.
     */
    std::string statsPayload(uint8_t format) const;

    /**
     * The history ring as `{"series": [...], "frames": [[tMs, v...],
     * ...]}`; an empty document when the sampler is disabled.
     */
    std::string historyJson() const;

    /** The metrics snapshot as OpenMetrics text (GET /metrics). */
    std::string openMetricsText() const;

    /** True once stop() began: GET /healthz answers 503 then. */
    bool draining() const { return stopping.load(); }

  private:
    friend class EventLoop; ///< the loop core is an engine of this class

    void acceptLoop();
    void serveConnection(Socket &sock, uint64_t connId,
                         uint64_t acceptNs);
    /** Best-effort fatal ERROR + counters; the session ends after. */
    void evictConnection(Socket &sock, const char *why, bool deadline);
    /** A Session wired exactly like serveConnection()'s, for the loop. */
    std::unique_ptr<Session> makeSession(uint64_t connId);

    ServerConfig cfg;
    AutomatonRegistry registry_;
    std::unique_ptr<AutomatonStore> store_; ///< set when storeDir != ""
    std::unique_ptr<rec::RecordingService> recSvc_;

    // Observability state. Declared before the pool so the worker
    // threads (and their task observer) die before the instruments.
    obs::MetricsRegistry metrics_;
    obs::SpanRing spans_;
    obs::Counter *mRequests;       ///< server.requests
    obs::Counter *mSlow;           ///< server.slow_requests
    obs::Counter *mBytesIn;        ///< server.bytes_in
    obs::Counter *mBytesOut;       ///< server.bytes_out
    obs::Counter *mBusy;           ///< server.busy_rejected
    obs::Counter *mEvictIdle;      ///< server.evictions_idle
    obs::Counter *mEvictDeadline;  ///< server.evictions_deadline
    obs::Counter *mSessions;       ///< server.sessions_served
    obs::Counter *mTaskFailures;   ///< pool.task_failures
    obs::Histogram *hRequestMs;    ///< server.request_ms
    obs::Histogram *hTaskMs;       ///< pool.task_ms
    // Event-loop health (all stay zero on the blocking core).
    obs::Counter *mLoopIterations; ///< loop.iterations
    obs::Counter *mLoopWakeups;    ///< loop.wakeups
    obs::Counter *mLoopTimers;     ///< loop.timers_fired
    obs::Counter *mLoopDeferred;   ///< loop.writes_deferred
    obs::Counter *mLoopStalls;     ///< loop.backpressure_stalls
    obs::Counter *mLoopOverflow;   ///< loop.wq_overflow
    obs::Counter *mLoopFaults;     ///< loop.faults_injected
    obs::Counter *mHttpRequests;   ///< loop.http_requests
    obs::Histogram *hLoopMs;       ///< loop.latency_ms
    // Handles the history sampler reads (owned by other subsystems'
    // catalogs; counter() is get-or-create so these alias them).
    obs::Counter *mRecTransitions; ///< rec.transitions
    obs::Counter *mStoreHits;      ///< store.hits
    obs::Counter *mStoreFaults;    ///< store.mmap_loads
    SessionObs svcObs_; ///< per-session template; conn id stamped in

    // History sampler: a thread recording counter values into the ring
    // every historyIntervalMs, stopped via the cv. Null/never started
    // when historyIntervalMs == 0.
    std::unique_ptr<obs::HistoryRing> history_;
    std::thread samplerThread_;
    std::mutex samplerMu_;
    std::condition_variable samplerCv_;
    bool samplerStop_ = false;
    void samplerLoop();
    void recordHistorySample();

    ThreadPool pool;
    Listener listener;
    std::thread acceptThread;
    std::unique_ptr<EventLoop> loop_; ///< set when core == EventLoop

    mutable std::mutex connMu;
    uint64_t nextConnId = 0;
    /** Live session sockets, so stop() can shut their reads down. */
    std::unordered_map<uint64_t, std::shared_ptr<Socket>> conns;

    std::atomic<bool> started{false};
    std::atomic<bool> stopping{false};
    std::atomic<bool> stopped{false};
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> evicted{0};
    std::atomic<uint64_t> startedAtMs{0}; ///< steady clock, for uptime
};

} // namespace tea

#endif // TEA_NET_SERVER_HH
