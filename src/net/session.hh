/**
 * @file
 * The server side of one tead connection, as a pure state machine.
 *
 * A Session consumes raw wire bytes and produces raw reply bytes; it
 * knows nothing about sockets. Both connection engines pump it: the
 * blocking core (net/server.hh) from a parked worker's recv loop, the
 * event-loop core (net/event_loop.hh) from pool tasks fed by the
 * readiness thread — being socket-free is what lets one state machine
 * serve both. The fuzz tests (tests/test_net_fuzz.cc) pump it with
 * mutated byte streams directly — the whole protocol surface is
 * exercised in-process.
 *
 * Error containment is the contract:
 *
 * - framing failures (bad length, bad CRC) and protocol-order
 *   violations append one fatal ERROR frame and end the session;
 * - malformed or failing *requests* inside a well-framed stream
 *   (unknown automaton, corrupt TEA bytes, corrupt trace log, bad
 *   payload shape) append a non-fatal ERROR reply and keep the session
 *   alive — the frame boundary is still trustworthy;
 * - consume() itself never throws FatalError: every failure becomes an
 *   ERROR frame or a closed session. (PanicError still propagates —
 *   that is a library bug, not an input.)
 *
 * Replays run inline on the calling thread — the server executes
 * sessions on its worker pool, so a REPLAY_END does its work on a pool
 * worker, exactly like a ReplayService job. The automaton snapshot is
 * pinned at REPLAY_BEGIN, so a concurrent evict never invalidates the
 * stream being replayed (the registry's immutability contract).
 */

#ifndef TEA_NET_SESSION_HH
#define TEA_NET_SESSION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "rec/service.hh"
#include "store/store.hh"
#include "svc/registry.hh"
#include "svc/replay_service.hh"

namespace tea {

/**
 * The observability hookup for one session: a span ring plus the
 * counters the session bumps as it works. All pointers are optional
 * and borrowed (the server owns the registry and the ring); a
 * default-constructed SessionObs means "not instrumented" and the
 * session skips every clock read — the fuzz tests run that way.
 */
struct SessionObs
{
    obs::SpanRing *spans = nullptr;
    uint64_t conn = 0; ///< connection id stamped into every span
    obs::Counter *requests = nullptr;       ///< server.requests
    obs::Counter *replays = nullptr;        ///< svc.streams
    obs::Counter *replayFailures = nullptr; ///< svc.stream_failures
    obs::Counter *transitions = nullptr;    ///< svc.transitions
    obs::Counter *salvaged = nullptr;       ///< svc.salvaged
    obs::Counter *recWireBytes = nullptr;   ///< rec.wire_bytes
    // Per-automaton families (labeled by automaton name). The session
    // resolves one series handle per family at REPLAY_BEGIN — a mutex
    // + map lookup once per stream — so the per-transition path stays
    // one relaxed fetch_add on the resolved handle.
    obs::LabeledCounter *replaysBy = nullptr;     ///< svc.streams_by_automaton
    obs::LabeledCounter *transitionsBy = nullptr; ///< svc.transitions_by_automaton
    obs::LabeledHistogram *replayMsBy = nullptr;  ///< svc.replay_ms_by_automaton
};

class Session
{
  public:
    Session(AutomatonRegistry &registry, LookupConfig lookup = {});

    /**
     * Feed wire bytes; append any replies to `out`.
     * @return false when the connection must close (after flushing out)
     */
    bool consume(const uint8_t *data, size_t len,
                 std::vector<uint8_t> &out);

    /** True once a HELLO has been accepted. */
    bool handshaken() const { return state != State::ExpectHello; }

    /**
     * True while a request is underway: a partial frame is buffered, or
     * a REPLAY_BEGIN .. REPLAY_END stream is open. The server's
     * per-request deadline (net/server.hh) is armed exactly while this
     * holds — a slowloris trickling one byte per idle-timeout keeps the
     * idle clock happy but not this one.
     *
     * An open RECORD stream deliberately does NOT count: a live
     * recording legitimately runs for as long as the recorded workload
     * does, so it is bounded per-chunk by the idle clock (and by the
     * partial-frame rule here) rather than by one request budget.
     */
    bool midRequest() const
    {
        return state == State::Streaming || !decoder.atBoundary();
    }

    /**
     * Provider for PONG's ServerStatus payload; the server installs
     * one reporting its pool and connection counters. Without a
     * provider PING answers all-zeros (the session alone has no
     * server-wide view).
     */
    void setStatusFn(std::function<ServerStatus()> fn)
    {
        statusFn = std::move(fn);
    }

    /**
     * Provider for the STATS reply body, keyed by the request's format
     * byte: 0 (or an empty payload) = JSON report, 1 = text report,
     * 2 = history JSON, 3 = flight-recorder JSON; unknown bytes are the
     * provider's to map (the server answers JSON). Without a provider
     * STATS answers an empty JSON object — again, the session alone
     * has no server-wide view.
     */
    void setStatsFn(std::function<std::string(uint8_t format)> fn)
    {
        statsFn = std::move(fn);
    }

    /** Attach metrics counters and the span ring (see SessionObs). */
    void setObs(const SessionObs &o) { ob = o; }

    /**
     * Route automaton resolution through a persistent store
     * (store/store.hh): REPLAY_BEGIN faults cold `.teac` images in by
     * mmap, PUT writes through to disk, EVICT drops residency only
     * (the file stays), and LIST reports cold names with resident
     * markers. Borrowed; nullptr (the default) keeps the RAM-only
     * registry behavior.
     */
    void setStore(AutomatonStore *s) { store = s; }

    /**
     * Enable the RECORD verb family: RECORD_BEGIN claims a name
     * through `svc` (one live recording per name, server-wide) and
     * streams chunks into the RecordingSession it returns. Borrowed;
     * without a recorder RECORD_BEGIN answers a non-fatal ERROR.
     * `defaultSwapInterval` applies when the client's RECORD_BEGIN
     * leaves the interval at 0.
     */
    void setRecorder(rec::RecordingService *svc,
                     uint32_t defaultSwapInterval = 4096)
    {
        recSvc = svc;
        recSwapInterval = defaultSwapInterval;
    }

    /**
     * Requests begun: frames handled, excluding REPLAY_CHUNK (which is
     * stream payload, not a request). Counted when handling *starts*,
     * so a STATS snapshot rendered mid-request includes the STATS
     * request itself — that makes the wire-visible count deterministic
     * for a scripted exchange (tests/test_obs.cc).
     */
    uint64_t requestsBegun() const { return reqBegun; }

    /** Requests answered: reply frames emitted, error replies included. */
    uint64_t requestsCompleted() const { return reqDone; }

    /**
     * Drain the spans accumulated since the last take — the per-phase
     * breakdown of the request(s) just handled. The server feeds these
     * to the slow-request log. Bounded (old spans are dropped first) so
     * an untaken buffer cannot grow without limit.
     */
    std::vector<obs::Span> takeRequestSpans();

    /** Streams replayed by this session (served + failed). */
    uint64_t replaysRun() const { return replays; }

    /**
     * Lower the per-stream accumulation cap (default
     * Wire::kMaxLogBytes). A testing seam: the fuzz tests prove the
     * cap trips without buffering gigabytes.
     */
    void setMaxLogBytes(size_t cap) { maxLogBytes = cap; }

  private:
    enum class State { ExpectHello, Ready, Streaming, Recording, Closed };

    bool onFrame(const Frame &frame, std::vector<uint8_t> &out);
    void handleRequest(const Frame &frame, std::vector<uint8_t> &out);
    void reply(std::vector<uint8_t> &out, MsgType type,
               const PayloadWriter &w);
    void replyError(std::vector<uint8_t> &out, bool fatal,
                    const std::string &msg);

    /** True when span tracing is wired up (skip clock reads if not). */
    bool traced() const { return ob.spans != nullptr; }

    /** Record a phase that started at `startNs` and just ended. */
    void pushSpan(obs::SpanPhase phase, uint64_t startNs);

    AutomatonRegistry &registry;
    AutomatonStore *store = nullptr; ///< optional disk-backed tier
    LookupConfig lookup;
    FrameDecoder decoder;
    std::function<ServerStatus()> statusFn;
    std::function<std::string(uint8_t format)> statsFn;
    SessionObs ob;
    State state = State::ExpectHello;
    uint64_t replays = 0;
    uint64_t reqBegun = 0;
    uint64_t reqDone = 0;
    std::vector<obs::Span> reqSpans; ///< since last takeRequestSpans()
    size_t maxLogBytes = Wire::kMaxLogBytes;

    // REPLAY_BEGIN .. REPLAY_END stream in progress. The snapshot
    // pins both the automaton and its registry-shared CompiledTea, so
    // the replay never compiles and eviction never invalidates it.
    AutomatonSnapshot stream;       ///< pinned snapshot
    std::vector<uint8_t> streamLog; ///< accumulated chunk bytes
    bool streamProfile = false;
    LookupConfig streamCfg;
    // Per-automaton series handles resolved at REPLAY_BEGIN (see
    // SessionObs); null when the family is unbound.
    obs::Counter *streamReplaysBy = nullptr;
    obs::Counter *streamTransitionsBy = nullptr;
    obs::Histogram *streamReplayMsBy = nullptr;

    // RECORD_BEGIN .. RECORD_END recording in progress. Destroying
    // the session mid-recording (disconnect) abandons it: the
    // RecordingSession destructor releases the name and publishes
    // nothing further — the last swapped snapshot stays installed.
    rec::RecordingService *recSvc = nullptr;
    uint32_t recSwapInterval = 4096;
    std::unique_ptr<rec::RecordingSession> recSession;
    /** This recording's chunks arrive as framed v2 delta chunks
     *  (negotiated via RecordFlags::kChunksV2 at RECORD_BEGIN). */
    bool recChunksV2 = false;
};

} // namespace tea

#endif // TEA_NET_SESSION_HH
