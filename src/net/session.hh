/**
 * @file
 * The server side of one tead connection, as a pure state machine.
 *
 * A Session consumes raw wire bytes and produces raw reply bytes; it
 * knows nothing about sockets. The server (net/server.hh) pumps it
 * from a connection's recv loop, and the fuzz tests
 * (tests/test_net_fuzz.cc) pump it with mutated byte streams directly
 * — the whole protocol surface is exercised in-process.
 *
 * Error containment is the contract:
 *
 * - framing failures (bad length, bad CRC) and protocol-order
 *   violations append one fatal ERROR frame and end the session;
 * - malformed or failing *requests* inside a well-framed stream
 *   (unknown automaton, corrupt TEA bytes, corrupt trace log, bad
 *   payload shape) append a non-fatal ERROR reply and keep the session
 *   alive — the frame boundary is still trustworthy;
 * - consume() itself never throws FatalError: every failure becomes an
 *   ERROR frame or a closed session. (PanicError still propagates —
 *   that is a library bug, not an input.)
 *
 * Replays run inline on the calling thread — the server executes
 * sessions on its worker pool, so a REPLAY_END does its work on a pool
 * worker, exactly like a ReplayService job. The automaton snapshot is
 * pinned at REPLAY_BEGIN, so a concurrent evict never invalidates the
 * stream being replayed (the registry's immutability contract).
 */

#ifndef TEA_NET_SESSION_HH
#define TEA_NET_SESSION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.hh"
#include "svc/registry.hh"
#include "svc/replay_service.hh"

namespace tea {

class Session
{
  public:
    Session(AutomatonRegistry &registry, LookupConfig lookup = {});

    /**
     * Feed wire bytes; append any replies to `out`.
     * @return false when the connection must close (after flushing out)
     */
    bool consume(const uint8_t *data, size_t len,
                 std::vector<uint8_t> &out);

    /** True once a HELLO has been accepted. */
    bool handshaken() const { return state != State::ExpectHello; }

    /**
     * True while a request is underway: a partial frame is buffered, or
     * a REPLAY_BEGIN .. REPLAY_END stream is open. The server's
     * per-request deadline (net/server.hh) is armed exactly while this
     * holds — a slowloris trickling one byte per idle-timeout keeps the
     * idle clock happy but not this one.
     */
    bool midRequest() const
    {
        return state == State::Streaming || !decoder.atBoundary();
    }

    /**
     * Provider for PONG's ServerStatus payload; the server installs
     * one reporting its pool and connection counters. Without a
     * provider PING answers all-zeros (the session alone has no
     * server-wide view).
     */
    void setStatusFn(std::function<ServerStatus()> fn)
    {
        statusFn = std::move(fn);
    }

    /** Streams replayed by this session (served + failed). */
    uint64_t replaysRun() const { return replays; }

    /**
     * Lower the per-stream accumulation cap (default
     * Wire::kMaxLogBytes). A testing seam: the fuzz tests prove the
     * cap trips without buffering gigabytes.
     */
    void setMaxLogBytes(size_t cap) { maxLogBytes = cap; }

  private:
    enum class State { ExpectHello, Ready, Streaming, Closed };

    bool onFrame(const Frame &frame, std::vector<uint8_t> &out);
    void handleRequest(const Frame &frame, std::vector<uint8_t> &out);
    static void reply(std::vector<uint8_t> &out, MsgType type,
                      const PayloadWriter &w);
    static void replyError(std::vector<uint8_t> &out, bool fatal,
                           const std::string &msg);

    AutomatonRegistry &registry;
    LookupConfig lookup;
    FrameDecoder decoder;
    std::function<ServerStatus()> statusFn;
    State state = State::ExpectHello;
    uint64_t replays = 0;
    size_t maxLogBytes = Wire::kMaxLogBytes;

    // REPLAY_BEGIN .. REPLAY_END stream in progress. The snapshot
    // pins both the automaton and its registry-shared CompiledTea, so
    // the replay never compiles and eviction never invalidates it.
    AutomatonSnapshot stream;       ///< pinned snapshot
    std::vector<uint8_t> streamLog; ///< accumulated chunk bytes
    bool streamProfile = false;
    LookupConfig streamCfg;
};

} // namespace tea

#endif // TEA_NET_SESSION_HH
