/**
 * @file
 * Deterministic fault injection for the tead wire stack.
 *
 * FaultySocket wraps a connected Socket and implements the same
 * read/write surface, injecting the faults a replay service meets in
 * the wild — short reads and writes, interrupted calls, artificial
 * latency, mid-frame connection resets, and byte corruption — at
 * per-call probabilities drawn from a seeded Xorshift64Star. Every
 * decision is a pure function of (seed, call sequence), so any chaos
 * failure replays exactly from its seed; no fault depends on the wall
 * clock or the scheduler.
 *
 * With no faults configured (a default FaultConfig, or a FaultySocket
 * never arm()ed) every call forwards straight to the wrapped Socket
 * behind a single branch — the pass-through overhead is unmeasurable
 * next to a syscall, which bench/net_throughput confirms.
 *
 * The injected faults split into two classes:
 *
 * - *benign* shapes the peer must absorb without noticing: short reads
 *   and writes fragment the byte stream across syscalls (frames arrive
 *   in pieces), simulated EINTR forces an internal retry, latency
 *   stretches the exchange. None of these may change any result.
 * - *destructive* faults that must surface as one typed, clean error:
 *   an injected reset closes the socket and throws FatalError exactly
 *   like a peer RST; corruption flips one byte so the far end's frame
 *   CRC (net/frame.hh) trips. tests/test_chaos.cc sweeps seeds and
 *   asserts every outcome is either a clean typed failure or a replay
 *   bit-identical to the local kernel.
 */

#ifndef TEA_NET_FAULT_HH
#define TEA_NET_FAULT_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "net/socket.hh"
#include "util/random.hh"

namespace tea {

/** The injectable fault classes, for per-kind accounting. */
enum class FaultKind : uint8_t {
    ShortRead = 0,
    ShortWrite,
    Eintr,
    Delay,
    Reset,
    Corrupt,
    // Nonblocking-only kinds (the event-loop core's I/O surface): the
    // blocking calls never roll these.
    NbEagainRead,   ///< recvNb reports wouldBlock without reading
    NbEagainWrite,  ///< sendNb reports wouldBlock without writing
    NbPartialWrite, ///< sendNb moves fewer bytes than offered
    SpuriousReady,  ///< the loop treats an un-ready fd as readable
};

constexpr size_t kFaultKinds = 10;

const char *faultKindName(FaultKind kind);

/**
 * Per-call fault probabilities, all 0 by default (no faults). A
 * probability applies independently at each recvSome()/sendAll() call.
 */
struct FaultConfig
{
    // Benign: reshape delivery, never change bytes or outcomes.
    double shortRead = 0.0;  ///< read fewer bytes than asked
    double shortWrite = 0.0; ///< split one write into two sends
    double eintr = 0.0;      ///< simulate an interrupted, retried call
    double delay = 0.0;      ///< sleep before the call
    uint32_t delayMaxMs = 2; ///< sleep duration bound (uniform 1..max)

    // Destructive: the call fails; the connection is gone or poisoned.
    double reset = 0.0;   ///< close the socket mid-call, throw
    double corrupt = 0.0; ///< flip one byte of the data in flight

    // Nonblocking (event-loop) faults, all benign by construction: the
    // readiness loop must absorb every one of these without changing
    // any result — EAGAIN storms and spurious wakeups are exactly what
    // epoll is allowed to do to a correct server. Rolled only by
    // recvNb/sendNb (and SpuriousReady by the loop itself); the
    // blocking calls, and therefore the blocking core, never see them.
    double nbEagainRead = 0.0;   ///< recvNb: spurious wouldBlock
    double nbEagainWrite = 0.0;  ///< sendNb: spurious wouldBlock
    double nbPartialWrite = 0.0; ///< sendNb: truncate the attempt
    double spuriousReady = 0.0;  ///< loop: phantom readable event

    /** True when any probability is nonzero. */
    bool any() const
    {
        return shortRead > 0 || shortWrite > 0 || eintr > 0 ||
               delay > 0 || reset > 0 || corrupt > 0 ||
               nbEagainRead > 0 || nbEagainWrite > 0 ||
               nbPartialWrite > 0 || spuriousReady > 0;
    }
};

/**
 * A Socket wrapper that injects configured faults deterministically.
 * Implements the Socket I/O surface, so TeaClient can hold one in
 * place of a bare Socket.
 */
class FaultySocket
{
  public:
    FaultySocket() = default;
    explicit FaultySocket(Socket s) : sock(std::move(s)) {}

    FaultySocket(Socket s, const FaultConfig &config, uint64_t seed)
        : sock(std::move(s))
    {
        arm(config, seed);
    }

    /** Enable fault injection; a no-fault config disarms. */
    void arm(const FaultConfig &config, uint64_t seed);

    /**
     * recvSome with faults: possible delay, simulated EINTR (a retried
     * wait), short read, injected reset (closes + throws FatalError),
     * or one received byte flipped.
     */
    size_t recvSome(void *buf, size_t len);

    /**
     * sendAll with faults: possible delay, short write (the data still
     * all goes out, in two sends — the peer sees a split frame),
     * injected reset, or one outgoing byte flipped (the peer's CRC
     * check trips).
     */
    void sendAll(const void *buf, size_t len);

    /**
     * recvNb with faults: an armed nbEagainRead probability turns the
     * attempt into a spurious wouldBlock (no bytes consumed) — the
     * EAGAIN storm a level-triggered loop must simply re-poll through.
     * Benign by construction: nothing is lost, delivery is only
     * deferred. Corrupt/reset faults apply as in recvSome.
     */
    Socket::IoResult recvNb(void *buf, size_t len);

    /**
     * sendNb with faults: nbEagainWrite defers the whole attempt
     * (wouldBlock, nothing sent); nbPartialWrite truncates it to a
     * random prefix — the loop's write queue must carry the remainder
     * across watermark boundaries. Corrupt faults poison one byte of
     * whatever does go out.
     */
    Socket::IoResult sendNb(const void *buf, size_t len);

    /**
     * A Bernoulli draw on SpuriousReady, for the event loop to consult
     * before treating a connection as readable without a poller event.
     * Always false when unarmed — and free: the rng does not advance.
     */
    bool rollSpuriousReady();

    void setNonBlocking(bool on) { sock.setNonBlocking(on); }
    int fd() const { return sock.fd(); }
    int waitReadable(int timeoutMs) { return sock.waitReadable(timeoutMs); }
    void shutdownRead() { sock.shutdownRead(); }
    void close() { sock.close(); }
    bool valid() const { return sock.valid(); }

    /** Raw bytes written through sendAll(), for wire accounting. */
    uint64_t bytesSent() const { return sent; }

    /** Raw bytes surfaced by recvSome(). */
    uint64_t bytesReceived() const { return received; }

    /** Faults injected so far (all classes), for tests and reports. */
    uint64_t faultsInjected() const { return injected; }

    /**
     * Faults injected of one kind — the per-kind breakdown the chaos
     * report and the `fault.*` metrics export (tests/test_obs.cc).
     */
    uint64_t
    faultsInjected(FaultKind kind) const
    {
        return byKind[static_cast<size_t>(kind)];
    }

  private:
    /** Bernoulli draw; false (and no rng advance) when disarmed. */
    bool roll(double p, FaultKind kind);
    void maybeDelay();
    [[noreturn]] void injectReset(const char *where);

    Socket sock;
    FaultConfig cfg;
    Xorshift64Star rng;
    bool armed = false;
    uint64_t sent = 0;
    uint64_t received = 0;
    uint64_t injected = 0;
    std::array<uint64_t, kFaultKinds> byKind{};
};

} // namespace tea

#endif // TEA_NET_FAULT_HH
