/**
 * @file
 * Minimal portable sockets for the replay server: endpoints, a
 * connected stream socket, and a listening socket.
 *
 * Two transports, chosen by the endpoint spec:
 *
 *   tcp:<host>:<port>   TCP; port 0 binds an ephemeral port (tests
 *                       read it back from Listener::local())
 *   unix:<path>         a Unix-domain stream socket
 *
 * Two I/O surfaces share the fd:
 *
 * - the blocking calls (recvSome/sendAll/waitReadable) used by the
 *   client and the thread-per-connection server core; errors surface
 *   as FatalError, EOF is an in-band return value (recvSome() == 0),
 *   because a peer hanging up is a normal protocol event;
 * - the nonblocking calls (recvNb/sendNb, after setNonBlocking) used
 *   by the event-loop server core (net/event_loop.hh): would-block and
 *   peer-gone are in-band IoResult fields — the readiness loop treats
 *   both as ordinary scheduling events — and only programming errors
 *   (EBADF and kin) still throw.
 */

#ifndef TEA_NET_SOCKET_HH
#define TEA_NET_SOCKET_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tea {

/** A parsed dialable/bindable address. */
struct Endpoint
{
    enum class Kind { Tcp, Unix };

    Kind kind = Kind::Tcp;
    std::string host; ///< TCP only
    uint16_t port = 0; ///< TCP only; 0 = ephemeral (bind only)
    std::string path; ///< Unix only

    /**
     * Parse "tcp:host:port" or "unix:/path".
     * @throws FatalError on any other shape.
     */
    static Endpoint parse(const std::string &spec);

    /** Render back to the canonical spec string. */
    std::string str() const;
};

/** A connected stream socket (RAII over the fd). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Socket &operator=(Socket &&o) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    /** Dial an endpoint. @throws FatalError when the connect fails. */
    static Socket connectTo(const Endpoint &ep);

    bool valid() const { return fd_ >= 0; }

    /**
     * Read up to `len` bytes.
     * @return bytes read; 0 means the peer closed the connection
     * @throws FatalError on socket errors
     */
    size_t recvSome(void *buf, size_t len);

    /**
     * Poll until the socket is readable (data, EOF, or an error —
     * recvSome() reports which) or `timeoutMs` elapses. Negative means
     * wait forever. The server's idle/deadline eviction builds on this.
     * @return 1 when readable, 0 on timeout
     * @throws FatalError on poll errors
     */
    int waitReadable(int timeoutMs);

    /** Write all of `len` bytes. @throws FatalError on errors. */
    void sendAll(const void *buf, size_t len);

    /**
     * One nonblocking I/O attempt's outcome. Exactly one of the three
     * cases holds: `n > 0` (bytes moved), `wouldBlock` (retry on the
     * next readiness event), or `closed` (EOF on read; EPIPE/RST on
     * write — the peer is gone either way).
     */
    struct IoResult
    {
        size_t n = 0;
        bool wouldBlock = false;
        bool closed = false;
    };

    /** Toggle O_NONBLOCK on the fd. @throws FatalError on fcntl errors. */
    void setNonBlocking(bool on);

    /**
     * One nonblocking read attempt (the fd must be nonblocking).
     * @throws FatalError only on programming errors (EBADF etc.);
     * resets from the peer come back as `closed`, not an exception —
     * the event loop retires the connection, it does not unwind.
     */
    IoResult recvNb(void *buf, size_t len);

    /** One nonblocking write attempt; may move fewer than `len` bytes. */
    IoResult sendNb(const void *buf, size_t len);

    /** The raw descriptor, for poller registration; -1 when invalid. */
    int fd() const { return fd_; }

    /**
     * Disable further receives: a thread blocked in recvSome() wakes
     * with EOF. Pending writes still flush — the server's graceful
     * shutdown uses this to let in-flight replies reach the client.
     */
    void shutdownRead();

    void close();

  private:
    int fd_ = -1;
};

/** A listening socket bound to an endpoint. */
class Listener
{
  public:
    Listener() = default;
    ~Listener() { release(); }

    Listener(Listener &&o) noexcept;
    Listener &operator=(Listener &&o) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind and listen. For Unix endpoints a stale socket file at the
     * path is removed first. @throws FatalError on bind failures.
     */
    static Listener open(const Endpoint &ep);

    /**
     * Accept one connection.
     * @return false once the listener has been closed (the server's
     *         shutdown path); transient accept errors are retried
     */
    bool accept(Socket &out);

    /**
     * One nonblocking accept attempt, for the event-loop core: the
     * caller must have registered fd() with its poller and put the
     * listener in nonblocking mode via setNonBlocking(). Exactly one of
     * the IoResult cases holds: `n == 1` (a connection landed in `out`),
     * `wouldBlock` (the backlog is drained — wait for the next
     * readiness event), or `closed` (the listener was close()d).
     * Transient per-connection errors (ECONNABORTED and kin) come back
     * as wouldBlock so the loop simply moves on.
     */
    Socket::IoResult acceptNb(Socket &out);

    /** Toggle O_NONBLOCK on the listening fd. */
    void setNonBlocking(bool on);

    /** The listening descriptor, for poller registration; -1 if unbound. */
    int fd() const { return fd_; }

    /** The bound endpoint, with any ephemeral TCP port resolved. */
    const Endpoint &local() const { return local_; }

    /**
     * Stop accepting: wakes a thread blocked in accept(), which then
     * returns false. Safe to call from another thread; the fd itself
     * is released by the destructor, after the accept thread joined,
     * so no thread ever polls a recycled descriptor.
     */
    void close();

  private:
    void release();

    int fd_ = -1;
    std::atomic<bool> closing_{false};
    Endpoint local_;
};

} // namespace tea

#endif // TEA_NET_SOCKET_HH
