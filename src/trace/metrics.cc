#include "trace/metrics.hh"

#include <set>

#include "util/logging.hh"

namespace tea {

TraceSetMetrics
computeMetrics(const TraceSet &traces)
{
    TraceSetMetrics m;
    m.traces = traces.size();
    std::set<std::pair<Addr, Addr>> distinct;
    for (const Trace &t : traces.all()) {
        m.tbbs += t.blocks.size();
        m.edges += t.edges.size();
        m.maxTraceBlocks = std::max(m.maxTraceBlocks, t.blocks.size());
        for (const TraceBasicBlock &b : t.blocks)
            distinct.insert({b.start, b.end});
        for (const Trace::Edge &e : t.edges) {
            if (e.to == 0) {
                ++m.cyclicTraces;
                break;
            }
        }
    }
    m.distinctBlocks = distinct.size();
    return m;
}

std::string
TraceSetMetrics::toString() const
{
    return strprintf("%zu traces, %zu TBBs over %zu blocks "
                     "(duplication %.2fx), %zu edges, largest %zu, "
                     "%zu cyclic",
                     traces, tbbs, distinctBlocks, duplicationFactor(),
                     edges, maxTraceBlocks, cyclicTraces);
}

} // namespace tea
