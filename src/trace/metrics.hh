/**
 * @file
 * Trace-set quality metrics.
 *
 * The companion CTT paper compares selection strategies by how much
 * code they duplicate; these metrics quantify that for any TraceSet:
 * the duplication factor (TBB instances per distinct guest block) is
 * exactly what separates TT from CTT on the blowup workloads, and the
 * static instruction footprint feeds the Table 1 intuition.
 */

#ifndef TEA_TRACE_METRICS_HH
#define TEA_TRACE_METRICS_HH

#include <cstddef>
#include <string>

#include "trace/trace.hh"

namespace tea {

/** Aggregate shape statistics of a trace set. */
struct TraceSetMetrics
{
    size_t traces = 0;
    size_t tbbs = 0;           ///< TBB instances (Definition 2)
    size_t distinctBlocks = 0; ///< distinct guest (start, end) blocks
    size_t edges = 0;
    size_t maxTraceBlocks = 0; ///< largest single trace
    size_t cyclicTraces = 0;   ///< traces with a back edge to TBB 0

    /** TBB instances per distinct block; 1.0 = no duplication. */
    double
    duplicationFactor() const
    {
        return distinctBlocks == 0
                   ? 0.0
                   : static_cast<double>(tbbs) /
                         static_cast<double>(distinctBlocks);
    }

    /** Mean TBBs per trace. */
    double
    avgTraceBlocks() const
    {
        return traces == 0 ? 0.0
                           : static_cast<double>(tbbs) /
                                 static_cast<double>(traces);
    }

    /** One-line summary for logs and tools. */
    std::string toString() const;
};

/** Compute the metrics for a trace set. */
TraceSetMetrics computeMetrics(const TraceSet &traces);

} // namespace tea

#endif // TEA_TRACE_METRICS_HH
