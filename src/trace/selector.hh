/**
 * @file
 * The trace-selection policy interface used by Algorithm 2.
 *
 * The paper's online recording state machine (Initial / Executing /
 * Creating) delegates its policy decisions — TriggerTraceRecording,
 * AddTBBToTrace, DoneTraceRecording, FinishTrace — to a strategy object.
 * Implementations provided: MRET (mret.hh), TT and CTT (tree.hh), and
 * MFET (mfet.hh).
 */

#ifndef TEA_TRACE_SELECTOR_HH
#define TEA_TRACE_SELECTOR_HH

#include <cstdint>

#include "trace/trace.hh"
#include "vm/block.hh"

namespace tea {

/**
 * What the recorder knows about the automaton position when it hands a
 * transition to the selector. Tree selectors use this to detect hot side
 * exits of existing traces.
 */
struct SelectorContext
{
    const TraceSet &traces;
    bool inTrace;     ///< state before the transition was a TBB state
    TraceId curTrace; ///< valid when inTrace
    uint32_t curTbb;  ///< valid when inTrace
    bool exitsTrace;  ///< the transition leaves the trace (to NTE/another)
};

/** Decision returned while in Algorithm 2's "Executing" state. */
enum class ExecutingAction
{
    Continue,       ///< stay in Executing
    StartRecording, ///< switch to Creating (TriggerTraceRecording fired)
    /**
     * The selector already has a complete trace (e.g. MFET builds one
     * from its edge profile, or a tree selector repairs a missing back
     * edge); the recorder should call finish() now and stay in
     * Executing.
     */
    FinishImmediately,
};

/** Decision returned while in Algorithm 2's "Creating" state. */
enum class CreatingAction
{
    Continue, ///< keep recording
    Finish,   ///< trace complete; call finish()
    Abort,    ///< recording failed; call finish() and discard
};

/** The outcome of a recording episode. */
struct RecordingResult
{
    enum class Kind
    {
        Aborted,     ///< nothing to install
        NewTrace,    ///< install trace as a brand new trace
        ExtendTrace, ///< replace the existing trace `extends` with trace
    };

    Kind kind = Kind::Aborted;
    Trace trace;
    TraceId extends = 0;
};

/**
 * A trace-selection strategy.
 *
 * The TeaRecorder calls onExecuting() for every block transition while no
 * recording is active, and onCreating() for every transition while one
 * is. Both receive the *completed* block (tr.from) and the address control
 * moved to (tr.toStart) — exactly the (Current, Next) pair of Algorithm 2.
 */
class TraceSelector
{
  public:
    virtual ~TraceSelector() = default;

    /** Human-readable strategy name ("mret", "tt", "ctt", "mfet"). */
    virtual const char *name() const = 0;

    /** The TraceKind this selector produces. */
    virtual TraceKind kind() const = 0;

    /** Observe a transition in the Executing state. */
    virtual ExecutingAction onExecuting(const BlockTransition &tr,
                                        const SelectorContext &ctx) = 0;

    /** Observe a transition in the Creating state. */
    virtual CreatingAction onCreating(const BlockTransition &tr,
                                      const SelectorContext &ctx) = 0;

    /**
     * Harvest the recording after Finish/Abort (or FinishImmediately).
     * @param traces the current trace set (tree selectors read the trace
     *               they are extending from it)
     */
    virtual RecordingResult finish(const TraceSet &traces) = 0;

    /** Drop all counters and in-progress state. */
    virtual void reset() = 0;
};

/** Tunables shared by the bundled selectors. */
struct SelectorConfig
{
    /** Executions of a candidate head before recording starts. */
    uint32_t hotThreshold = 50;

    /** Maximum TBBs in an MRET/MFET trace. */
    uint32_t maxBlocks = 64;

    /** Maximum TBBs recorded for one trace-tree path. */
    uint32_t maxPathBlocks = 256;

    /** Side-exit executions before a tree extension is recorded. */
    uint32_t extensionThreshold = 50;

    /** Maximum total TBBs in one trace tree. */
    uint32_t maxTreeBlocks = 4096;

    /** Minimum edge frequency ratio MFET follows (vs head count). */
    double mfetMinEdgeRatio = 0.1;
};

} // namespace tea

#endif // TEA_TRACE_SELECTOR_HH
