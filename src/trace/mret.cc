#include "trace/mret.hh"

#include "util/logging.hh"

namespace tea {

MretSelector::MretSelector(SelectorConfig config) : cfg(config) {}

bool
MretSelector::isBackEdge(const BlockTransition &tr)
{
    if (tr.toStart == kNoAddr)
        return false;
    bool taken = tr.kind == EdgeKind::BranchTaken ||
                 tr.kind == EdgeKind::Jump;
    return taken && tr.toStart <= tr.from.end;
}

ExecutingAction
MretSelector::onExecuting(const BlockTransition &tr,
                          const SelectorContext &ctx)
{
    // NET's two kinds of potential trace heads: backward-branch targets
    // and the targets of exits from already-recorded traces.
    bool candidate = isBackEdge(tr) ||
                     (ctx.inTrace && ctx.exitsTrace &&
                      tr.toStart != kNoAddr);
    if (!candidate)
        return ExecutingAction::Continue;
    Addr target = tr.toStart;
    if (ctx.traces.hasEntry(target))
        return ExecutingAction::Continue; // already have this trace
    if (++counters[target] < cfg.hotThreshold)
        return ExecutingAction::Continue;

    counters[target] = 0; // restart the count if recording aborts
    head = target;
    pending.clear();
    closesCyclically = false;
    return ExecutingAction::StartRecording;
}

CreatingAction
MretSelector::onCreating(const BlockTransition &tr,
                         const SelectorContext &ctx)
{
    TEA_ASSERT(head != kNoAddr, "onCreating without StartRecording");

    // AddTBBToTrace(Current, Next): the block that just finished.
    TraceBasicBlock tbb;
    tbb.start = tr.from.start;
    tbb.end = tr.from.end;
    tbb.loopHeader = tr.from.start == head;
    pending.push_back(tbb);

    // DoneTraceRecording(Current, Next).
    if (tr.toStart == kNoAddr)
        return CreatingAction::Finish; // program halted mid-recording
    if (tr.toStart == head) {
        closesCyclically = true;
        return CreatingAction::Finish;
    }
    if (pending.size() >= cfg.maxBlocks)
        return CreatingAction::Finish;
    if (isBackEdge(tr))
        return CreatingAction::Finish; // a backward branch ends the tail
    if (ctx.traces.hasEntry(tr.toStart))
        return CreatingAction::Finish; // fell into an existing trace head
    return CreatingAction::Continue;
}

RecordingResult
MretSelector::finish(const TraceSet &)
{
    RecordingResult result;
    if (pending.empty() || pending[0].start != head) {
        // Recording never reached the head (e.g. an immediate abort).
        head = kNoAddr;
        pending.clear();
        return result;
    }

    Trace trace;
    trace.kind = TraceKind::Superblock;
    trace.blocks = pending;
    for (uint32_t i = 0; i + 1 < trace.blocks.size(); ++i)
        trace.edges.push_back({i, i + 1});
    if (closesCyclically) {
        trace.edges.push_back(
            {static_cast<uint32_t>(trace.blocks.size() - 1), 0});
    }

    result.kind = RecordingResult::Kind::NewTrace;
    result.trace = std::move(trace);
    head = kNoAddr;
    pending.clear();
    closesCyclically = false;
    return result;
}

void
MretSelector::reset()
{
    counters.clear();
    head = kNoAddr;
    pending.clear();
    closesCyclically = false;
}

} // namespace tea
