/**
 * @file
 * Trace-tree selection: TT (Gal & Franz) and CTT (Porto et al. '09).
 *
 * A trace tree is anchored at a loop header. The first recording captures
 * one path around the loop ("trunk"); later, when execution keeps leaving
 * the tree through the same side exit, a new path is recorded from the
 * exit back to the anchor and grafted onto the tree. Because every path
 * runs all the way back to the anchor, basic blocks get duplicated across
 * paths — the TT memory blowup of the paper's Table 1.
 *
 * CTT differs in one rule: while recording a path, a branch to any *loop
 * header already on the current path* closes the path right there with a
 * back edge to that header's TBB, instead of duplicating the rest of the
 * loop body. Nested loops therefore stop unrolling into the tree.
 */

#ifndef TEA_TRACE_TREE_HH
#define TEA_TRACE_TREE_HH

#include <map>
#include <tuple>
#include <unordered_map>

#include "trace/selector.hh"

namespace tea {

/** Shared implementation of the TT and CTT selectors. */
class TreeSelector : public TraceSelector
{
  public:
    TreeSelector(bool compact, SelectorConfig config);

    const char *name() const override { return compact ? "ctt" : "tt"; }
    TraceKind
    kind() const override
    {
        return compact ? TraceKind::CompactTraceTree : TraceKind::TraceTree;
    }

    ExecutingAction onExecuting(const BlockTransition &tr,
                                const SelectorContext &ctx) override;
    CreatingAction onCreating(const BlockTransition &tr,
                              const SelectorContext &ctx) override;
    RecordingResult finish(const TraceSet &traces) override;
    void reset() override;

  private:
    /** What the in-progress recording will produce. */
    enum class Mode { Idle, Trunk, Extension };

    /**
     * CTT: find a loop-header TBB on the current path whose start is
     * addr. @return closure index: >= 0 in pending (offset by extension
     * base later), or -2 - k for index k in the existing trace's
     * root-path, or -1 when none.
     */
    int findPathHeader(Addr addr, const SelectorContext &ctx) const;

    const bool compact;
    SelectorConfig cfg;

    std::unordered_map<Addr, uint32_t> anchorCounters;
    /** (trace, tbb, destination) -> side-exit executions. */
    std::map<std::tuple<TraceId, uint32_t, Addr>, uint32_t> exitCounters;

    // in-progress recording
    Mode mode = Mode::Idle;
    Addr anchor = kNoAddr;  ///< the tree's root address
    Addr head = kNoAddr;    ///< first block of the path being recorded
    TraceId extendId = 0;   ///< valid in Extension mode
    uint32_t extendFrom = 0; ///< TBB the side exit left from
    std::vector<uint32_t> extendRootPath; ///< TBB indices root..extendFrom
    std::vector<TraceBasicBlock> pending;
    bool nextIsLoopHeader = false;
    int closeTo = -1;    ///< resolved closure target (see finish())
    bool aborted = false;
};

/** The TT selector. */
class TtSelector : public TreeSelector
{
  public:
    explicit TtSelector(SelectorConfig config = {})
        : TreeSelector(false, config)
    {
    }
};

/** The CTT selector. */
class CttSelector : public TreeSelector
{
  public:
    explicit CttSelector(SelectorConfig config = {})
        : TreeSelector(true, config)
    {
    }
};

} // namespace tea

#endif // TEA_TRACE_TREE_HH
