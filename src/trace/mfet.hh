/**
 * @file
 * MFET (Most Frequently Executed Tail) trace selection.
 *
 * The paper's related work (§5) contrasts MRET with MFET [Cifuentes &
 * van Emmerik]: MFET keeps full edge profiles and, when a loop head gets
 * hot, selects the *most frequent* successor path rather than the most
 * recent one. It pays more profiling overhead but is immune to unlucky
 * recording iterations. Provided as an extension; all benches can run it.
 */

#ifndef TEA_TRACE_MFET_HH
#define TEA_TRACE_MFET_HH

#include <unordered_map>

#include "trace/selector.hh"

namespace tea {

/** The MFET selector. */
class MfetSelector : public TraceSelector
{
  public:
    explicit MfetSelector(SelectorConfig config = {});

    const char *name() const override { return "mfet"; }
    TraceKind kind() const override { return TraceKind::FrequentPath; }

    ExecutingAction onExecuting(const BlockTransition &tr,
                                const SelectorContext &ctx) override;
    CreatingAction onCreating(const BlockTransition &tr,
                              const SelectorContext &ctx) override;
    RecordingResult finish(const TraceSet &traces) override;
    void reset() override;

  private:
    struct BlockProfile
    {
        Addr end = kNoAddr;
        uint64_t execs = 0;
        std::unordered_map<Addr, uint64_t> succs;
    };

    SelectorConfig cfg;
    std::unordered_map<Addr, BlockProfile> profile;
    std::unordered_map<Addr, uint32_t> counters;
    Addr head = kNoAddr;
};

} // namespace tea

#endif // TEA_TRACE_MFET_HH
