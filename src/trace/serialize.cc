#include "trace/serialize.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

namespace {

constexpr const char *kTextMagic = "teatraces";
constexpr int kTextVersion = 1;
constexpr uint32_t kBinMagic = 0x54454154; // "TEAT"
constexpr uint32_t kBinVersion = 1;

TraceKind
kindFromName(const std::string &name)
{
    for (int k = 0; k < 4; ++k) {
        auto kind = static_cast<TraceKind>(k);
        if (name == traceKindName(kind))
            return kind;
    }
    fatal("unknown trace kind '%s'", name.c_str());
}

} // namespace

std::string
saveTracesText(const TraceSet &traces)
{
    std::ostringstream os;
    os << kTextMagic << " " << kTextVersion << " " << traces.size() << "\n";
    for (const Trace &t : traces.all()) {
        os << "trace " << traceKindName(t.kind) << "\n";
        for (const TraceBasicBlock &b : t.blocks) {
            os << "  tbb " << hex32(b.start) << " " << hex32(b.end) << " "
               << (b.loopHeader ? 1 : 0) << "\n";
        }
        for (const Trace::Edge &e : t.edges)
            os << "  edge " << e.from << " " << e.to << "\n";
        os << "endtrace\n";
    }
    return os.str();
}

TraceSet
loadTracesText(const std::string &text)
{
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    auto next_line = [&](bool required) -> bool {
        while (std::getline(stream, line)) {
            ++line_no;
            line = trim(line);
            if (!line.empty())
                return true;
        }
        if (required)
            fatal("traces: unexpected end of input at line %d", line_no);
        return false;
    };

    if (!next_line(true))
        fatal("traces: empty input");
    auto header = splitWhitespace(line);
    if (header.size() != 3 || header[0] != kTextMagic)
        fatal("traces: bad header '%s'", line.c_str());
    int64_t version, count;
    if (!parseInt(header[1], version) || version != kTextVersion)
        fatal("traces: unsupported version '%s'", header[1].c_str());
    if (!parseInt(header[2], count) || count < 0)
        fatal("traces: bad trace count");

    TraceSet set;
    for (int64_t i = 0; i < count; ++i) {
        next_line(true);
        auto fields = splitWhitespace(line);
        if (fields.size() != 2 || fields[0] != "trace")
            fatal("traces line %d: expected 'trace <kind>'", line_no);
        Trace t;
        t.kind = kindFromName(fields[1]);
        for (;;) {
            next_line(true);
            fields = splitWhitespace(line);
            if (fields[0] == "endtrace")
                break;
            if (fields[0] == "tbb") {
                int64_t start, end, header_flag;
                if (fields.size() != 4 || !parseInt(fields[1], start) ||
                    !parseInt(fields[2], end) ||
                    !parseInt(fields[3], header_flag))
                    fatal("traces line %d: bad tbb", line_no);
                t.blocks.push_back({static_cast<Addr>(start),
                                    static_cast<Addr>(end),
                                    header_flag != 0});
            } else if (fields[0] == "edge") {
                int64_t from, to;
                if (fields.size() != 3 || !parseInt(fields[1], from) ||
                    !parseInt(fields[2], to))
                    fatal("traces line %d: bad edge", line_no);
                t.edges.push_back({static_cast<uint32_t>(from),
                                   static_cast<uint32_t>(to)});
            } else {
                fatal("traces line %d: unexpected '%s'", line_no,
                      fields[0].c_str());
            }
        }
        set.add(std::move(t));
    }
    return set;
}

namespace {

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
get32(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    if (cursor + 4 > bytes.size())
        fatal("traces: truncated binary input");
    uint32_t v = static_cast<uint32_t>(bytes[cursor]) |
                 (static_cast<uint32_t>(bytes[cursor + 1]) << 8) |
                 (static_cast<uint32_t>(bytes[cursor + 2]) << 16) |
                 (static_cast<uint32_t>(bytes[cursor + 3]) << 24);
    cursor += 4;
    return v;
}

} // namespace

std::vector<uint8_t>
saveTracesBinary(const TraceSet &traces)
{
    std::vector<uint8_t> out;
    put32(out, kBinMagic);
    put32(out, kBinVersion);
    put32(out, static_cast<uint32_t>(traces.size()));
    for (const Trace &t : traces.all()) {
        put32(out, static_cast<uint32_t>(t.kind));
        put32(out, static_cast<uint32_t>(t.blocks.size()));
        put32(out, static_cast<uint32_t>(t.edges.size()));
        for (const TraceBasicBlock &b : t.blocks) {
            put32(out, b.start);
            put32(out, b.end);
            put32(out, b.loopHeader ? 1 : 0);
        }
        for (const Trace::Edge &e : t.edges) {
            put32(out, e.from);
            put32(out, e.to);
        }
    }
    return out;
}

TraceSet
loadTracesBinary(const std::vector<uint8_t> &bytes)
{
    size_t cursor = 0;
    if (get32(bytes, cursor) != kBinMagic)
        fatal("traces: bad binary magic");
    if (get32(bytes, cursor) != kBinVersion)
        fatal("traces: unsupported binary version");
    uint32_t count = get32(bytes, cursor);
    TraceSet set;
    for (uint32_t i = 0; i < count; ++i) {
        Trace t;
        uint32_t kind = get32(bytes, cursor);
        if (kind > 3)
            fatal("traces: bad kind %u", kind);
        t.kind = static_cast<TraceKind>(kind);
        uint32_t nblocks = get32(bytes, cursor);
        uint32_t nedges = get32(bytes, cursor);
        // Plausibility before reserving: each block/edge needs bytes.
        if (static_cast<uint64_t>(nblocks) * 12 > bytes.size() ||
            static_cast<uint64_t>(nedges) * 8 > bytes.size())
            fatal("traces: implausible counts (%u blocks, %u edges)",
                  nblocks, nedges);
        t.blocks.reserve(nblocks);
        for (uint32_t j = 0; j < nblocks; ++j) {
            TraceBasicBlock b;
            b.start = get32(bytes, cursor);
            b.end = get32(bytes, cursor);
            b.loopHeader = get32(bytes, cursor) != 0;
            t.blocks.push_back(b);
        }
        t.edges.reserve(nedges);
        for (uint32_t j = 0; j < nedges; ++j) {
            uint32_t from = get32(bytes, cursor);
            uint32_t to = get32(bytes, cursor);
            t.edges.push_back({from, to});
        }
        set.add(std::move(t));
    }
    return set;
}

void
saveTracesFile(const TraceSet &traces, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << saveTracesText(traces);
    if (!out)
        fatal("error writing '%s'", path.c_str());
}

TraceSet
loadTracesFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return loadTracesText(buf.str());
}

} // namespace tea
