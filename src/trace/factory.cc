#include "trace/factory.hh"

#include "trace/mfet.hh"
#include "trace/mret.hh"
#include "trace/tree.hh"
#include "util/logging.hh"

namespace tea {

std::unique_ptr<TraceSelector>
makeSelector(const std::string &name, SelectorConfig config)
{
    if (name == "mret")
        return std::make_unique<MretSelector>(config);
    if (name == "tt")
        return std::make_unique<TtSelector>(config);
    if (name == "ctt")
        return std::make_unique<CttSelector>(config);
    if (name == "mfet")
        return std::make_unique<MfetSelector>(config);
    fatal("unknown trace selector '%s'", name.c_str());
}

std::vector<std::string>
selectorNames()
{
    return {"mret", "ctt", "tt", "mfet"};
}

} // namespace tea
