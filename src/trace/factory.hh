/**
 * @file
 * Construction of trace selectors by name.
 */

#ifndef TEA_TRACE_FACTORY_HH
#define TEA_TRACE_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/selector.hh"

namespace tea {

/**
 * Build a selector: "mret", "tt", "ctt" or "mfet".
 * @throws FatalError for unknown names.
 */
std::unique_ptr<TraceSelector> makeSelector(const std::string &name,
                                            SelectorConfig config = {});

/** Names accepted by makeSelector, in the paper's Table 1 order. */
std::vector<std::string> selectorNames();

} // namespace tea

#endif // TEA_TRACE_FACTORY_HH
