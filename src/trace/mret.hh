/**
 * @file
 * MRET (Most Recently Executed Tail) trace selection.
 *
 * The Dynamo / NET strategy [Bala et al. '00, Duesterwald & Bala '00]:
 * potential trace heads are the targets of backward taken branches plus
 * the targets of *exits from existing traces* (Dynamo's exit-stub
 * counters); when a head's counter crosses the hot threshold, the blocks
 * executed next are recorded verbatim as a superblock until the
 * recording closes back on its head, hits another backward branch,
 * reaches an existing trace, or overflows.
 */

#ifndef TEA_TRACE_MRET_HH
#define TEA_TRACE_MRET_HH

#include <unordered_map>

#include "trace/selector.hh"

namespace tea {

/** The MRET selector. */
class MretSelector : public TraceSelector
{
  public:
    explicit MretSelector(SelectorConfig config = {});

    const char *name() const override { return "mret"; }
    TraceKind kind() const override { return TraceKind::Superblock; }

    ExecutingAction onExecuting(const BlockTransition &tr,
                                const SelectorContext &ctx) override;
    CreatingAction onCreating(const BlockTransition &tr,
                              const SelectorContext &ctx) override;
    RecordingResult finish(const TraceSet &traces) override;
    void reset() override;

    /** True when the transition is a backward taken branch. */
    static bool isBackEdge(const BlockTransition &tr);

  private:
    SelectorConfig cfg;
    std::unordered_map<Addr, uint32_t> counters;

    // in-progress recording
    Addr head = kNoAddr;
    std::vector<TraceBasicBlock> pending;
    bool closesCyclically = false;
};

} // namespace tea

#endif // TEA_TRACE_MRET_HH
