/**
 * @file
 * Trace duplication (the "hard option" of the paper's §2, Figure 1(d)).
 *
 * To re-profile a trace that an optimizer wants to unroll by a factor k,
 * the trace cannot simply be unrolled in the automaton — the unrolled
 * body has no counterpart in the executable, so the DFA would find no
 * matching program counters. Instead the trace is *duplicated*: the DFA
 * gets k copies of the body chained cyclically, each copy's TBBs being
 * distinct states over the same addresses. Replaying then attributes
 * iteration i's profile to copy (i mod k) — exactly the per-copy labels
 * the unrolled code will need.
 */

#ifndef TEA_TRACE_DUPLICATE_HH
#define TEA_TRACE_DUPLICATE_HH

#include "trace/trace.hh"

namespace tea {

/**
 * Duplicate a cyclic superblock trace `factor` times.
 *
 * The input must be a superblock whose last block loops back to its
 * head (the common MRET loop trace). The result contains factor copies
 * of the body; copy j's last block feeds copy (j+1) mod factor's head.
 *
 * @throws FatalError when the trace is not a cyclic superblock or
 *         factor < 2.
 */
Trace duplicateTrace(const Trace &trace, unsigned factor);

} // namespace tea

#endif // TEA_TRACE_DUPLICATE_HH
