/**
 * @file
 * The trace model: Definitions 1-3 of the paper.
 *
 * - A *Basic Block* (BB) is a single-entry single-exit instruction
 *   sequence, identified here by its (start, end) instruction addresses.
 * - A *Trace Basic Block* (TBB) is an **instance** of a BB inside a trace;
 *   the same BB occurring in two traces (or twice in one trace tree)
 *   yields two distinct TBBs ($$T1.next vs $$T2.next in Figure 2).
 * - A *Trace* is a collection of TBBs plus the control-flow edges between
 *   them — general enough to cover MRET superblocks and (compact) trace
 *   trees.
 */

#ifndef TEA_TRACE_TRACE_HH
#define TEA_TRACE_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/types.hh"

namespace tea {

/** Identifies a trace within a TraceSet. */
using TraceId = uint32_t;

/** Which selection strategy produced a trace. */
enum class TraceKind : uint8_t
{
    Superblock,       ///< MRET / NET linear trace
    TraceTree,        ///< TT (Gal & Franz)
    CompactTraceTree, ///< CTT (Porto et al.)
    FrequentPath,     ///< MFET-style most-frequent path
};

/** Name of a trace kind ("superblock", ...). */
const char *traceKindName(TraceKind kind);

/**
 * One TBB: an instance of the basic block [start, end] inside a trace.
 */
struct TraceBasicBlock
{
    Addr start;          ///< first instruction address
    Addr end;            ///< last instruction address
    bool loopHeader = false; ///< recorded as a backward-branch target

    bool operator==(const TraceBasicBlock &) const = default;
};

/**
 * A recorded hot trace.
 *
 * Blocks are indexed 0..n-1 with block 0 as the trace entry. Edges are
 * intra-trace control flow; the DFA transition label of edge (u, v) is
 * implicitly blocks[v].start — the program counter that triggers it.
 */
struct Trace
{
    /** An intra-trace control-flow edge between TBB indices. */
    struct Edge
    {
        uint32_t from;
        uint32_t to;

        bool operator==(const Edge &) const = default;
    };

    TraceId id = 0;
    TraceKind kind = TraceKind::Superblock;
    std::vector<TraceBasicBlock> blocks;
    std::vector<Edge> edges;

    /** The trace's entry address (start of TBB 0). */
    Addr entry() const;

    /** Total static instruction count over all TBBs. */
    uint64_t staticInsnCount(
        const std::function<uint64_t(Addr, Addr)> &counter) const;

    /** True when some TBB is the block [start, end]. */
    bool containsBlock(Addr start, Addr end) const;

    /** Successor TBB of from under label addr, or -1 when none. */
    int successorOn(uint32_t from, Addr label) const;

    /** Validate indices and determinism; throws on corruption. */
    void validate() const;
};

/**
 * The program's set of recorded traces.
 *
 * Keeps an entry-address index: at most one trace may be entered at a
 * given address (matching both StarDBT's dispatch table and TEA's NTE
 * out-transitions, which must stay deterministic).
 */
class TraceSet
{
  public:
    /** Add a trace, assigning it the next TraceId. @return its id. */
    TraceId add(Trace trace);

    /** Replace an existing trace (used when a trace tree is extended). */
    void replace(TraceId id, Trace trace);

    /** Number of traces. */
    size_t size() const { return traces.size(); }

    bool empty() const { return traces.empty(); }

    /** Trace by id. */
    const Trace &at(TraceId id) const;

    /** All traces. */
    const std::vector<Trace> &all() const { return traces; }

    /** Trace whose entry is addr, or -1. */
    int traceAtEntry(Addr addr) const;

    /** True when some trace starts at addr. */
    bool hasEntry(Addr addr) const { return traceAtEntry(addr) >= 0; }

    /** Total number of TBBs across all traces. */
    size_t totalBlocks() const;

    /** Total number of intra-trace edges. */
    size_t totalEdges() const;

    /** Drop everything. */
    void clear();

  private:
    std::vector<Trace> traces;
    std::unordered_map<Addr, TraceId> entryIndex;
};

} // namespace tea

#endif // TEA_TRACE_TRACE_HH
