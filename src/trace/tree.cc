#include "trace/tree.hh"

#include "trace/mret.hh"
#include "util/logging.hh"

namespace tea {

TreeSelector::TreeSelector(bool is_compact, SelectorConfig config)
    : compact(is_compact), cfg(config)
{
}

int
TreeSelector::findPathHeader(Addr addr, const SelectorContext &ctx) const
{
    // Current path first (later copies shadow earlier ones is irrelevant;
    // the first match keeps the closure as tight as possible).
    for (size_t i = 0; i < pending.size(); ++i)
        if (pending[i].loopHeader && pending[i].start == addr)
            return static_cast<int>(i);
    if (mode == Mode::Extension) {
        const Trace &t = ctx.traces.at(extendId);
        for (uint32_t idx : extendRootPath)
            if (t.blocks[idx].loopHeader && t.blocks[idx].start == addr)
                return -2 - static_cast<int>(idx);
    }
    return -1;
}

ExecutingAction
TreeSelector::onExecuting(const BlockTransition &tr,
                          const SelectorContext &ctx)
{
    // Hot side exits of one of our trees grow the tree.
    if (ctx.inTrace && ctx.exitsTrace && tr.toStart != kNoAddr) {
        const Trace &t = ctx.traces.at(ctx.curTrace);
        // Exits into *other* traces don't grow this tree, but an exit to
        // the tree's own anchor is the repairable missing-back-edge case.
        bool to_foreign_entry = ctx.traces.hasEntry(tr.toStart) &&
                                tr.toStart != t.entry();
        if (t.kind == kind() && t.blocks.size() < cfg.maxTreeBlocks &&
            !to_foreign_entry) {
            auto key = std::make_tuple(ctx.curTrace, ctx.curTbb, tr.toStart);
            if (++exitCounters[key] >= cfg.extensionThreshold) {
                exitCounters[key] = 0;
                anchor = t.entry();
                extendId = ctx.curTrace;
                extendFrom = ctx.curTbb;
                pending.clear();
                closeTo = -1;
                aborted = false;
                // The extension head is a loop header when it was
                // reached by a backward taken branch (CTT closes at it).
                nextIsLoopHeader = MretSelector::isBackEdge(tr);

                // Root path of the exit TBB (tree edges go low -> high).
                extendRootPath.clear();
                std::vector<int> parent(t.blocks.size(), -1);
                for (const Trace::Edge &e : t.edges)
                    if (e.to > e.from && parent[e.to] < 0)
                        parent[e.to] = static_cast<int>(e.from);
                for (int n = static_cast<int>(extendFrom); n >= 0;
                     n = parent[n]) {
                    extendRootPath.push_back(static_cast<uint32_t>(n));
                    if (n == 0)
                        break;
                }

                if (tr.toStart == anchor) {
                    // The tree is only missing a back edge to its root;
                    // repair it without recording any path.
                    mode = Mode::Extension;
                    closeTo = -2; // existing index 0
                    return ExecutingAction::FinishImmediately;
                }
                mode = Mode::Extension;
                head = tr.toStart;
                return ExecutingAction::StartRecording;
            }
        }
        return ExecutingAction::Continue;
    }

    // Cold code: detect hot loop anchors exactly like MRET does.
    if (!MretSelector::isBackEdge(tr))
        return ExecutingAction::Continue;
    Addr target = tr.toStart;
    if (ctx.traces.hasEntry(target))
        return ExecutingAction::Continue;
    if (++anchorCounters[target] < cfg.hotThreshold)
        return ExecutingAction::Continue;

    anchorCounters[target] = 0;
    mode = Mode::Trunk;
    anchor = target;
    head = target;
    pending.clear();
    extendRootPath.clear();
    closeTo = -1;
    aborted = false;
    nextIsLoopHeader = true; // the anchor is a backward-branch target
    return ExecutingAction::StartRecording;
}

CreatingAction
TreeSelector::onCreating(const BlockTransition &tr,
                         const SelectorContext &ctx)
{
    TEA_ASSERT(mode != Mode::Idle, "onCreating while idle");

    TraceBasicBlock tbb;
    tbb.start = tr.from.start;
    tbb.end = tr.from.end;
    tbb.loopHeader = nextIsLoopHeader;
    pending.push_back(tbb);
    nextIsLoopHeader = MretSelector::isBackEdge(tr);

    if (tr.toStart == kNoAddr) {
        aborted = true;
        return CreatingAction::Abort;
    }
    if (tr.toStart == anchor) {
        closeTo = mode == Mode::Trunk ? 0 : -2;
        return CreatingAction::Finish;
    }
    if (compact) {
        int h = findPathHeader(tr.toStart, ctx);
        if (h != -1) {
            closeTo = h;
            return CreatingAction::Finish;
        }
    }
    if (pending.size() >= cfg.maxPathBlocks) {
        aborted = true;
        return CreatingAction::Abort;
    }
    // Note: unlike MRET, tree recording continues straight through other
    // traces' entry points — a trace tree's paths always run back to
    // their own anchor, duplicating whatever inner loops they cross.
    // This is precisely the unrolling that makes TT trees explode on
    // data-dependent inner loops while CTT (the findPathHeader closure
    // above) stays compact.
    return CreatingAction::Continue;
}

RecordingResult
TreeSelector::finish(const TraceSet &traces)
{
    RecordingResult result;
    Mode done_mode = mode;
    mode = Mode::Idle;

    if (aborted || done_mode == Mode::Idle) {
        pending.clear();
        return result;
    }

    if (done_mode == Mode::Trunk) {
        if (pending.empty() || pending[0].start != head ||
            pending.size() > cfg.maxTreeBlocks) {
            pending.clear();
            return result;
        }
        Trace trace;
        trace.kind = kind();
        trace.blocks = pending;
        for (uint32_t i = 0; i + 1 < trace.blocks.size(); ++i)
            trace.edges.push_back({i, i + 1});
        TEA_ASSERT(closeTo >= 0, "trunk finished without a closure");
        trace.edges.push_back(
            {static_cast<uint32_t>(trace.blocks.size() - 1),
             static_cast<uint32_t>(closeTo)});
        result.kind = RecordingResult::Kind::NewTrace;
        result.trace = std::move(trace);
        pending.clear();
        return result;
    }

    // Extension: graft the recorded path (possibly empty for a pure
    // back-edge repair) onto a copy of the existing tree.
    auto existing_index = [&](int encoded) {
        return static_cast<uint32_t>(-(encoded + 2));
    };
    Trace merged = traces.at(extendId);
    if (pending.empty()) {
        TEA_ASSERT(closeTo <= -2, "empty extension without a repair edge");
        uint32_t target = existing_index(closeTo);
        if (merged.successorOn(extendFrom, merged.blocks[target].start) >= 0)
            return result; // the edge appeared meanwhile; nothing to do
        merged.edges.push_back({extendFrom, target});
    } else {
        if (pending[0].start != head || closeTo == -1)
            return result;
        if (merged.blocks.size() + pending.size() > cfg.maxTreeBlocks) {
            pending.clear();
            return result;
        }
        if (merged.successorOn(extendFrom, head) >= 0) {
            pending.clear();
            return result; // raced with ourselves; keep the tree as is
        }
        uint32_t base = static_cast<uint32_t>(merged.blocks.size());
        merged.blocks.insert(merged.blocks.end(), pending.begin(),
                             pending.end());
        merged.edges.push_back({extendFrom, base});
        for (uint32_t i = 0; i + 1 < pending.size(); ++i)
            merged.edges.push_back({base + i, base + i + 1});
        uint32_t last = base + static_cast<uint32_t>(pending.size()) - 1;
        uint32_t target = closeTo >= 0
                              ? base + static_cast<uint32_t>(closeTo)
                              : existing_index(closeTo);
        merged.edges.push_back({last, target});
        pending.clear();
    }
    result.kind = RecordingResult::Kind::ExtendTrace;
    result.extends = extendId;
    result.trace = std::move(merged);
    return result;
}

void
TreeSelector::reset()
{
    anchorCounters.clear();
    exitCounters.clear();
    mode = Mode::Idle;
    pending.clear();
    extendRootPath.clear();
    closeTo = -1;
    aborted = false;
}

} // namespace tea
