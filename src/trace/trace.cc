#include "trace/trace.hh"

#include <map>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Superblock: return "superblock";
      case TraceKind::TraceTree: return "trace-tree";
      case TraceKind::CompactTraceTree: return "compact-trace-tree";
      case TraceKind::FrequentPath: return "frequent-path";
    }
    return "?";
}

Addr
Trace::entry() const
{
    TEA_ASSERT(!blocks.empty(), "trace %u has no blocks", id);
    return blocks[0].start;
}

uint64_t
Trace::staticInsnCount(
    const std::function<uint64_t(Addr, Addr)> &counter) const
{
    uint64_t total = 0;
    for (const TraceBasicBlock &tbb : blocks)
        total += counter(tbb.start, tbb.end);
    return total;
}

bool
Trace::containsBlock(Addr start, Addr end) const
{
    for (const TraceBasicBlock &tbb : blocks)
        if (tbb.start == start && tbb.end == end)
            return true;
    return false;
}

int
Trace::successorOn(uint32_t from, Addr label) const
{
    for (const Edge &e : edges)
        if (e.from == from && blocks[e.to].start == label)
            return static_cast<int>(e.to);
    return -1;
}

void
Trace::validate() const
{
    if (blocks.empty())
        fatal("trace %u has no blocks", id);
    for (const TraceBasicBlock &tbb : blocks) {
        if (tbb.end < tbb.start)
            fatal("trace %u: block end %s before start %s", id,
                  hex32(tbb.end).c_str(), hex32(tbb.start).c_str());
    }
    // Edges must reference valid blocks, and the automaton the trace
    // implies must be deterministic: a (from, label) pair has at most one
    // destination.
    std::map<std::pair<uint32_t, Addr>, uint32_t> seen;
    for (const Edge &e : edges) {
        if (e.from >= blocks.size() || e.to >= blocks.size())
            fatal("trace %u: edge (%u -> %u) out of range", id, e.from,
                  e.to);
        Addr label = blocks[e.to].start;
        auto [it, inserted] = seen.insert({{e.from, label}, e.to});
        if (!inserted && it->second != e.to)
            fatal("trace %u: nondeterministic edges from TBB %u on %s", id,
                  e.from, hex32(label).c_str());
    }
}

TraceId
TraceSet::add(Trace trace)
{
    trace.id = static_cast<TraceId>(traces.size());
    trace.validate();
    Addr entry = trace.entry();
    if (entryIndex.count(entry))
        fatal("a trace starting at %s already exists",
              hex32(entry).c_str());
    entryIndex[entry] = trace.id;
    traces.push_back(std::move(trace));
    return traces.back().id;
}

void
TraceSet::replace(TraceId id, Trace trace)
{
    TEA_ASSERT(id < traces.size(), "replace of unknown trace %u", id);
    trace.id = id;
    trace.validate();
    Addr old_entry = traces[id].entry();
    Addr new_entry = trace.entry();
    if (old_entry != new_entry) {
        auto it = entryIndex.find(new_entry);
        if (it != entryIndex.end() && it->second != id)
            fatal("a trace starting at %s already exists",
                  hex32(new_entry).c_str());
        entryIndex.erase(old_entry);
        entryIndex[new_entry] = id;
    }
    traces[id] = std::move(trace);
}

const Trace &
TraceSet::at(TraceId id) const
{
    TEA_ASSERT(id < traces.size(), "unknown trace %u", id);
    return traces[id];
}

int
TraceSet::traceAtEntry(Addr addr) const
{
    auto it = entryIndex.find(addr);
    return it == entryIndex.end() ? -1 : static_cast<int>(it->second);
}

size_t
TraceSet::totalBlocks() const
{
    size_t n = 0;
    for (const Trace &t : traces)
        n += t.blocks.size();
    return n;
}

size_t
TraceSet::totalEdges() const
{
    size_t n = 0;
    for (const Trace &t : traces)
        n += t.edges.size();
    return n;
}

void
TraceSet::clear()
{
    traces.clear();
    entryIndex.clear();
}

} // namespace tea
