#include "trace/duplicate.hh"

#include "util/logging.hh"

namespace tea {

Trace
duplicateTrace(const Trace &trace, unsigned factor)
{
    if (factor < 2)
        fatal("duplication factor must be >= 2");
    if (trace.kind != TraceKind::Superblock)
        fatal("only superblock traces can be duplicated");
    uint32_t n = static_cast<uint32_t>(trace.blocks.size());
    if (n == 0)
        fatal("cannot duplicate an empty trace");

    // Require the cyclic shape: sequential edges plus last -> 0.
    bool cyclic = false;
    for (const Trace::Edge &e : trace.edges) {
        if (e.from == n - 1 && e.to == 0)
            cyclic = true;
        else if (e.to != e.from + 1)
            fatal("trace %u is not a plain cyclic superblock", trace.id);
    }
    if (!cyclic)
        fatal("trace %u does not loop back to its head", trace.id);

    Trace out;
    out.kind = TraceKind::Superblock;
    out.blocks.reserve(static_cast<size_t>(n) * factor);
    for (unsigned copy = 0; copy < factor; ++copy)
        for (uint32_t b = 0; b < n; ++b)
            out.blocks.push_back(trace.blocks[b]);

    for (unsigned copy = 0; copy < factor; ++copy) {
        uint32_t base = static_cast<uint32_t>(copy) * n;
        for (uint32_t b = 0; b + 1 < n; ++b)
            out.edges.push_back({base + b, base + b + 1});
        uint32_t next_base =
            (static_cast<uint32_t>(copy) + 1) % factor * n;
        out.edges.push_back({base + n - 1, next_base});
    }
    return out;
}

} // namespace tea
