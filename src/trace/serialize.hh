/**
 * @file
 * Trace-set (de)serialization.
 *
 * This is the paper's "build traces in one system ... and load them for
 * use in different runs" capability: a DBT records traces, saves them,
 * and a profiling tool in another environment loads them and rebuilds the
 * TEA with Algorithm 1. Two formats are provided:
 *
 * - a human-readable text format (diff-friendly, used in tests), and
 * - a compact binary format (used for the Table 1 memory accounting of
 *   what a *code-free* trace description costs on disk).
 */

#ifndef TEA_TRACE_SERIALIZE_HH
#define TEA_TRACE_SERIALIZE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace tea {

/** Serialize to the text format. */
std::string saveTracesText(const TraceSet &traces);

/** Parse the text format. @throws FatalError on malformed input. */
TraceSet loadTracesText(const std::string &text);

/** Serialize to the binary format. */
std::vector<uint8_t> saveTracesBinary(const TraceSet &traces);

/** Parse the binary format. @throws FatalError on malformed input. */
TraceSet loadTracesBinary(const std::vector<uint8_t> &bytes);

/** Write text-format traces to a file. @throws FatalError on IO errors. */
void saveTracesFile(const TraceSet &traces, const std::string &path);

/** Read text-format traces from a file. @throws FatalError on errors. */
TraceSet loadTracesFile(const std::string &path);

} // namespace tea

#endif // TEA_TRACE_SERIALIZE_HH
