#include "trace/mfet.hh"

#include "trace/mret.hh"
#include "util/logging.hh"

namespace tea {

MfetSelector::MfetSelector(SelectorConfig config) : cfg(config) {}

ExecutingAction
MfetSelector::onExecuting(const BlockTransition &tr,
                          const SelectorContext &ctx)
{
    // MFET instruments every edge, not just back edges.
    BlockProfile &info = profile[tr.from.start];
    info.end = tr.from.end;
    ++info.execs;
    if (tr.toStart != kNoAddr)
        ++info.succs[tr.toStart];

    if (!MretSelector::isBackEdge(tr))
        return ExecutingAction::Continue;
    Addr target = tr.toStart;
    if (ctx.traces.hasEntry(target))
        return ExecutingAction::Continue;
    if (++counters[target] < cfg.hotThreshold)
        return ExecutingAction::Continue;

    counters[target] = 0;
    head = target;
    // The whole path comes from the profile; no Creating phase needed.
    return ExecutingAction::FinishImmediately;
}

CreatingAction
MfetSelector::onCreating(const BlockTransition &, const SelectorContext &)
{
    panic("MFET never enters the Creating state");
}

RecordingResult
MfetSelector::finish(const TraceSet &traces)
{
    RecordingResult result;
    if (head == kNoAddr)
        return result;

    auto head_it = profile.find(head);
    if (head_it == profile.end()) {
        head = kNoAddr;
        return result;
    }
    double head_execs = static_cast<double>(head_it->second.execs);

    Trace trace;
    trace.kind = TraceKind::FrequentPath;
    bool cyclic = false;
    Addr cur = head;
    while (trace.blocks.size() < cfg.maxBlocks) {
        auto it = profile.find(cur);
        if (it == profile.end())
            break;
        const BlockProfile &info = it->second;
        TraceBasicBlock tbb;
        tbb.start = cur;
        tbb.end = info.end;
        tbb.loopHeader = cur == head;
        trace.blocks.push_back(tbb);

        // Follow the most frequent successor edge.
        Addr best = kNoAddr;
        uint64_t best_count = 0;
        for (const auto &[succ, n] : info.succs) {
            if (n > best_count) {
                best = succ;
                best_count = n;
            }
        }
        if (best == kNoAddr ||
            static_cast<double>(best_count) <
                cfg.mfetMinEdgeRatio * head_execs)
            break;
        if (best == head) {
            cyclic = true;
            break;
        }
        if (traces.hasEntry(best))
            break;
        // Revisiting a non-head block would loop the walk forever.
        bool revisit = false;
        for (const TraceBasicBlock &b : trace.blocks)
            if (b.start == best)
                revisit = true;
        if (revisit)
            break;
        cur = best;
    }

    head = kNoAddr;
    if (trace.blocks.empty())
        return result;
    for (uint32_t i = 0; i + 1 < trace.blocks.size(); ++i)
        trace.edges.push_back({i, i + 1});
    if (cyclic)
        trace.edges.push_back(
            {static_cast<uint32_t>(trace.blocks.size() - 1), 0});
    result.kind = RecordingResult::Kind::NewTrace;
    result.trace = std::move(trace);
    return result;
}

void
MfetSelector::reset()
{
    profile.clear();
    counters.clear();
    head = kNoAddr;
}

} // namespace tea
