/**
 * @file
 * RecordingSession: one online recording of one named automaton.
 *
 * The paper's Algorithm 2 lives in tea::TeaRecorder as an offline,
 * single-process loop: feed transitions, read the grown Tea at the
 * end. A RecordingSession productionizes that loop for the serving
 * stack (the ROADMAP's record-and-serve item): it wraps a TeaRecorder
 * behind a deliberately mutex-free single-writer API, accepts streamed
 * BlockTransition batches (the RECORD wire verb's chunks, or a local
 * driver), and periodically *publishes* the grown automaton — an
 * incremental recompile (tea/compiled.hh recompile()) followed by an
 * atomic registry hot-swap — so replay traffic sees the automaton
 * grow while the recording is still running.
 *
 * Concurrency contract: exactly ONE thread drives feed()/finish() —
 * the net session's connection thread, or a bench loop. The session
 * itself takes no locks; the only cross-thread edges are the publish
 * steps, which go through the registry's shard mutex (replace()) and
 * the store's budget mutex (replaceResident()). Readers never see a
 * half-built automaton: they pin whichever immutable snapshot was
 * current when they resolved the name, exactly as with PUT/evict.
 *
 * Swap policy: a swap is attempted after every `swapInterval` fed
 * transitions, and performed only if the recorder installed at least
 * one trace since the last published snapshot — an idle interval
 * publishes nothing. finish() publishes whatever growth is still
 * unpublished (compiling the automaton at least once, so even a
 * trace-free recording leaves the name resolvable) and, when a store
 * is attached, writes the final `.teac` through the atomic tmp+rename
 * path. An *abandoned* session (destroyed unfinished — the chaos
 * disconnect case) publishes nothing further: the last swapped
 * snapshot stays installed and any partial batch is discarded.
 */

#ifndef TEA_REC_RECORDING_HH
#define TEA_REC_RECORDING_HH

#include <cstdint>
#include <memory>
#include <string>

#include "store/store.hh"
#include "svc/registry.hh"
#include "tea/recorder.hh"

namespace tea {

namespace obs {
class Counter;
class Histogram;
class LabeledCounter;
} // namespace obs

namespace rec {

/** Knobs for one recording session. */
struct RecordingConfig
{
    /** Trace-selection policy (trace/factory.hh names). */
    std::string selector = "mret";

    /** Lookup configuration for the recorder's embedded replayer. */
    LookupConfig lookup;

    /** Transitions fed between hot-swap attempts. */
    uint32_t swapInterval = 4096;

    /**
     * Incremental-recompile churn ceiling (tea/compiled.hh): when the
     * appended state fraction exceeds this, fall back to full compile.
     */
    double maxChurn = 0.5;
};

/**
 * Borrowed rec.* instrument handles (obs borrowed-pointer idiom, cf.
 * SessionObs): RecordingService::bindMetrics() fills one of these and
 * every session it creates writes through it. All pointers may be
 * null — an unbound service records without counting.
 */
struct RecMetrics
{
    obs::Counter *sessions = nullptr;      ///< sessions ever begun
    obs::Counter *transitions = nullptr;   ///< transitions ingested
    obs::Counter *recompilesFull = nullptr;
    obs::Counter *recompilesIncremental = nullptr;
    obs::Counter *swaps = nullptr;         ///< snapshots published
    obs::Counter *aborted = nullptr;       ///< sessions abandoned
    obs::Histogram *swapMs = nullptr;      ///< recompile+publish latency
    /** Per-automaton ingest family (rec.transitions_by_automaton).
     *  Each session resolves its own series handle once at open. */
    obs::LabeledCounter *transitionsBy = nullptr;
};

class RecordingService;

/** Final accounting returned by finish(). */
struct RecordingResultSummary
{
    uint64_t transitions = 0; ///< total transitions ingested
    uint64_t traces = 0;      ///< traces in the final automaton
    uint64_t states = 0;      ///< states incl. NTE in the final automaton
    uint64_t swaps = 0;       ///< snapshots published (incl. the final)
};

class RecordingSession
{
  public:
    /**
     * Begin recording `name`. Prefer RecordingService::begin(), which
     * also enforces one live recording per name.
     *
     * @param registry publish target (must outlive the session)
     * @param store    optional persistent tier: swaps go through
     *                 replaceResident() and finish() writes the final
     *                 `.teac` through; null publishes registry-only
     * @throws FatalError on invalid names or unknown selectors
     */
    RecordingSession(std::string name, AutomatonRegistry &registry,
                     AutomatonStore *store, RecordingConfig config,
                     const RecMetrics *metrics = nullptr);

    /** Abandoning an unfinished session releases its name (via the
     *  owning service) and publishes nothing further. */
    ~RecordingSession();

    RecordingSession(const RecordingSession &) = delete;
    RecordingSession &operator=(const RecordingSession &) = delete;

    /** Ingest one transition (single-writer; see file comment). */
    void feed(const BlockTransition &tr);

    /** Ingest a decoded batch — one RECORD_CHUNK's worth. */
    void feedBatch(const BlockTransition *batch, size_t n);

    /**
     * Publish the final snapshot (and write the `.teac` through when a
     * store is attached), then seal the session: further feed() panics.
     * @return final accounting. @throws FatalError on I/O failure
     */
    RecordingResultSummary finish();

    /** The automaton recorded so far (single-writer access only). */
    const Tea &tea() const { return recorder.tea(); }

    /** The embedded recorder's cumulative replay counters. */
    ReplayStats stats() const { return recorder.stats(); }

    const std::string &name() const { return name_; }
    uint64_t transitions() const { return transitionCount; }
    uint64_t swaps() const { return swapCount; }
    bool finished() const { return finished_; }

    /**
     * The most recently published snapshot (null before the first
     * swap). Exposed for tests; readers should resolve through the
     * registry like any other traffic.
     */
    const std::shared_ptr<const CompiledTea> &current() const
    {
        return current_;
    }

  private:
    friend class RecordingService;

    /** Swap if the interval elapsed and the automaton grew. */
    void maybeSwap();

    /** Recompile (delta when possible) and publish unconditionally. */
    void swapNow();

    std::string name_;
    AutomatonRegistry &registry;
    AutomatonStore *store = nullptr;
    RecordingConfig cfg;
    const RecMetrics *metrics = nullptr;
    /** This name's series in rec.transitions_by_automaton (or null). */
    obs::Counter *transitionsBy_ = nullptr;
    RecordingService *owner = nullptr; ///< set by RecordingService::begin

    TeaRecorder recorder;
    std::shared_ptr<const CompiledTea> current_;

    uint64_t transitionCount = 0;
    uint64_t sinceSwap = 0;           ///< transitions since last publish
    uint64_t tracesAtCompile = 0;     ///< traces() at last publish
    uint64_t installsAtCompile = 0;   ///< installs() at last publish
    uint64_t swapCount = 0;
    bool finished_ = false;
};

} // namespace rec
} // namespace tea

#endif // TEA_REC_RECORDING_HH
