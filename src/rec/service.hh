/**
 * @file
 * RecordingService: admission control and metrics for online
 * recordings.
 *
 * A RecordingSession is single-writer by design (rec/recording.hh);
 * the service is the thin concurrent layer above it that the server
 * shares across connections. It enforces the one invariant sessions
 * cannot see alone — at most one live recording per automaton name,
 * so two clients can never interleave transition streams into one
 * recorder — and owns the `rec.*` instrument handles every session
 * writes through.
 *
 * Lifecycle: begin() registers the name and hands back an owning
 * session wired to this service; the session's destructor releases
 * the name whether it finished cleanly or was abandoned by a
 * disconnect. The service must outlive its sessions (the server drains
 * connections before teardown, so this holds by construction).
 */

#ifndef TEA_REC_SERVICE_HH
#define TEA_REC_SERVICE_HH

#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "rec/recording.hh"

namespace tea {

namespace obs {
class MetricsRegistry;
} // namespace obs

namespace rec {

class RecordingService
{
  public:
    /**
     * @param registry publish target for every session
     * @param store    optional persistent tier (may also be attached
     *                 later via setStore; must outlive the service)
     */
    explicit RecordingService(AutomatonRegistry &registry,
                              AutomatonStore *store = nullptr);

    void setStore(AutomatonStore *s) { store = s; }

    /**
     * Start recording `name`.
     * @throws FatalError on invalid names, unknown selectors, or a
     *         recording already live under `name`
     */
    std::unique_ptr<RecordingSession>
    begin(const std::string &name, RecordingConfig config = {});

    /** Live recording count (the `rec.active` gauge). */
    size_t activeSessions() const;

    /** Is `name` being recorded right now? */
    bool recording(const std::string &name) const;

    /**
     * Register the `rec.*` instruments in `metrics` and start counting:
     * rec.sessions, rec.transitions, rec.recompiles_{full,incremental},
     * rec.swaps, rec.aborted, the rec.swap_ms histogram, and the
     * rec.active callback gauge (see docs/OBSERVABILITY.md).
     */
    void bindMetrics(obs::MetricsRegistry &metrics);

  private:
    friend class RecordingSession;

    /** Called by the session destructor: the name is free again. */
    void release(const std::string &name);

    AutomatonRegistry &registry;
    AutomatonStore *store = nullptr;
    RecMetrics instruments;

    mutable std::mutex mu;
    std::set<std::string> active;
};

} // namespace rec
} // namespace tea

#endif // TEA_REC_SERVICE_HH
