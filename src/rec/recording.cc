#include "rec/recording.hh"

#include <chrono>

#include "obs/metrics.hh"
#include "rec/service.hh"
#include "trace/factory.hh"
#include "util/logging.hh"

namespace tea {
namespace rec {

RecordingSession::RecordingSession(std::string name,
                                   AutomatonRegistry &registry_,
                                   AutomatonStore *store_,
                                   RecordingConfig config,
                                   const RecMetrics *metrics_)
    : name_(std::move(name)), registry(registry_), store(store_),
      cfg(std::move(config)), metrics(metrics_),
      recorder(makeSelector(cfg.selector), cfg.lookup)
{
    // Store-name rules apply even without a store attached, so a
    // recording can always be persisted later.
    if (!AutomatonStore::validName(name_))
        fatal("rec: invalid automaton name '%s'", name_.c_str());
    if (cfg.swapInterval == 0)
        fatal("rec: swap interval must be positive");
    if (metrics != nullptr && metrics->sessions != nullptr)
        metrics->sessions->inc();
    // Resolve the per-automaton ingest series once; feed() then pays
    // one relaxed fetch_add, not a label-map lookup per transition.
    if (metrics != nullptr && metrics->transitionsBy != nullptr)
        transitionsBy_ = &metrics->transitionsBy->at(name_);
}

RecordingSession::~RecordingSession()
{
    if (!finished_ && metrics != nullptr && metrics->aborted != nullptr)
        metrics->aborted->inc();
    if (owner != nullptr)
        owner->release(name_);
}

void
RecordingSession::feed(const BlockTransition &tr)
{
    TEA_ASSERT(!finished_, "rec: feed after finish");
    recorder.feed(tr);
    ++transitionCount;
    ++sinceSwap;
    if (metrics != nullptr && metrics->transitions != nullptr)
        metrics->transitions->inc();
    if (transitionsBy_ != nullptr)
        transitionsBy_->inc();
    maybeSwap();
}

void
RecordingSession::feedBatch(const BlockTransition *batch, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        feed(batch[i]);
}

void
RecordingSession::maybeSwap()
{
    if (sinceSwap < cfg.swapInterval)
        return;
    if (recorder.installs() == installsAtCompile) {
        // Idle interval: nothing grew, nothing to publish. Reset so
        // the next interval starts from here.
        sinceSwap = 0;
        return;
    }
    swapNow();
}

void
RecordingSession::swapNow()
{
    auto t0 = std::chrono::steady_clock::now();

    // The automaton grew append-only iff every install since the last
    // publish added a trace: NewTrace grows traces() by one,
    // ExtendTrace replaces one in place (reshuffling state ids).
    bool appendOnly =
        recorder.traces().size() - tracesAtCompile ==
        recorder.installs() - installsAtCompile;

    auto snapshot = std::make_shared<const Tea>(recorder.tea());
    CompiledTea::RecompileInfo info;
    auto next = CompiledTea::recompile(std::move(snapshot), current_,
                                       appendOnly, cfg.maxChurn, &info);
    current_ = std::move(next);
    tracesAtCompile = recorder.traces().size();
    installsAtCompile = recorder.installs();
    sinceSwap = 0;

    // Publish: new requests resolve the grown automaton; in-flight
    // replays keep the snapshot they pinned.
    if (store != nullptr)
        store->replaceResident(name_, current_);
    else
        registry.replace(name_, current_);
    ++swapCount;

    if (metrics != nullptr) {
        if (!info.unchanged) {
            obs::Counter *c = info.incremental
                                  ? metrics->recompilesIncremental
                                  : metrics->recompilesFull;
            if (c != nullptr)
                c->inc();
        }
        if (metrics->swaps != nullptr)
            metrics->swaps->inc();
        if (metrics->swapMs != nullptr) {
            double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            metrics->swapMs->observe(ms);
        }
    }
}

RecordingResultSummary
RecordingSession::finish()
{
    TEA_ASSERT(!finished_, "rec: finish called twice");

    // Publish any unpublished growth; also compile at least once so a
    // trace-free recording still leaves the name resolvable (an
    // all-NTE automaton replays every stream as untraced).
    if (current_ == nullptr || recorder.installs() != installsAtCompile)
        swapNow();

    if (store != nullptr)
        store->writeThrough(name_, *current_);

    finished_ = true;
    RecordingResultSummary out;
    out.transitions = transitionCount;
    out.traces = recorder.traces().size();
    out.states = recorder.tea().numStates();
    out.swaps = swapCount;
    return out;
}

} // namespace rec
} // namespace tea
