#include "rec/service.hh"

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace tea {
namespace rec {

RecordingService::RecordingService(AutomatonRegistry &registry_,
                                   AutomatonStore *store_)
    : registry(registry_), store(store_)
{
}

std::unique_ptr<RecordingSession>
RecordingService::begin(const std::string &name, RecordingConfig config)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!active.insert(name).second)
            fatal("rec: '%s' is already being recorded", name.c_str());
    }
    std::unique_ptr<RecordingSession> session;
    try {
        session = std::make_unique<RecordingSession>(
            name, registry, store, std::move(config), &instruments);
    } catch (...) {
        // The session never existed, so its destructor will not
        // release the name — undo the claim here.
        std::lock_guard<std::mutex> lock(mu);
        active.erase(name);
        throw;
    }
    session->owner = this;
    return session;
}

size_t
RecordingService::activeSessions() const
{
    std::lock_guard<std::mutex> lock(mu);
    return active.size();
}

bool
RecordingService::recording(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    return active.count(name) != 0;
}

void
RecordingService::release(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    active.erase(name);
}

void
RecordingService::bindMetrics(obs::MetricsRegistry &metrics)
{
    instruments.sessions = &metrics.counter("rec.sessions");
    instruments.transitions = &metrics.counter("rec.transitions");
    instruments.recompilesFull = &metrics.counter("rec.recompiles_full");
    instruments.recompilesIncremental =
        &metrics.counter("rec.recompiles_incremental");
    instruments.swaps = &metrics.counter("rec.swaps");
    instruments.aborted = &metrics.counter("rec.aborted");
    instruments.swapMs = &metrics.histogram("rec.swap_ms");
    instruments.transitionsBy =
        &metrics.labeledCounter("rec.transitions_by_automaton");
    metrics.gaugeFn("rec.active", [this] {
        return static_cast<int64_t>(activeSessions());
    });
}

} // namespace rec
} // namespace tea
