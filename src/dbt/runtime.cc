#include "dbt/runtime.hh"

#include "trace/factory.hh"
#include "util/timer.hh"
#include "vm/block.hh"

namespace tea {

DbtRuntime::RecordResult
DbtRuntime::record(const std::string &selector_name, SelectorConfig config,
                   uint64_t max_steps) const
{
    Machine machine(prog);
    TeaRecorder recorder(makeSelector(selector_name, config));
    BlockTracker tracker(
        prog,
        [&recorder](const BlockTransition &tr) { recorder.feed(tr); },
        /*rep_per_iteration=*/false);

    RunExit exit = machine.runHooked(
        [&tracker](const EdgeEvent &ev) { tracker.onEdge(ev); },
        /*split_at_special=*/false, max_steps);

    RecordResult result;
    result.traces = recorder.traces();
    result.stats = recorder.stats();
    result.installs = recorder.installs();
    result.exit = exit;
    return result;
}

double
DbtRuntime::timedRun(uint64_t max_steps) const
{
    Machine machine(prog);
    uint64_t edges = 0;
    Stopwatch timer;
    machine.runHooked([&edges](const EdgeEvent &) { ++edges; },
                      /*split_at_special=*/false, max_steps);
    return timer.elapsedSeconds();
}

DbtRuntime::TranslatedRun
DbtRuntime::runTranslated(const TranslatedImage &image, uint64_t max_steps)
{
    Machine machine(image.translated);
    Addr cache_begin = image.traces.empty()
                           ? image.translated.endAddr()
                           : image.traces.front().cacheEntry;

    TranslatedRun run;
    for (uint64_t i = 0; i < max_steps; ++i) {
        auto it = image.entryMap.find(machine.pc());
        if (it != image.entryMap.end())
            machine.setPc(it->second);
        if (machine.pc() >= cache_begin)
            ++run.cacheSteps;
        machine.step();
        ++run.steps;
        if (machine.halted()) {
            run.halted = true;
            break;
        }
    }
    run.output = machine.output();
    return run;
}

} // namespace tea
