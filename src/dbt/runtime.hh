/**
 * @file
 * The StarDBT-analogue runtime driver.
 *
 * Three roles, mirroring how the paper uses StarDBT:
 *
 * 1. **Recording** traces with the StarDBT dynamic-block policy: blocks
 *    end only at branch instructions (no CPUID/REP splitting) and a REP
 *    instruction counts as a single instruction (§4.1). The recording
 *    logic itself is Algorithm 2 with a pluggable selector, shared with
 *    the TEA experiments so the two sides record comparable trace sets.
 *
 * 2. **Translated execution**: running the code-replicated image built by
 *    dbt/emitter.hh, dispatching into cache copies at trace entries. The
 *    test suite uses this to prove the replication baseline is
 *    semantically equivalent to native execution.
 *
 * 3. **Timing proxy**: a real DBT executes translated traces at close to
 *    native speed, which an interpreter cannot reproduce while also
 *    doing per-edge analysis. The Table 2/3 "DBT Time" column therefore
 *    measures a run with only StarDBT's residual per-transition cost (a
 *    counter bump), as documented in DESIGN.md.
 */

#ifndef TEA_DBT_RUNTIME_HH
#define TEA_DBT_RUNTIME_HH

#include <string>

#include "dbt/emitter.hh"
#include "tea/recorder.hh"
#include "vm/machine.hh"

namespace tea {

/** Drives recording and translated execution over one program. */
class DbtRuntime
{
  public:
    explicit DbtRuntime(const Program &prog) : prog(prog) {}

    /** Result of a recording run. */
    struct RecordResult
    {
        TraceSet traces;
        ReplayStats stats; ///< StarDBT-side counters (REP counts as one)
        uint64_t installs = 0;
        RunExit exit = RunExit::Halted;
    };

    /**
     * Execute the program while recording traces with the given
     * selection strategy ("mret", "tt", "ctt", "mfet").
     */
    RecordResult record(const std::string &selector_name,
                        SelectorConfig config = {},
                        uint64_t max_steps =
                            Machine::kDefaultStepLimit) const;

    /**
     * The translated-execution timing proxy: run with only a per-edge
     * counter bump (StarDBT's steady-state residual cost).
     * @return wall-clock seconds.
     */
    double timedRun(uint64_t max_steps = Machine::kDefaultStepLimit) const;

    /** Result of executing a translated image. */
    struct TranslatedRun
    {
        std::vector<uint32_t> output; ///< guest Out-port values
        uint64_t steps = 0;           ///< instructions executed
        uint64_t cacheSteps = 0;      ///< of those, inside the code cache
        bool halted = false;
    };

    /**
     * Execute a translated image, entering trace code whenever the guest
     * PC hits a recorded trace entry.
     */
    static TranslatedRun runTranslated(const TranslatedImage &image,
                                       uint64_t max_steps =
                                           Machine::kDefaultStepLimit);

  private:
    const Program &prog;
};

} // namespace tea

#endif // TEA_DBT_RUNTIME_HH
