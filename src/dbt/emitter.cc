#include "dbt/emitter.hh"

#include "dbt/memory_model.hh"
#include "isa/encoding.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

namespace {

/** Placeholder for unresolved branch targets; forces the 4-byte form. */
constexpr int32_t kFixup = 0x7fffffff;

/** How an emitted instruction's target gets resolved in pass 2. */
enum class Fix : uint8_t
{
    None,
    ToBlock, ///< dst.imm := cache address of TBB fixIndex
    ToStub,  ///< dst.imm := cache address of stub fixIndex
};

struct EmitSlot
{
    Insn insn;
    Fix fix = Fix::None;
    uint32_t fixIndex = 0;
};

/** Emission state for one trace. */
class TraceEmission
{
  public:
    TraceEmission(const Program &prog, const Trace &trace,
                  bool optimize = false, PeepholeStats *opt_stats = nullptr)
        : prog(prog), trace(trace), optimize(optimize),
          optStats(opt_stats)
    {
    }

    EmittedTrace emit(Addr cache_base);

  private:
    uint32_t
    newStub(Addr guest_target)
    {
        stubTargets.push_back(guest_target);
        return static_cast<uint32_t>(stubTargets.size() - 1);
    }

    void
    push(Insn insn, Fix fix = Fix::None, uint32_t fix_index = 0)
    {
        slots.push_back({insn, fix, fix_index});
    }

    /** Emit a direct jump slot (target resolved later). */
    void
    pushJump(Opcode op, Fix fix, uint32_t fix_index)
    {
        Insn j;
        j.op = op;
        j.dst = Operand::makeImm(kFixup);
        push(j, fix, fix_index);
    }

    void emitBlock(uint32_t index);
    void emitSuccessors(uint32_t index, const Insn &term, bool has_term);

    const Program &prog;
    const Trace &trace;
    bool optimize;
    PeepholeStats *optStats;
    std::vector<EmitSlot> slots;
    std::vector<size_t> blockSlot;  ///< first slot index of each TBB
    std::vector<Addr> stubTargets;  ///< guest target of each stub
    TraceMemory memory;
};

void
TraceEmission::emitSuccessors(uint32_t index, const Insn &term,
                              bool has_term)
{
    auto intra = [&](Addr label) { return trace.successorOn(index, label); };
    bool adjacent_ok = index + 1 < trace.blocks.size();
    Addr next_start = adjacent_ok ? trace.blocks[index + 1].start : kNoAddr;

    auto route = [&](Addr target, bool conditional) {
        int v = intra(target);
        if (v >= 0) {
            if (conditional) {
                Insn cond = term;
                cond.dst = Operand::makeImm(kFixup);
                push(cond, Fix::ToBlock, static_cast<uint32_t>(v));
            } else if (static_cast<uint32_t>(v) == index + 1 &&
                       adjacent_ok && trace.blocks[index + 1].start ==
                           next_start) {
                // falls straight into the next emitted block
            } else {
                pushJump(Opcode::Jmp, Fix::ToBlock,
                         static_cast<uint32_t>(v));
            }
        } else {
            uint32_t s = newStub(target);
            if (conditional) {
                Insn cond = term;
                cond.dst = Operand::makeImm(kFixup);
                push(cond, Fix::ToStub, s);
            } else {
                pushJump(Opcode::Jmp, Fix::ToStub, s);
            }
        }
    };

    if (!has_term) {
        // Block ends mid-stream (a split block): continue sequentially.
        route(term.nextAddr(), false);
        return;
    }

    switch (term.op) {
      case Opcode::Jmp:
        if (term.dst.kind == OperandKind::Imm) {
            route(static_cast<Addr>(term.dst.imm), false);
        } else {
            push(term); // indirect: leaves the cache via the IBTC
            memory.metaBytes += kIndirectStubBytes;
        }
        break;
      case Opcode::Call: {
        if (term.dst.kind == OperandKind::Imm) {
            Addr target = static_cast<Addr>(term.dst.imm);
            int v = intra(target);
            if (v >= 0) {
                Insn call = term;
                call.dst = Operand::makeImm(kFixup);
                push(call, Fix::ToBlock, static_cast<uint32_t>(v));
            } else {
                push(term); // call out to cold code
            }
        } else {
            push(term);
            memory.metaBytes += kIndirectStubBytes;
        }
        // The emitted call pushes the cache address of whatever follows
        // it, so the slot after a call must route back to the *guest*
        // return point — otherwise the callee's ret would fall into the
        // next TBB copy. (Real trace JITs avoid this by inlining; an
        // exit stub keeps the replication baseline simple and correct.)
        uint32_t s = newStub(term.nextAddr());
        pushJump(Opcode::Jmp, Fix::ToStub, s);
        break;
      }
      case Opcode::Ret:
        push(term);
        memory.metaBytes += kIndirectStubBytes;
        break;
      case Opcode::Halt:
        push(term);
        break;
      default:
        if (isConditionalJump(term.op)) {
            route(term.directTarget(), true); // taken side
            route(term.nextAddr(), false);    // fall-through side
        } else {
            // Not a control transfer; keep it and continue sequentially.
            push(term);
            route(term.nextAddr(), false);
        }
        break;
    }
}

void
TraceEmission::emitBlock(uint32_t index)
{
    const TraceBasicBlock &tbb = trace.blocks[index];
    size_t first = prog.indexAt(tbb.start);
    size_t last = prog.indexAt(tbb.end);
    if (first == Program::npos || last == Program::npos || last < first)
        fatal("trace %u TBB %u: bad block [%s, %s]", trace.id, index,
              hex32(tbb.start).c_str(), hex32(tbb.end).c_str());

    blockSlot.push_back(slots.size());
    memory.metaBytes += kBlockMetaBytes;

    const Insn &term = prog.at(last);
    bool has_term = isBlockTerminator(term.op);
    if (optimize) {
        // Optimize the whole block (terminator included, so the pass
        // sees flag consumers), then re-route the terminator below.
        std::vector<Insn> insns(
            prog.instructions().begin() + static_cast<long>(first),
            prog.instructions().begin() + static_cast<long>(last) + 1);
        insns = optimizeBlock(insns, optStats);
        if (has_term)
            insns.pop_back(); // emitSuccessors re-emits the terminator
        for (const Insn &insn : insns)
            push(insn);
    } else {
        for (size_t i = first; i < last; ++i)
            push(prog.at(i));
        if (!has_term)
            push(term);
    }
    emitSuccessors(index, term, has_term);
}

EmittedTrace
TraceEmission::emit(Addr cache_base)
{
    memory.headerBytes = kTraceHeaderBytes;
    for (uint32_t b = 0; b < trace.blocks.size(); ++b)
        emitBlock(b);

    size_t body_slots = slots.size();

    // Stubs: a 6-byte jump to the guest target padded to kExitStubBytes.
    std::vector<size_t> stub_slot(stubTargets.size());
    std::vector<size_t> stub_jmp_slot(stubTargets.size());
    for (size_t s = 0; s < stubTargets.size(); ++s) {
        stub_slot[s] = slots.size();
        stub_jmp_slot[s] = slots.size();
        Insn j;
        j.op = Opcode::Jmp;
        j.dst = Operand::makeImm(static_cast<int32_t>(stubTargets[s]));
        push(j);
        size_t jmp_len = encodedLength(j);
        TEA_ASSERT(jmp_len <= kExitStubBytes, "stub jump too long");
        for (size_t pad = jmp_len; pad < kExitStubBytes; ++pad) {
            Insn nop;
            nop.op = Opcode::Nop;
            push(nop);
        }
    }

    // Pass 1: layout.
    std::vector<Addr> slot_addr(slots.size());
    Addr cursor = cache_base;
    for (size_t i = 0; i < slots.size(); ++i) {
        slot_addr[i] = cursor;
        cursor += static_cast<Addr>(encodedLength(slots[i].insn));
    }

    // Pass 2: resolve fixups. All cache addresses are >= 0x1000, so the
    // encoded widths computed in pass 1 cannot change.
    for (EmitSlot &slot : slots) {
        switch (slot.fix) {
          case Fix::None:
            break;
          case Fix::ToBlock:
            slot.insn.dst = Operand::makeImm(static_cast<int32_t>(
                slot_addr[blockSlot[slot.fixIndex]]));
            break;
          case Fix::ToStub:
            slot.insn.dst = Operand::makeImm(static_cast<int32_t>(
                slot_addr[stub_slot[slot.fixIndex]]));
            break;
        }
    }

    EmittedTrace out;
    out.id = trace.id;
    out.cacheEntry = slot_addr[blockSlot[0]];
    out.blockCacheAddr.reserve(trace.blocks.size());
    for (size_t b : blockSlot)
        out.blockCacheAddr.push_back(slot_addr[b]);
    out.code.reserve(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        out.code.push_back(slots[i].insn);

    for (size_t i = 0; i < body_slots; ++i)
        memory.codeBytes += encodedLength(slots[i].insn);
    memory.stubBytes = stubTargets.size() * kExitStubBytes;
    memory.metaBytes += stubTargets.size() * kExitRecordBytes;

    out.stubs.reserve(stubTargets.size());
    for (size_t s = 0; s < stubTargets.size(); ++s)
        out.stubs.emplace_back(slot_addr[stub_jmp_slot[s]],
                               stubTargets[s]);
    out.memory = memory;
    return out;
}

} // namespace

size_t
TranslatedImage::totalBytes() const
{
    size_t total = 0;
    for (const EmittedTrace &t : traces)
        total += t.memory.total();
    return total;
}

TranslatedImage
translate(const Program &prog, const TraceSet &traces, bool optimize)
{
    TranslatedImage image;
    Program &out = image.translated;
    out.setBase(prog.baseAddr());
    out.setEntry(prog.entry());
    for (const auto &[name, addr] : prog.labels())
        out.addLabel(name, addr);
    for (const DataWord &d : prog.data())
        out.addData(d.addr, d.value);
    for (const Insn &insn : prog.instructions()) {
        out.append(insn);
        TEA_ASSERT(out.instructions().back().addr == insn.addr,
                   "translated image drifted from the original layout");
    }

    // Emit every trace at the current cursor.
    for (const Trace &t : traces.all()) {
        TraceEmission emission(prog, t, optimize, &image.optStats);
        EmittedTrace emitted = emission.emit(out.endAddr());
        image.entryMap[t.entry()] = emitted.cacheEntry;
        // Appending advances the cursor exactly by the laid-out bytes.
        for (const Insn &insn : emitted.code)
            out.append(insn);
        image.traces.push_back(std::move(emitted));
    }

    // Trace linking: stubs whose guest target is another trace's entry
    // are patched to branch straight to that trace's cache entry.
    for (EmittedTrace &t : image.traces) {
        for (auto &[stub_addr, guest_target] : t.stubs) {
            auto it = image.entryMap.find(guest_target);
            if (it == image.entryMap.end())
                continue;
            size_t idx = out.indexAt(stub_addr);
            TEA_ASSERT(idx != Program::npos, "stub address lost");
            Insn patched = out.at(idx);
            TEA_ASSERT(patched.op == Opcode::Jmp, "stub is not a jump");
            // Rewrite in place; the width cannot change (both targets
            // are full-width addresses).
            patched.dst = Operand::makeImm(static_cast<int32_t>(it->second));
            out.patch(idx, patched);
            t.memory.metaBytes += kLinkRecordBytes;
        }
    }
    return image;
}

std::vector<TraceMemory>
accountTraces(const Program &prog, const TraceSet &traces)
{
    // Accounting does not need the executable image; emit each trace at
    // a synthetic base and keep only the byte counts (plus link records
    // for stubs that would be patched).
    std::vector<TraceMemory> out;
    out.reserve(traces.size());
    for (const Trace &t : traces.all()) {
        TraceEmission emission(prog, t);
        EmittedTrace emitted = emission.emit(prog.endAddr());
        for (auto &[stub_addr, guest_target] : emitted.stubs)
            if (traces.hasEntry(guest_target))
                emitted.memory.metaBytes += kLinkRecordBytes;
        out.push_back(emitted.memory);
    }
    return out;
}

} // namespace tea
