/**
 * @file
 * Trace code emission: the code-replication baseline.
 *
 * Translates a recorded trace into executable TinyX86 code laid out in
 * the code cache region of a translated program image:
 *
 * - every TBB's instructions are copied (replicated) in trace order;
 * - intra-trace branches are retargeted to the cache copies (taken edges
 *   rewrite the branch target; non-adjacent fall-through edges get an
 *   extra jump — the classic superblock/tree layout);
 * - side exits branch to per-exit stubs appended after the trace body,
 *   each stub jumping back to the original (cold) guest address;
 * - exits whose target is another trace's entry can be *linked* later
 *   (the stub's jump is patched to the other trace's cache entry).
 *
 * The emitted code is genuinely executable by the Machine, which is how
 * the test suite proves the replication baseline semantically faithful —
 * and the emitted byte counts are what Table 1 charges the DBT.
 */

#ifndef TEA_DBT_EMITTER_HH
#define TEA_DBT_EMITTER_HH

#include <unordered_map>
#include <vector>

#include "isa/program.hh"
#include "opt/peephole.hh"
#include "trace/trace.hh"

namespace tea {

/** Memory accounting for one emitted trace. */
struct TraceMemory
{
    size_t codeBytes = 0;   ///< replicated + retargeted instruction bytes
    size_t stubBytes = 0;   ///< exit stubs (kExitStubBytes each)
    size_t headerBytes = 0; ///< kTraceHeaderBytes
    size_t metaBytes = 0;   ///< per-TBB + indirect + link records

    /** Total bytes charged to the DBT for this trace. */
    size_t
    total() const
    {
        return codeBytes + stubBytes + headerBytes + metaBytes;
    }
};

/** One emitted trace: executable code plus bookkeeping. */
struct EmittedTrace
{
    TraceId id = 0;
    Addr cacheEntry = 0;           ///< cache address of TBB 0
    std::vector<Insn> code;        ///< instructions, in layout order
    std::vector<Addr> blockCacheAddr; ///< cache address of each TBB
    TraceMemory memory;
    /** Exit stubs: (stub cache address, original guest target). */
    std::vector<std::pair<Addr, Addr>> stubs;
};

/** A fully translated program image. */
struct TranslatedImage
{
    Program translated; ///< original code followed by the code cache
    std::unordered_map<Addr, Addr> entryMap; ///< guest entry -> cache
    std::vector<EmittedTrace> traces;
    PeepholeStats optStats; ///< what the optional optimizer did

    /** Total DBT bytes (the Table 1 "DBT" number). */
    size_t totalBytes() const;
};

/**
 * Emit every trace of `traces` into a translated image of `prog`.
 *
 * Stubs that target another trace's entry are linked directly to that
 * trace's cache entry (and charged a link record). With `optimize` set,
 * each TBB's replicated body runs through the intra-block peephole pass
 * (opt/peephole.hh) first — trace code gets smaller and faster while
 * staying bit-equivalent, which the test suite proves by executing it.
 *
 * @throws FatalError when a trace references blocks that do not exist in
 *         the program or has edges that do not match any static
 *         successor.
 */
TranslatedImage translate(const Program &prog, const TraceSet &traces,
                          bool optimize = false);

/**
 * Memory accounting only (skips building the executable image; used by
 * the Table 1 bench on large trace sets).
 */
std::vector<TraceMemory> accountTraces(const Program &prog,
                                       const TraceSet &traces);

} // namespace tea

#endif // TEA_DBT_EMITTER_HH
