/**
 * @file
 * The DBT baseline's memory cost model (Table 1 "DBT" column).
 *
 * StarDBT represents a trace by *replicating code*: every TBB's
 * instructions are copied into the code cache, side exits get exit stubs
 * (context bookkeeping + a jump back to cold code or the dispatcher),
 * linked traces keep link records so they can be unlinked, and each
 * trace carries dispatch/lookup metadata. TEA avoids every one of those
 * costs by storing only automaton state.
 *
 * All byte constants below are charged against structures our emitter
 * actually creates; replicated instruction bytes are the *actual encoded
 * lengths* of the emitted TinyX86 code (dbt/emitter.hh), not estimates.
 */

#ifndef TEA_DBT_MEMORY_MODEL_HH
#define TEA_DBT_MEMORY_MODEL_HH

#include <cstddef>

namespace tea {

/**
 * Bytes of one side-exit stub in the code cache: a direct jump to the
 * original code plus the exit-id / context slot the dispatcher needs to
 * resume cold execution. Our emitter materializes each stub as a 6-byte
 * jump padded with nops to exactly this size.
 */
constexpr size_t kExitStubBytes = 16;

/**
 * Per-trace header: code-cache allocation record, dispatch-table entry
 * (guest entry address -> cache address) and flags.
 */
constexpr size_t kTraceHeaderBytes = 24;

/**
 * Per-TBB metadata: the source-address mapping record needed to
 * attribute exits and exceptions back to guest addresses.
 */
constexpr size_t kBlockMetaBytes = 8;

/**
 * One trace-link record: when an exit stub is patched to branch
 * directly into another trace, the DBT must remember the patch site to
 * be able to unlink the trace later.
 */
constexpr size_t kLinkRecordBytes = 8;

/**
 * Per-exit bookkeeping beyond the stub code itself: the exit's guest
 * target and its counter slot, consulted when deciding whether to link
 * the exit or promote it to a new trace.
 */
constexpr size_t kExitRecordBytes = 8;

/**
 * Indirect-branch translation cost per TBB ending in ret / an indirect
 * jump: the inline IBTC (indirect branch translation cache) probe.
 */
constexpr size_t kIndirectStubBytes = 24;

} // namespace tea

#endif // TEA_DBT_MEMORY_MODEL_HH
