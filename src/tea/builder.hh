/**
 * @file
 * Algorithm 1: converting a set of traces into a TEA.
 */

#ifndef TEA_TEA_BUILDER_HH
#define TEA_TEA_BUILDER_HH

#include "tea/automaton.hh"
#include "trace/trace.hh"

namespace tea {

/**
 * Build the whole-program TEA for a trace set (Algorithm 1).
 *
 * Step 1 creates the NTE state (implicit in Tea's constructor); step 2
 * adds one state per TBB (Property 1); step 3 adds, for every TBB, the
 * transitions to its intra-trace successors labeled with the successor's
 * start address, leaves transitions to non-trace successors implicit
 * (they fall back to NTE), and wires NTE to every trace entry
 * (Property 2).
 *
 * The result is validated against the input before being returned.
 */
Tea buildTea(const TraceSet &traces);

} // namespace tea

#endif // TEA_TEA_BUILDER_HH
