#include "tea/insn_map.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

InsnMap::InsnMap(const Tea &automaton, const Program &program)
    : tea(automaton), prog(program)
{
    addrs.resize(tea.numStates());
    for (StateId id = 1; id < tea.numStates(); ++id) {
        const TeaState &s = tea.state(id);
        size_t first = prog.indexAt(s.start);
        size_t last = prog.indexAt(s.end);
        if (first == Program::npos || last == Program::npos ||
            last < first)
            fatal("insn map: state %u block [%s, %s] not in program", id,
                  hex32(s.start).c_str(), hex32(s.end).c_str());
        auto &list = addrs[id];
        list.reserve(last - first + 1);
        for (size_t i = first; i <= last; ++i)
            list.push_back(prog.at(i).addr);
        total += list.size();
    }
}

bool
InsnMap::map(StateId state, Addr pc, TraceInsn &out) const
{
    if (state == Tea::kNteState || state >= addrs.size())
        return false;
    const auto &list = addrs[state];
    auto it = std::lower_bound(list.begin(), list.end(), pc);
    if (it == list.end() || *it != pc)
        return false;
    const TeaState &s = tea.state(state);
    out.trace = s.trace;
    out.tbb = s.tbb;
    out.index = static_cast<uint32_t>(it - list.begin());
    out.pc = pc;
    return true;
}

size_t
InsnMap::insnCount(StateId state) const
{
    TEA_ASSERT(state < addrs.size(), "bad state id %u", state);
    return addrs[state].size();
}

std::vector<TraceInsn>
InsnMap::instancesOf(StateId state) const
{
    std::vector<TraceInsn> out;
    if (state == Tea::kNteState || state >= addrs.size())
        return out;
    const TeaState &s = tea.state(state);
    out.reserve(addrs[state].size());
    for (uint32_t i = 0; i < addrs[state].size(); ++i)
        out.push_back({s.trace, s.tbb, i, addrs[state][i]});
    return out;
}

} // namespace tea
