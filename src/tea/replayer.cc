#include "tea/replayer.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

TeaReplayer::TeaReplayer(const Tea &automaton, LookupConfig config)
    : tea(automaton), cfg(config)
{
    for (const auto &[addr, id] : tea.entries()) {
        if (cfg.useGlobalBTree)
            globalTree.insert(addr, id);
        else
            globalList.emplace_front(addr, id);
    }
    if (cfg.useLocalCache)
        caches.resize(tea.numStates());
    execCounts.assign(tea.numStates(), 0);
}

uint64_t
TeaReplayer::execCount(StateId id) const
{
    TEA_ASSERT(id < execCounts.size(), "bad state id %u", id);
    return execCounts[id];
}

uint64_t
TeaReplayer::execCountFor(TraceId trace, uint32_t tbb) const
{
    StateId id = tea.stateFor(trace, tbb);
    return id == Tea::kNteState ? 0 : execCounts[id];
}

size_t
TeaReplayer::lookupFootprintBytes() const
{
    size_t bytes = 0;
    if (cfg.useGlobalBTree) {
        bytes += globalTree.footprintBytes();
    } else {
        for (const auto &entry : globalList)
            bytes += sizeof(entry) + sizeof(void *);
    }
    bytes += caches.size() * LocalCache::footprintBytes();
    return bytes;
}

StateId
TeaReplayer::resolveEntry(Addr addr)
{
    ++st.globalLookups;
    if (cfg.useGlobalBTree) {
        BPlusTree::Value v;
        if (globalTree.find(addr, v)) {
            ++st.globalHits;
            return static_cast<StateId>(v);
        }
        return Tea::kNteState;
    }
    // The un-indexed fallback the paper started from: walk the trace
    // list. Pathological when there are many traces (gcc, vortex).
    for (const auto &[entry, id] : globalList) {
        if (entry == addr) {
            ++st.globalHits;
            return id;
        }
    }
    return Tea::kNteState;
}

void
TeaReplayer::feed(const BlockTransition &tr)
{
    // Attribute the block that just finished to the current state.
    ++st.blocks;
    ++execCounts[cur];
    st.insnsTotal += tr.from.icount;
    if (cur == Tea::kNteState)
        ++st.nteBlocks;
    if (cur != Tea::kNteState) {
        st.insnsInTrace += tr.from.icount;
        if (cfg.checkConsistency) {
            const TeaState &s = tea.state(cur);
            if (s.start != tr.from.start)
                panic("replay desync: state %u maps %s but %s executed",
                      cur, hex32(s.start).c_str(),
                      hex32(tr.from.start).c_str());
        }
    }

    if (tr.toStart == kNoAddr)
        return; // program halted; stay put
    ++st.transitions;
    Addr label = tr.toStart;

    if (cur != Tea::kNteState) {
        // 1. the state's own transition list (intra-trace).
        const TeaState &s = tea.state(cur);
        for (StateId t : s.succs) {
            if (tea.state(t).start == label) {
                ++st.intraTraceHits;
                cur = t;
                return;
            }
        }
        ++st.traceExits;
        // 2. the per-state local cache (covers trace -> trace and
        //    trace -> cold resolutions; a cached 0 means "cold").
        if (cfg.useLocalCache) {
            uint32_t v;
            if (caches[cur].lookup(label, v)) {
                ++st.localCacheHits;
                cur = static_cast<StateId>(v);
                if (cur == Tea::kNteState)
                    ++st.exitsToCold;
                return;
            }
            StateId next = resolveEntry(label);
            caches[cur].fill(label, next);
            cur = next;
            if (cur == Tea::kNteState)
                ++st.exitsToCold;
            return;
        }
        cur = resolveEntry(label);
        if (cur == Tea::kNteState)
            ++st.exitsToCold;
        return;
    }

    // From NTE: only the global container can get us into a trace
    // ("local caches are pointless outside of traces").
    cur = resolveEntry(label);
}

void
TeaReplayer::setCurrentState(StateId id)
{
    TEA_ASSERT(id < tea.numStates(), "bad state id %u", id);
    cur = id;
}

void
TeaReplayer::reset()
{
    cur = Tea::kNteState;
    st = ReplayStats{};
    execCounts.assign(tea.numStates(), 0);
    for (LocalCache &c : caches)
        c.clear();
}

} // namespace tea
