#include "tea/replayer.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

TeaReplayer::TeaReplayer(const Tea &automaton, LookupConfig config,
                         std::shared_ptr<const CompiledTea> precompiled)
    : tea(&automaton), cfg(config)
{
    if (cfg.useCompiled) {
        if (precompiled) {
            TEA_ASSERT(precompiled->numStates() == tea->numStates(),
                       "compiled snapshot does not match the automaton");
            compiledShared = std::move(precompiled);
        } else {
            compiledShared = std::make_shared<const CompiledTea>(*tea);
        }
        compiled = compiledShared.get();
    } else {
        for (const auto &[addr, id] : tea->entries()) {
            if (cfg.useGlobalBTree)
                globalTree.insert(addr, id);
            else
                globalList.emplace_front(addr, id);
        }
    }
    nStatesTotal = static_cast<uint32_t>(tea->numStates());
    if (cfg.useLocalCache)
        cacheSlot.assign(nStatesTotal, kNoCacheSlot);
    execCounts.assign(nStatesTotal, 0);
}

TeaReplayer::TeaReplayer(std::shared_ptr<const CompiledTea> snapshot,
                         LookupConfig config)
    : cfg(config)
{
    TEA_ASSERT(snapshot != nullptr, "replaying a null compiled snapshot");
    if (!cfg.useCompiled)
        fatal("the reference replay kernel needs the source automaton; "
              "a compiled snapshot alone cannot serve it");
    compiledShared = std::move(snapshot);
    compiled = compiledShared.get();
    nStatesTotal = compiled->numStates();
    if (cfg.useLocalCache)
        cacheSlot.assign(nStatesTotal, kNoCacheSlot);
    execCounts.assign(nStatesTotal, 0);
}

uint64_t
TeaReplayer::execCount(StateId id) const
{
    TEA_ASSERT(id < execCounts.size(), "bad state id %u", id);
    return execCounts[id];
}

uint64_t
TeaReplayer::execCountFor(TraceId trace, uint32_t tbb) const
{
    // The compiled snapshot carries every state's identity, so the
    // per-copy profile works even without a source Tea (mapped images).
    StateId id = tea ? tea->stateFor(trace, tbb)
                     : compiled->stateFor(trace, tbb);
    return id == Tea::kNteState ? 0 : execCounts[id];
}

size_t
TeaReplayer::lookupFootprintBytes() const
{
    size_t bytes = 0;
    if (compiled) {
        bytes += compiled->footprintBytes();
    } else if (cfg.useGlobalBTree) {
        bytes += globalTree.footprintBytes();
    } else {
        for (const auto &entry : globalList)
            bytes += sizeof(entry) + sizeof(void *);
    }
    // Only materialized caches are charged (plus their slot index);
    // states that never missed on the exit path cost nothing.
    bytes += cachePool.size() * LocalCache::footprintBytes();
    bytes += cacheSlot.size() * sizeof(uint32_t);
    return bytes;
}

bool
TeaReplayer::cacheLookup(StateId state, Addr label, StateId &out)
{
    uint32_t slot = cacheSlot[state];
    if (slot == kNoCacheSlot)
        return false;
    uint32_t v;
    if (!cachePool[slot].lookup(label, v))
        return false;
    out = static_cast<StateId>(v);
    return true;
}

void
TeaReplayer::cacheFill(StateId state, Addr label, StateId value)
{
    uint32_t slot = cacheSlot[state];
    if (slot == kNoCacheSlot) {
        // First exit-path miss of this state: materialize its cache.
        slot = static_cast<uint32_t>(cachePool.size());
        cachePool.emplace_back();
        cacheSlot[state] = slot;
    }
    cachePool[slot].fill(label, value);
}

StateId
TeaReplayer::resolveEntry(Addr addr)
{
    ++st.globalLookups;
    if (cfg.useGlobalBTree) {
        BPlusTree::Value v;
        if (globalTree.find(addr, v)) {
            ++st.globalHits;
            return static_cast<StateId>(v);
        }
        return Tea::kNteState;
    }
    // The un-indexed fallback the paper started from: walk the trace
    // list. Pathological when there are many traces (gcc, vortex).
    for (const auto &[entry, id] : globalList) {
        if (entry == addr) {
            ++st.globalHits;
            return id;
        }
    }
    return Tea::kNteState;
}

StateId
TeaReplayer::resolveEntryCompiled(Addr addr)
{
    ++st.globalLookups;
    StateId id = cfg.useGlobalBTree ? compiled->entryAt(addr)
                                    : compiled->entryLinear(addr);
    if (id != Tea::kNteState)
        ++st.globalHits;
    return id;
}

void
TeaReplayer::feedReference(const BlockTransition &tr)
{
    // Attribute the block that just finished to the current state.
    ++st.blocks;
    ++execCounts[cur];
    st.insnsTotal += tr.from.icount;
    if (cur == Tea::kNteState)
        ++st.nteBlocks;
    if (cur != Tea::kNteState) {
        st.insnsInTrace += tr.from.icount;
        if (cfg.checkConsistency) {
            const TeaState &s = tea->state(cur);
            if (s.start != tr.from.start)
                panic("replay desync: state %u maps %s but %s executed",
                      cur, hex32(s.start).c_str(),
                      hex32(tr.from.start).c_str());
        }
    }

    if (tr.toStart == kNoAddr)
        return; // program halted; stay put
    ++st.transitions;
    Addr label = tr.toStart;

    if (cur != Tea::kNteState) {
        // 1. the state's own transition list (intra-trace).
        const TeaState &s = tea->state(cur);
        for (StateId t : s.succs) {
            if (tea->state(t).start == label) {
                ++st.intraTraceHits;
                cur = t;
                return;
            }
        }
        ++st.traceExits;
        // 2. the per-state local cache (covers trace -> trace and
        //    trace -> cold resolutions; a cached 0 means "cold").
        if (cfg.useLocalCache) {
            StateId v;
            if (cacheLookup(cur, label, v)) {
                ++st.localCacheHits;
                cur = v;
                if (cur == Tea::kNteState)
                    ++st.exitsToCold;
                return;
            }
            StateId next = resolveEntry(label);
            cacheFill(cur, label, next);
            cur = next;
            if (cur == Tea::kNteState)
                ++st.exitsToCold;
            return;
        }
        cur = resolveEntry(label);
        if (cur == Tea::kNteState)
            ++st.exitsToCold;
        return;
    }

    // From NTE: only the global container can get us into a trace
    // ("local caches are pointless outside of traces").
    cur = resolveEntry(label);
}

void
TeaReplayer::feedCompiled(const BlockTransition &tr)
{
    // Same transition function, walking only flat arrays: CSR succ
    // entries with inlined labels, then (on the exit path) the lazy
    // local cache, then the flat global entry index.
    const CompiledTea &ct = *compiled;
    ++st.blocks;
    ++execCounts[cur];
    st.insnsTotal += tr.from.icount;
    if (cur == Tea::kNteState)
        ++st.nteBlocks;
    if (cur != Tea::kNteState) {
        st.insnsInTrace += tr.from.icount;
        if (cfg.checkConsistency) {
            Addr start = ct.stateStartOf(cur);
            if (start != tr.from.start)
                panic("replay desync: state %u maps %s but %s executed",
                      cur, hex32(start).c_str(),
                      hex32(tr.from.start).c_str());
        }
    }

    if (tr.toStart == kNoAddr)
        return; // program halted; stay put
    ++st.transitions;
    const Addr label = tr.toStart;

    if (cur != Tea::kNteState) {
        // 1. one contiguous run of (label, target) pairs.
        const CompiledTea::Succ *end = ct.succEnd(cur);
        for (const CompiledTea::Succ *p = ct.succBegin(cur); p != end;
             ++p) {
            if (p->label == label) {
                ++st.intraTraceHits;
                cur = p->target;
                return;
            }
        }
        ++st.traceExits;
        // 2. the per-state local cache.
        if (cfg.useLocalCache) {
            StateId v;
            if (cacheLookup(cur, label, v)) {
                ++st.localCacheHits;
                cur = v;
                if (cur == Tea::kNteState)
                    ++st.exitsToCold;
                return;
            }
            StateId next = resolveEntryCompiled(label);
            cacheFill(cur, label, next);
            cur = next;
            if (cur == Tea::kNteState)
                ++st.exitsToCold;
            return;
        }
        cur = resolveEntryCompiled(label);
        if (cur == Tea::kNteState)
            ++st.exitsToCold;
        return;
    }

    // 3. from NTE only the global container applies.
    cur = resolveEntryCompiled(label);
}

void
TeaReplayer::feedAll(const BlockTransition *begin,
                     const BlockTransition *end)
{
    if (compiled)
        feedCompiledBatch(begin, end);
    else
        for (const BlockTransition *p = begin; p != end; ++p)
            feedReference(*p);
}

void
TeaReplayer::feedCompiledBatch(const BlockTransition *begin,
                               const BlockTransition *end)
{
    // The same transition function as feedCompiled(), but the current
    // state and every counter live in locals for the whole batch and
    // are stored back once — per-transition memory traffic shrinks to
    // the execCounts bump plus the CSR probe itself.
    const CompiledTea &ct = *compiled;
    ReplayStats local = st;
    StateId c = cur;
    uint64_t *exec = execCounts.data();

    auto resolve = [&](Addr label) {
        ++local.globalLookups;
        StateId id = cfg.useGlobalBTree ? ct.entryAt(label)
                                        : ct.entryLinear(label);
        if (id != Tea::kNteState)
            ++local.globalHits;
        return id;
    };

    for (const BlockTransition *p = begin; p != end; ++p) {
        ++local.blocks;
        ++exec[c];
        local.insnsTotal += p->from.icount;
        if (c == Tea::kNteState) {
            ++local.nteBlocks;
            if (p->toStart == kNoAddr)
                continue;
            ++local.transitions;
            c = resolve(p->toStart);
            continue;
        }

        local.insnsInTrace += p->from.icount;
        if (cfg.checkConsistency) {
            Addr start = ct.stateStartOf(c);
            if (start != p->from.start) {
                st = local;
                cur = c;
                panic("replay desync: state %u maps %s but %s executed",
                      c, hex32(start).c_str(),
                      hex32(p->from.start).c_str());
            }
        }
        if (p->toStart == kNoAddr)
            continue;
        ++local.transitions;
        const Addr label = p->toStart;

        const CompiledTea::Succ *sEnd = ct.succEnd(c);
        const CompiledTea::Succ *s = ct.succBegin(c);
        for (; s != sEnd; ++s) {
            if (s->label == label) {
                ++local.intraTraceHits;
                c = s->target;
                break;
            }
        }
        if (s != sEnd)
            continue;

        ++local.traceExits;
        if (cfg.useLocalCache) {
            StateId v;
            if (cacheLookup(c, label, v)) {
                ++local.localCacheHits;
                c = v;
            } else {
                StateId next = resolve(label);
                cacheFill(c, label, next);
                c = next;
            }
        } else {
            c = resolve(label);
        }
        if (c == Tea::kNteState)
            ++local.exitsToCold;
    }
    st = local;
    cur = c;
}

void
TeaReplayer::setCurrentState(StateId id)
{
    TEA_ASSERT(id < nStatesTotal, "bad state id %u", id);
    cur = id;
}

void
TeaReplayer::reset()
{
    cur = Tea::kNteState;
    st = ReplayStats{};
    execCounts.assign(nStatesTotal, 0);
    cachePool.clear();
    if (cfg.useLocalCache)
        cacheSlot.assign(nStatesTotal, kNoCacheSlot);
}

} // namespace tea
