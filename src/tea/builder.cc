#include "tea/builder.hh"

#include "util/logging.hh"

namespace tea {

Tea
buildTea(const TraceSet &traces)
{
    Tea tea; // line 1-2: {NTE}, no transitions

    // Lines 3-5: one state per TBB.
    for (const Trace &t : traces.all()) {
        for (uint32_t b = 0; b < t.blocks.size(); ++b) {
            const TraceBasicBlock &tbb = t.blocks[b];
            tea.addState(t.id, b, tbb.start, tbb.end, tbb.loopHeader);
        }
    }

    // Lines 6-14: transitions out of TBBs. Successors that are trace
    // blocks get explicit transitions labeled with the successor's start
    // address; all other successors fall back to NTE implicitly.
    for (const Trace &t : traces.all()) {
        for (const Trace::Edge &e : t.edges) {
            StateId from = tea.stateFor(t.id, e.from);
            StateId to = tea.stateFor(t.id, e.to);
            TEA_ASSERT(from != Tea::kNteState && to != Tea::kNteState,
                       "edge references unknown TBB");
            tea.addTransition(from, to);
        }
    }

    // Lines 15-17: NTE -> trace entries, labeled with the start address.
    for (const Trace &t : traces.all())
        tea.addEntry(tea.stateFor(t.id, 0));

    tea.validate(traces);
    return tea;
}

} // namespace tea
