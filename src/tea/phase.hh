/**
 * @file
 * Phase detection via trace stability (extension).
 *
 * Wimmer et al. (PPPJ '09), cited in the paper's related work, identify
 * program phases from trace behaviour: when the recorded traces are
 * stable (low trace-exit ratio) the program is in a phase; when side
 * exits spike the program is between phases. TEA makes this cheap — the
 * replayer already counts trace exits — so we provide the detector as a
 * library feature (see examples/phase_detection).
 */

#ifndef TEA_TEA_PHASE_HH
#define TEA_TEA_PHASE_HH

#include <cstdint>
#include <vector>

#include "tea/replayer.hh"

namespace tea {

/**
 * Classifies execution windows as stable (inside a phase) or unstable
 * (between phases) from the replayer's running counters.
 *
 * Call sample() periodically (e.g. every N blocks); the detector works
 * on deltas between consecutive samples.
 */
class PhaseDetector
{
  public:
    struct Config
    {
        /** Exit ratio (exits / blocks) at or below which a window is
         *  stable. */
        double stableExitRatio = 0.05;
        /** Windows shorter than this many blocks are ignored. */
        uint64_t minWindowBlocks = 16;
    };

    /** One sampled window. */
    struct Window
    {
        uint64_t blocks;  ///< block executions in the window
        uint64_t exits;   ///< off-trace events (cold exits + NTE blocks)
        double ratio;     ///< exits / blocks
        bool stable;
    };

    PhaseDetector() = default;
    explicit PhaseDetector(Config config) : cfg(config) {}

    /** Feed the replayer's cumulative stats; closes one window. */
    void sample(const ReplayStats &stats);

    /** All closed windows in order. */
    const std::vector<Window> &windows() const { return wins; }

    /** True when the most recent window was stable. */
    bool inStablePhase() const;

    /** Number of maximal runs of stable windows (detected phases). */
    size_t phaseCount() const;

    /** Longest stable run, in windows. */
    size_t longestPhase() const;

  private:
    Config cfg{};
    std::vector<Window> wins;
    uint64_t lastBlocks = 0;
    uint64_t lastExits = 0;
};

} // namespace tea

#endif // TEA_TEA_PHASE_HH
