/**
 * @file
 * `.teac` — the persistent, relocatable form of a CompiledTea.
 *
 * A `.teac` file is a fixed 112-byte header followed by the compiled
 * arena verbatim: CSR successor arrays, SoA state metadata, the flat
 * entry hash, the sorted entry array, and an embedded copy of the
 * serialized source `.tea` (tea/serialize.hh). Every section is
 * addressed by an offset from the start of the *payload* (byte 112), so
 * the image is position-independent: mmap it anywhere, validate, and
 * replay straight out of the mapping — the disk bytes are byte-for-byte
 * the live lookup structures of tea/compiled.hh.
 *
 * Header (all fields little endian; offsets/sizes in bytes):
 *
 *   off  size  field          meaning
 *     0     4  magic          'TEAC' (0x43414554)
 *     4     4  version        format version; readers reject != 1
 *     8     4  flags          reserved, must be 0
 *    12     4  nStates        states incl. NTE (>= 1)
 *    16     4  nSuccs         total CSR transitions
 *    20     4  nEntries       trace entries (hash occupancy)
 *    24     4  hashCap        hash slots; power of two >= 8, > nEntries
 *    28     4  teaBytes       embedded source-.tea blob length
 *    32     8  payloadBytes   everything after the header
 *    40     8  offSuccOffset  CSR offsets    (nStates+1) x u32
 *    48     8  offSuccs       transitions    nSuccs x {u32 label, u32 id}
 *    56     8  offStateStart  start addrs    nStates x u32
 *    64     8  offStateMeta   identities     nStates x {u32 trace, u32 tbb}
 *    72     8  offHashSlots   entry hash     hashCap x {u32 addr, u32 id}
 *    80     8  offEntries     sorted entries nEntries x {u32 addr, u32 id}
 *    88     8  offTea         source blob    teaBytes x u8
 *    96     4  sourceHash     CRC-32 of the embedded .tea blob
 *   100     4  payloadCrc     CRC-32 of the payload
 *   104     4  headerCrc      CRC-32 of the header with this field zero
 *   108     4  reserved       must be 0
 *
 * Alignment & endianness rules: sections are laid out in the order
 * above, each starting at an offset that is a multiple of 8, with the
 * canonical (gap-free up to padding) offsets computed by
 * TeacLayout::compute() — a reader rejects any header whose offsets
 * deviate, so there is exactly one valid encoding of a given automaton.
 * The format is little-endian only and 32-bit-field based; writers and
 * readers on big-endian hosts fail closed rather than byte-swap.
 *
 * Versioning policy: `version` is bumped on ANY incompatible change
 * (field meaning, section order, record shape). New optional sections
 * must be appended and described by new header fields taken from
 * `flags` bits — readers reject unknown flag bits, so old readers can
 * never misparse a new image. There is no in-place migration: a
 * version-N reader rejects version-M != N files and the caller
 * recompiles from the source `.tea` (which the image embeds).
 *
 * Failure discipline: every validation failure throws a typed
 * FatalError (util/logging.hh). A `.teac` that parses is safe to replay
 * — bounds, monotonicity, hash agreement, and CRC integrity are all
 * checked up front, so the zero-copy kernel needs no per-access checks.
 *
 * Integrity tiers: the header CRC and the full structural audit are
 * unconditional — they are what make a parsed image memory-safe and
 * keep both global-lookup modes in agreement. The whole-payload CRC
 * and the source-blob hash are a second, optional tier (`verifyPayload`,
 * on by default) that additionally detects bit rot in bytes the audit
 * cannot fully constrain (e.g. state identities used for profile
 * attribution). The store's serving fault-in path turns the optional
 * tier off by default (StoreConfig::verifyPayload) because it doubles
 * cold-start cost for corruption classes the audit already catches;
 * `teadbt inspect` and the fuzz suite always run the strict tier.
 */

#ifndef TEA_TEA_TEAC_HH
#define TEA_TEA_TEAC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tea/compiled.hh"

namespace tea {

/** 'TEAC' little-endian. */
constexpr uint32_t kTeacMagic = 0x43414554u;
constexpr uint32_t kTeacVersion = 1;

/** The on-disk `.teac` header; see the file comment for field docs. */
struct TeacHeader
{
    uint32_t magic;
    uint32_t version;
    uint32_t flags;
    uint32_t nStates;
    uint32_t nSuccs;
    uint32_t nEntries;
    uint32_t hashCap;
    uint32_t teaBytes;
    uint64_t payloadBytes;
    uint64_t offSuccOffset;
    uint64_t offSuccs;
    uint64_t offStateStart;
    uint64_t offStateMeta;
    uint64_t offHashSlots;
    uint64_t offEntries;
    uint64_t offTea;
    uint32_t sourceHash;
    uint32_t payloadCrc;
    uint32_t headerCrc;
    uint32_t reserved;
};

static_assert(sizeof(TeacHeader) == 112,
              "the .teac header is a fixed 112-byte record");

/**
 * The canonical payload layout for a given shape: section offsets (from
 * payload start) and total payload size, 8-aligned, in header order.
 * Shared by the arena builder (tea/compiled.cc) and the validator, so
 * writer and reader can never disagree about geometry.
 * @throws FatalError when the sizes overflow
 */
struct TeacLayout
{
    uint64_t offSuccOffset;
    uint64_t offSuccs;
    uint64_t offStateStart;
    uint64_t offStateMeta;
    uint64_t offHashSlots;
    uint64_t offEntries;
    uint64_t offTea;
    uint64_t payloadBytes;

    static TeacLayout compute(uint32_t nStates, uint32_t nSuccs,
                              uint32_t nEntries, uint32_t hashCap,
                              uint32_t teaBytes);
};

/**
 * A validated zero-copy view over a `.teac` image.
 *
 * parse() performs the complete fail-closed validation pass: header
 * shape, CRCs, canonical geometry, and a structural audit of every
 * section (CSR monotonicity, target bounds, label/start agreement,
 * entry ordering, hash/entry cross-check, source-hash match). On
 * success the typed pointers below alias `data` directly — no bytes
 * are copied — and replay through them is guaranteed in-bounds and
 * terminating. The view does not own `data`; CompiledTea::fromMapped()
 * pairs it with the owning MappedFile.
 */
struct CompiledTeaView
{
    TeacHeader header;
    const uint8_t *payload = nullptr;
    const uint32_t *succOffset = nullptr;
    const CompiledTea::Succ *succs = nullptr;
    const Addr *stateStart = nullptr;
    const CompiledTea::StateMeta *stateMeta = nullptr;
    const CompiledTea::HashSlot *hashSlots = nullptr;
    const CompiledTea::Entry *entries = nullptr;
    const uint8_t *teaBlob = nullptr;

    /**
     * Validate `len` bytes at `data` as a `.teac` image.
     * @param verifyPayload when false, skip the payload CRC and
     *        source-blob hash passes (the header CRC and the full
     *        structural audit still run; see "Integrity tiers" above)
     * @throws FatalError on any corruption, truncation, or version
     *         mismatch — never returns a partially valid view
     */
    static CompiledTeaView parse(const uint8_t *data, size_t len,
                                 bool verifyPayload = true);
};

/**
 * Atomically write `compiled.serialize()` to `path`: the bytes land in
 * `path + ".tmp.<pid>"` first and are renamed into place, so a reader
 * (or a crash) never observes a torn image. @throws FatalError on I/O
 * failure.
 */
void saveTeacFile(const CompiledTea &compiled, const std::string &path);

} // namespace tea

#endif // TEA_TEA_TEAC_HH
