#include "tea/profiler.hh"

#include <algorithm>
#include <sstream>

#include "isa/program.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

TeaProfiler::TeaProfiler(const Tea &automaton, const TeaReplayer &rep)
    : tea(automaton), replayer(rep)
{
    bins.resize(tea.numStates());
}

void
TeaProfiler::observe(const BlockTransition &tr)
{
    StateId cur = replayer.currentState();
    TEA_ASSERT(cur < bins.size(), "profiler bound to a different TEA");

    TbbProfile &bin = bins[cur];
    ++bin.executions;
    bin.instructions += tr.from.icount;

    if (cur == Tea::kNteState || tr.toStart == kNoAddr)
        return;
    StateId next = tea.nextState(cur, tr.toStart);
    if (next != Tea::kNteState) {
        // Distinguish intra-trace edges from trace-to-trace entries.
        const TeaState &s = tea.state(cur);
        bool intra = false;
        for (StateId t : s.succs)
            intra |= t == next;
        if (intra) {
            ++edges[{cur, next}];
            return;
        }
    }
    ++exits[{cur, tr.toStart}];
}

std::vector<TeaProfiler::ExitProfile>
TeaProfiler::hotExits(size_t max_entries) const
{
    std::vector<ExitProfile> out;
    out.reserve(exits.size());
    for (const auto &[key, count] : exits)
        out.push_back({key.first, key.second, count});
    std::sort(out.begin(), out.end(),
              [](const ExitProfile &a, const ExitProfile &b) {
                  return a.count > b.count;
              });
    if (out.size() > max_entries)
        out.resize(max_entries);
    return out;
}

double
TeaProfiler::traceEntryCount(TraceId trace) const
{
    double total = 0.0;
    for (StateId id = 1; id < tea.numStates(); ++id)
        if (tea.state(id).trace == trace && tea.state(id).tbb == 0)
            total += static_cast<double>(bins[id].executions);
    return total;
}

std::string
TeaProfiler::report(const Program *prog, size_t max_rows) const
{
    std::ostringstream os;
    os << "TEA profile: " << tea.numTbbStates() << " TBB states\n";

    // Hottest TBBs first.
    std::vector<StateId> order;
    for (StateId id = 1; id < tea.numStates(); ++id)
        if (bins[id].executions > 0)
            order.push_back(id);
    std::sort(order.begin(), order.end(), [&](StateId a, StateId b) {
        return bins[a].executions > bins[b].executions;
    });
    if (order.size() > max_rows)
        order.resize(max_rows);

    for (StateId id : order) {
        const TeaState &s = tea.state(id);
        std::string name = hex32(s.start);
        if (prog) {
            std::string label = prog->labelAt(s.start);
            if (!label.empty())
                name = label;
        }
        os << strprintf("  $$T%u.%-12s %12llu execs %14llu instrs\n",
                        s.trace + 1, name.c_str(),
                        static_cast<unsigned long long>(
                            bins[id].executions),
                        static_cast<unsigned long long>(
                            bins[id].instructions));
    }

    auto hot = hotExits(8);
    if (!hot.empty()) {
        os << "hot side exits:\n";
        for (const ExitProfile &e : hot) {
            const TeaState &s = tea.state(e.from);
            os << strprintf("  $$T%u.%s -> %s: %llu\n", s.trace + 1,
                            hex32(s.start).c_str(), hex32(e.to).c_str(),
                            static_cast<unsigned long long>(e.count));
        }
    }
    return os.str();
}

void
TeaProfiler::merge(const std::string &text)
{
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    if (!std::getline(stream, line) ||
        trim(line) != std::string("teaprofile 1"))
        fatal("profile: bad header");
    ++line_no;
    while (std::getline(stream, line)) {
        ++line_no;
        auto fields = splitWhitespace(line);
        if (fields.empty())
            continue;
        auto want = [&](size_t n) {
            if (fields.size() != n)
                fatal("profile line %d: expected %zu fields", line_no, n);
        };
        auto num = [&](const std::string &s) -> uint64_t {
            int64_t v;
            if (!parseInt(s, v) || v < 0)
                fatal("profile line %d: bad number '%s'", line_no,
                      s.c_str());
            return static_cast<uint64_t>(v);
        };
        if (fields[0] == "tbb") {
            want(5);
            StateId id = tea.stateFor(static_cast<TraceId>(num(fields[1])),
                                      static_cast<uint32_t>(num(fields[2])));
            if (id == Tea::kNteState)
                fatal("profile line %d: unknown TBB", line_no);
            bins[id].executions += num(fields[3]);
            bins[id].instructions += num(fields[4]);
        } else if (fields[0] == "edge") {
            want(4);
            StateId from = static_cast<StateId>(num(fields[1]));
            StateId to = static_cast<StateId>(num(fields[2]));
            if (from == Tea::kNteState || from >= tea.numStates() ||
                to == Tea::kNteState || to >= tea.numStates())
                fatal("profile line %d: bad edge", line_no);
            edges[{from, to}] += num(fields[3]);
        } else if (fields[0] == "exit") {
            want(4);
            StateId from = static_cast<StateId>(num(fields[1]));
            if (from == Tea::kNteState || from >= tea.numStates())
                fatal("profile line %d: bad exit source", line_no);
            exits[{from, static_cast<Addr>(num(fields[2]))}] +=
                num(fields[3]);
        } else {
            fatal("profile line %d: unknown record '%s'", line_no,
                  fields[0].c_str());
        }
    }
}

std::string
TeaProfiler::serialize() const
{
    std::ostringstream os;
    os << "teaprofile 1\n";
    for (StateId id = 1; id < bins.size(); ++id) {
        if (bins[id].executions == 0)
            continue;
        const TeaState &s = tea.state(id);
        os << "tbb " << s.trace << " " << s.tbb << " "
           << bins[id].executions << " " << bins[id].instructions << "\n";
    }
    for (const auto &[key, count] : edges)
        os << "edge " << key.first << " " << key.second << " " << count
           << "\n";
    for (const auto &[key, count] : exits)
        os << "exit " << key.first << " " << hex32(key.second) << " "
           << count << "\n";
    return os.str();
}

} // namespace tea
