#include "tea/recorder.hh"

#include "util/logging.hh"

namespace tea {

namespace {

/** Merge b into a field-wise. */
void
accumulate(ReplayStats &a, const ReplayStats &b)
{
    a.blocks += b.blocks;
    a.insnsTotal += b.insnsTotal;
    a.insnsInTrace += b.insnsInTrace;
    a.transitions += b.transitions;
    a.intraTraceHits += b.intraTraceHits;
    a.traceExits += b.traceExits;
    a.exitsToCold += b.exitsToCold;
    a.nteBlocks += b.nteBlocks;
    a.localCacheHits += b.localCacheHits;
    a.globalLookups += b.globalLookups;
    a.globalHits += b.globalHits;
}

} // namespace

TeaRecorder::TeaRecorder(std::unique_ptr<TraceSelector> sel,
                         LookupConfig config)
    : selector(std::move(sel)), cfg(config)
{
    TEA_ASSERT(selector != nullptr, "recorder needs a selector");
    // "Initial": InitializeTEA — an automaton with only the NTE state.
    automaton = buildTea(traceSet);
    replayer = std::make_unique<TeaReplayer>(automaton, cfg);
}

TeaRecorder::~TeaRecorder() = default;

ReplayStats
TeaRecorder::stats() const
{
    ReplayStats total = accumulated;
    accumulate(total, replayer->stats());
    return total;
}

void
TeaRecorder::install(RecordingResult result)
{
    if (result.kind == RecordingResult::Kind::Aborted)
        return;

    if (result.kind == RecordingResult::Kind::NewTrace)
        traceSet.add(std::move(result.trace));
    else
        traceSet.replace(result.extends, std::move(result.trace));
    ++installCount;

    // Rebuild the automaton and re-seat the replayer. State ids change,
    // so reposition from the address about to execute: entering a trace
    // is only possible at its entry (NTE transitions), so entryAt() is
    // exactly the automaton's answer.
    accumulate(accumulated, replayer->stats());
    automaton = buildTea(traceSet);
    replayer = std::make_unique<TeaReplayer>(automaton, cfg);
    if (lastToStart != kNoAddr)
        replayer->setCurrentState(automaton.entryAt(lastToStart));
}

void
TeaRecorder::feed(const BlockTransition &tr)
{
    // Build the policy's view of where the automaton is *before* the
    // transition: the Current TBB of Algorithm 2.
    StateId pre = replayer->currentState();
    SelectorContext ctx{traceSet, pre != Tea::kNteState, 0, 0, false};
    if (ctx.inTrace) {
        const TeaState &s = automaton.state(pre);
        ctx.curTrace = s.trace;
        ctx.curTbb = s.tbb;
        if (tr.toStart == kNoAddr) {
            ctx.exitsTrace = true;
        } else {
            bool intra = false;
            for (StateId t : s.succs)
                if (automaton.state(t).start == tr.toStart)
                    intra = true;
            ctx.exitsTrace = !intra;
        }
    }

    // ChangeState(TEA, Current, Next).
    replayer->feed(tr);
    lastToStart = tr.toStart;

    switch (recState) {
      case RecState::Executing: {
        ExecutingAction action = selector->onExecuting(tr, ctx);
        if (action == ExecutingAction::StartRecording)
            recState = RecState::Creating;
        else if (action == ExecutingAction::FinishImmediately)
            install(selector->finish(traceSet));
        break;
      }
      case RecState::Creating: {
        CreatingAction action = selector->onCreating(tr, ctx);
        if (action != CreatingAction::Continue) {
            install(selector->finish(traceSet));
            recState = RecState::Executing;
        }
        break;
      }
    }
}

} // namespace tea
