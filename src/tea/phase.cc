#include "tea/phase.hh"

namespace tea {

void
PhaseDetector::sample(const ReplayStats &stats)
{
    // "Off-trace" events: transitions that fell out of all traces into
    // cold code, plus block executions spent in NTE. Both are ~zero
    // while the recorded traces match the program's current behaviour
    // and spike between phases (Wimmer et al.'s stability criterion).
    uint64_t off_trace = stats.exitsToCold + stats.nteBlocks;
    uint64_t blocks = stats.blocks - lastBlocks;
    uint64_t exits = off_trace - lastExits;
    lastBlocks = stats.blocks;
    lastExits = off_trace;
    if (blocks < cfg.minWindowBlocks)
        return;

    Window w;
    w.blocks = blocks;
    w.exits = exits;
    w.ratio = static_cast<double>(exits) / static_cast<double>(blocks);
    w.stable = w.ratio <= cfg.stableExitRatio;
    wins.push_back(w);
}

bool
PhaseDetector::inStablePhase() const
{
    return !wins.empty() && wins.back().stable;
}

size_t
PhaseDetector::phaseCount() const
{
    size_t phases = 0;
    bool in_run = false;
    for (const Window &w : wins) {
        if (w.stable && !in_run) {
            ++phases;
            in_run = true;
        } else if (!w.stable) {
            in_run = false;
        }
    }
    return phases;
}

size_t
PhaseDetector::longestPhase() const
{
    size_t best = 0;
    size_t run = 0;
    for (const Window &w : wins) {
        run = w.stable ? run + 1 : 0;
        best = std::max(best, run);
    }
    return best;
}

} // namespace tea
