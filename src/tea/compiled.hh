/**
 * @file
 * CompiledTea: an immutable, cache-flat snapshot of a frozen Tea.
 *
 * The mutable `Tea` is built for construction: per-state `succs`
 * vectors (one heap allocation each), an `unordered_map` entry index,
 * and a node-based B+ tree bolted on at replay time. Every transition
 * of the reference replay path therefore chases at least two pointers
 * — the succs vector's buffer, then the target `TeaState` to read its
 * start address — before it can even compare a label.
 *
 * Compilation freezes the automaton into contiguous arrays once, so the
 * hot transition function of §4.2 touches only flat memory:
 *
 * - **CSR successor arrays**: one `Succ {label, target}` stream for the
 *   whole automaton, indexed by a `numStates()+1` offset table. The
 *   transition label (the target's start address) is inlined next to
 *   the target id, so the common-case intra-trace probe is a scan over
 *   one contiguous run of 8-byte entries — no per-target state loads.
 * - **Flat open-addressed hash** over the NTE trace-entry addresses
 *   (power-of-two table, multiplicative hashing, linear probing): the
 *   default global lookup, replacing the node B+ tree's pointer walk
 *   with at most a few probes in one array. The B+ tree and the linked
 *   list survive as `LookupConfig` ablation modes (Table 4).
 * - **Flat sorted entry array**: the compiled stand-in for the paper's
 *   linear trace list, used when the global index is ablated away.
 * - **SoA state metadata** (`stateStart`): the consistency check and
 *   profile mapping read a plain `Addr` array instead of `TeaState`
 *   records.
 *
 * A CompiledTea is a pure in-memory acceleration structure: the
 * serialized TEA byte format is untouched (docs/FORMATS.md), and the
 * compiled kernel's observable behaviour — `ReplayStats`, per-TBB
 * profiles, the state sequence — is bit-identical to the reference
 * path (tests/test_compiled.cc proves it differentially).
 *
 * Immutability makes snapshots shareable: the registry compiles each
 * automaton once at put(), and every svc worker and net session replays
 * against the same `shared_ptr<const CompiledTea>` lock-free.
 */

#ifndef TEA_TEA_COMPILED_HH
#define TEA_TEA_COMPILED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "tea/automaton.hh"

namespace tea {

class CompiledTea
{
  public:
    /** One CSR successor entry: the transition label inlined next to
     *  the target state id (8 bytes, no padding). */
    struct Succ
    {
        Addr label;     ///< start address of the target TBB
        StateId target; ///< the state the transition enters
    };

    /** Compile a frozen automaton (does not retain `tea`). */
    explicit CompiledTea(const Tea &tea);

    /**
     * Compile and keep the source snapshot alive: the returned
     * CompiledTea co-owns `tea`, so a registry (or job) holding only
     * the compiled snapshot can never outlive its automaton.
     */
    static std::shared_ptr<const CompiledTea>
    compile(std::shared_ptr<const Tea> tea);

    /** Total states including NTE (slot 0). */
    uint32_t numStates() const { return nStates; }

    /** Trace entries indexed by the flat hash. */
    size_t numEntries() const { return entriesFlat.size(); }

    /** The contiguous successor run of a state. */
    const Succ *
    succBegin(StateId id) const
    {
        return succs.data() + succOffset[id];
    }
    const Succ *
    succEnd(StateId id) const
    {
        return succs.data() + succOffset[id + 1];
    }

    /** Start address of a state (kNoAddr for NTE). */
    Addr stateStartOf(StateId id) const { return stateStart[id]; }

    /**
     * Global lookup, flat-hash mode: the compiled default. At most a
     * handful of linear probes in one power-of-two array.
     * @return the entry state, or Tea::kNteState when no trace starts
     *         at `addr`
     */
    StateId
    entryAt(Addr addr) const
    {
        uint32_t slot = hashOf(addr) & hashMask;
        for (;;) {
            const HashSlot &h = hashSlots[slot];
            if (h.addr == addr)
                return h.state;
            if (h.addr == kNoAddr)
                return Tea::kNteState;
            slot = (slot + 1) & hashMask;
        }
    }

    /**
     * Global lookup, linear mode: scan the flat entry array. The
     * compiled counterpart of the paper's unindexed trace list — still
     * O(entries), kept as the "No Global" ablation.
     */
    StateId
    entryLinear(Addr addr) const
    {
        for (const auto &[entry, id] : entriesFlat)
            if (entry == addr)
                return id;
        return Tea::kNteState;
    }

    /** Trace entries, sorted by address (mirrors Tea::entries()). */
    const std::vector<std::pair<Addr, StateId>> &
    entries() const
    {
        return entriesFlat;
    }

    /** Resident bytes of every compiled array (memory accounting). */
    size_t footprintBytes() const;

    /** The co-owned source automaton; null when built by constructor. */
    const std::shared_ptr<const Tea> &sourceTea() const { return source; }

    /**
     * Total CompiledTea constructions since process start. The
     * compile-once contract (registry + batch sharing) is asserted by
     * the stress tests against this counter.
     */
    static uint64_t compileCount();

  private:
    struct HashSlot
    {
        Addr addr;     ///< kNoAddr marks an empty slot
        StateId state;
    };

    static uint32_t
    hashOf(Addr addr)
    {
        // Fibonacci multiplicative hash; entry addresses are
        // word-aligned, so mix the high bits back down.
        uint32_t h = addr * 0x9e3779b9u;
        return h ^ (h >> 16);
    }

    uint32_t nStates = 0;
    std::vector<uint32_t> succOffset; ///< CSR offsets, size nStates + 1
    std::vector<Succ> succs;          ///< all transitions, state-major
    std::vector<Addr> stateStart;     ///< per-state start address (SoA)
    std::vector<HashSlot> hashSlots;  ///< open-addressed entry index
    uint32_t hashMask = 0;            ///< hashSlots.size() - 1
    std::vector<std::pair<Addr, StateId>> entriesFlat; ///< sorted entries
    std::shared_ptr<const Tea> source; ///< set by compile() only
};

} // namespace tea

#endif // TEA_TEA_COMPILED_HH
