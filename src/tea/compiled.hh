/**
 * @file
 * CompiledTea: an immutable, cache-flat snapshot of a frozen Tea.
 *
 * The mutable `Tea` is built for construction: per-state `succs`
 * vectors (one heap allocation each), an `unordered_map` entry index,
 * and a node-based B+ tree bolted on at replay time. Every transition
 * of the reference replay path therefore chases at least two pointers
 * — the succs vector's buffer, then the target `TeaState` to read its
 * start address — before it can even compare a label.
 *
 * Compilation freezes the automaton into contiguous arrays once, so the
 * hot transition function of §4.2 touches only flat memory:
 *
 * - **CSR successor arrays**: one `Succ {label, target}` stream for the
 *   whole automaton, indexed by a `numStates()+1` offset table. The
 *   transition label (the target's start address) is inlined next to
 *   the target id, so the common-case intra-trace probe is a scan over
 *   one contiguous run of 8-byte entries — no per-target state loads.
 * - **Flat open-addressed hash** over the NTE trace-entry addresses
 *   (power-of-two table, multiplicative hashing, linear probing): the
 *   default global lookup, replacing the node B+ tree's pointer walk
 *   with at most a few probes in one array. The B+ tree and the linked
 *   list survive as `LookupConfig` ablation modes (Table 4).
 * - **Flat sorted entry array**: the compiled stand-in for the paper's
 *   linear trace list, used when the global index is ablated away.
 * - **SoA state metadata** (`stateStart`, plus the `(trace, tbb)`
 *   identity of every state): the consistency check, profile mapping,
 *   and per-TBB reporting read plain arrays instead of `TeaState`
 *   records — which also makes a compiled image self-describing, so a
 *   replay needs no `Tea` at all.
 *
 * Every array lives in ONE contiguous, offset-addressed arena laid out
 * exactly as the persistent `.teac` payload (tea/teac.hh): serializing
 * a compiled automaton is a header plus a verbatim copy of the arena,
 * and loading one is an mmap plus validation — the bytes on disk are
 * byte-for-byte the live lookup structures, so a mapped snapshot
 * replays with zero deserialization. The serialized TEA byte format
 * itself is untouched (docs/FORMATS.md); a copy of it is embedded in
 * the arena so a mapped image can rehydrate its source automaton on
 * demand (the reference-kernel escape hatch).
 *
 * The compiled kernel's observable behaviour — `ReplayStats`, per-TBB
 * profiles, the state sequence — is bit-identical to the reference
 * path whether it walks a RAM-built arena or a mapped file
 * (tests/test_compiled.cc and tests/test_store.cc prove it
 * differentially).
 *
 * Immutability makes snapshots shareable: the registry compiles each
 * automaton once at put(), and every svc worker and net session replays
 * against the same `shared_ptr<const CompiledTea>` lock-free. A
 * mapped CompiledTea co-owns its MappedFile, so LRU eviction in the
 * store can never unmap an image a replay still walks.
 */

#ifndef TEA_TEA_COMPILED_HH
#define TEA_TEA_COMPILED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "tea/automaton.hh"

namespace tea {

class MappedFile;
struct CompiledTeaView;

class CompiledTea
{
  public:
    /** One CSR successor entry: the transition label inlined next to
     *  the target state id (8 bytes, no padding). */
    struct Succ
    {
        Addr label;     ///< start address of the target TBB
        StateId target; ///< the state the transition enters
    };

    /** One trace entry of the flat sorted array (NTE out-transition). */
    struct Entry
    {
        Addr addr;     ///< trace entry address
        StateId state; ///< the entry TBB's state
    };

    /** One slot of the open-addressed entry hash. */
    struct HashSlot
    {
        Addr addr; ///< kNoAddr marks an empty slot
        StateId state;
    };

    /** The (trace, tbb) identity of a state (slot 0 = NTE, both ~0u). */
    struct StateMeta
    {
        uint32_t trace;
        uint32_t tbb;
    };

    /** Compile a frozen automaton (does not retain `tea`). */
    explicit CompiledTea(const Tea &tea);

    /**
     * Compile and keep the source snapshot alive: the returned
     * CompiledTea co-owns `tea`, so a registry (or job) holding only
     * the compiled snapshot can never outlive its automaton.
     */
    static std::shared_ptr<const CompiledTea>
    compile(std::shared_ptr<const Tea> tea);

    /** Outcome report of recompile(): which path ran and how much of
     *  the previous arena it reused. */
    struct RecompileInfo
    {
        bool incremental = false; ///< delta path (or unchanged reuse)
        bool unchanged = false;   ///< `prev` was returned as-is
        uint32_t reusedStates = 0;
        uint32_t addedStates = 0;
        const char *fallbackReason = nullptr; ///< set when full compile ran
    };

    /**
     * Incremental recompile for online recording: a snapshot of `tea`
     * that reuses the unchanged prefix of `prev`'s arena instead of
     * rebuilding every section, so recompile cost tracks the *growth*,
     * not the automaton size.
     *
     * Append-only growth (the recorder's NewTrace case) keeps state ids
     * and the per-state CSR prefix byte-stable: buildTea() assigns ids
     * in trace order and trace edges never cross traces, so appending a
     * trace appends states. The delta path memcpys the first prevN
     * states' offset/succ/start/meta records and builds only the
     * appended ones. The entry hash and sorted entry array are rebuilt
     * in full from Tea::entries() — O(traces), not O(states), and the
     * sorted iteration keeps their bytes canonical.
     *
     * Falls back to a full compile (reporting why through `info`) when
     * `prev` is null, growth was not append-only (ExtendTrace replaces
     * a trace and reshuffles ids), the automaton shrank, or the
     * appended state fraction exceeds `maxChurn`. When nothing grew at
     * all it returns `prev` itself.
     *
     * The delta snapshot is *blobless* — no embedded `.tea` copy — and
     * co-owns `tea` instead; serialize() regenerates the canonical full
     * image from the source, so persisted `.teac` bytes stay
     * bit-identical to an offline compile. Write-through pays that
     * full-compile cost only when a snapshot is persisted, not per
     * delta.
     */
    static std::shared_ptr<const CompiledTea>
    recompile(std::shared_ptr<const Tea> tea,
              const std::shared_ptr<const CompiledTea> &prev,
              bool appendOnly, double maxChurn = 0.5,
              RecompileInfo *info = nullptr);

    /**
     * Zero-copy load: validate `file` as a `.teac` image (tea/teac.hh)
     * and serve replay directly from the mapped bytes. The returned
     * snapshot co-owns the mapping, so it stays valid after the store
     * evicts (or even deletes) the file. No deserialization happens —
     * construction cost is header validation plus the structural
     * audit (plus one CRC pass over the payload in strict mode).
     *
     * @param verifyPayload when false, skip the payload CRC and
     *        source-hash passes (the structural audit still runs; see
     *        the "Integrity tiers" note in tea/teac.hh) — the store's
     *        serving default, and right for callers that trust the
     *        file (e.g. one they just wrote).
     * @throws FatalError on any corruption — never returns a view that
     *         could crash or silently misreplay
     */
    static std::shared_ptr<const CompiledTea>
    fromMapped(std::shared_ptr<const MappedFile> file,
               bool verifyPayload = true);

    /** Map `path` and fromMapped() it. @throws FatalError. */
    static std::shared_ptr<const CompiledTea>
    fromFile(const std::string &path, bool verifyPayload = true);

    /**
     * The relocatable on-disk form: a `.teac` header followed by the
     * arena verbatim (see tea/teac.hh for the exact layout).
     */
    std::vector<uint8_t> serialize() const;

    /** Total states including NTE (slot 0). */
    uint32_t numStates() const { return nStates; }

    /** Trace entries indexed by the flat hash. */
    size_t numEntries() const { return nEntries_; }

    /** Total CSR transitions. */
    size_t numSuccs() const { return nSuccs_; }

    /** The contiguous successor run of a state. */
    const Succ *
    succBegin(StateId id) const
    {
        return succsP + succOffsetP[id];
    }
    const Succ *
    succEnd(StateId id) const
    {
        return succsP + succOffsetP[id + 1];
    }

    /** Start address of a state (kNoAddr for NTE). */
    Addr stateStartOf(StateId id) const { return stateStartP[id]; }

    /** Owning trace of a state (~0u for NTE). */
    uint32_t stateTraceOf(StateId id) const { return stateMetaP[id].trace; }

    /** TBB index of a state within its trace (~0u for NTE). */
    uint32_t stateTbbOf(StateId id) const { return stateMetaP[id].tbb; }

    /**
     * State representing (trace, tbb), or Tea::kNteState when absent.
     * A linear scan — profile reporting only, never the replay path.
     */
    StateId stateFor(uint32_t trace, uint32_t tbb) const;

    /**
     * Global lookup, flat-hash mode: the compiled default. At most a
     * handful of linear probes in one power-of-two array.
     * @return the entry state, or Tea::kNteState when no trace starts
     *         at `addr`
     */
    StateId
    entryAt(Addr addr) const
    {
        uint32_t slot = hashOf(addr) & hashMask;
        for (;;) {
            const HashSlot &h = hashSlotsP[slot];
            if (h.addr == addr)
                return h.state;
            if (h.addr == kNoAddr)
                return Tea::kNteState;
            slot = (slot + 1) & hashMask;
        }
    }

    /**
     * Global lookup, linear mode: scan the flat entry array. The
     * compiled counterpart of the paper's unindexed trace list — still
     * O(entries), kept as the "No Global" ablation.
     */
    StateId
    entryLinear(Addr addr) const
    {
        for (const Entry *p = entriesP; p != entriesP + nEntries_; ++p)
            if (p->addr == addr)
                return p->state;
        return Tea::kNteState;
    }

    /** Trace entries, sorted by address (mirrors Tea::entries()). */
    const Entry *entriesBegin() const { return entriesP; }
    const Entry *entriesEnd() const { return entriesP + nEntries_; }

    /**
     * Resident bytes of the lookup structures (memory accounting for
     * Table 1/4 comparisons). Excludes the embedded source-TEA blob —
     * that is provenance, not a structure the kernel walks.
     */
    size_t footprintBytes() const;

    /** The whole arena (payload) size: every section incl. the blob. */
    size_t arenaBytes() const { return static_cast<size_t>(payloadLen); }

    /** The embedded serialized source automaton (tea/serialize.hh). */
    const uint8_t *teaBlob() const { return teaBlobP; }
    size_t teaBlobBytes() const { return teaBlobLen_; }

    /**
     * Deserialize the embedded source blob back into a Tea — the slow
     * path that makes the reference kernel (and consistency ablations)
     * available even for a mapped image whose Tea was never loaded.
     * @throws FatalError when the blob is corrupt
     */
    Tea rehydrateTea() const;

    /** True when this snapshot serves replay out of a mapped file. */
    bool isMapped() const { return mapped != nullptr; }

    /** The co-owned source automaton; null when built by constructor
     *  or loaded from a mapping. */
    const std::shared_ptr<const Tea> &sourceTea() const { return source; }

    /**
     * Total CompiledTea *compilations* (constructions from a Tea) since
     * process start. Mapped loads do not count — that is the point of
     * the store: the compile-once contract and the mmap-never-compiles
     * contract are both asserted against this counter.
     */
    static uint64_t compileCount();

    /** Total delta recompiles since process start. A delta bumps this,
     *  never compileCount() — the store's compile-once and
     *  mmap-never-compiles contracts stay assertable. */
    static uint64_t recompileCount();

    static uint32_t
    hashOf(Addr addr)
    {
        // Fibonacci multiplicative hash; entry addresses are
        // word-aligned, so mix the high bits back down.
        uint32_t h = addr * 0x9e3779b9u;
        return h ^ (h >> 16);
    }

  private:
    friend struct CompiledTeaView;

    CompiledTea() = default;

    /** Point the typed section pointers into `payload`. */
    void adoptView(const CompiledTeaView &view);

    uint32_t nStates = 0;
    uint32_t nSuccs_ = 0;
    uint32_t nEntries_ = 0;
    uint32_t hashMask = 0;      ///< hash capacity - 1
    uint32_t teaBlobLen_ = 0;

    // Typed views into the arena; identical whether the payload is the
    // owned vector below or a mapped file.
    const uint32_t *succOffsetP = nullptr; ///< CSR offsets, nStates + 1
    const Succ *succsP = nullptr;          ///< transitions, state-major
    const Addr *stateStartP = nullptr;     ///< per-state start address
    const StateMeta *stateMetaP = nullptr; ///< per-state (trace, tbb)
    const HashSlot *hashSlotsP = nullptr;  ///< open-addressed index
    const Entry *entriesP = nullptr;       ///< sorted entries
    const uint8_t *teaBlobP = nullptr;     ///< serialized source TEA

    const uint8_t *payloadP = nullptr; ///< the whole arena
    uint64_t payloadLen = 0;

    std::vector<uint8_t> arena; ///< owned payload (RAM compilation)
    std::shared_ptr<const MappedFile> mapped; ///< mapped payload
    std::shared_ptr<const Tea> source; ///< set by compile() only
};

static_assert(sizeof(CompiledTea::Succ) == 8 &&
              sizeof(CompiledTea::Entry) == 8 &&
              sizeof(CompiledTea::HashSlot) == 8 &&
              sizeof(CompiledTea::StateMeta) == 8,
              "the .teac sections are arrays of packed 8-byte records");

} // namespace tea

#endif // TEA_TEA_COMPILED_HH
