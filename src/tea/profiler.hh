/**
 * @file
 * Trace profiling on top of TEA replay.
 *
 * The paper's second motivating use (§1-2): collect accurate profile
 * information for traces *before* any trace code exists — per-TBB
 * execution counts, intra-trace edge counts, and side-exit histograms,
 * with duplicated blocks kept in separate bins ("the ability to label
 * duplicate instructions differently for every copy"). Profiles can be
 * serialized next to the traces for reuse in future runs.
 */

#ifndef TEA_TEA_PROFILER_HH
#define TEA_TEA_PROFILER_HH

#include <map>
#include <string>
#include <vector>

#include "tea/replayer.hh"

namespace tea {

class Program;

/**
 * Accumulates a trace profile from the replayer's block stream.
 *
 * Feed it the same BlockTransitions the TeaReplayer receives, *after*
 * feeding the replayer (it reads the replayer's state to attribute
 * events). The TeaProfiler never affects the transition function; it is
 * an analysis client like the paper's pintool.
 */
class TeaProfiler
{
  public:
    /** Per-TBB profile record. */
    struct TbbProfile
    {
        uint64_t executions = 0;   ///< times this TBB ran
        uint64_t instructions = 0; ///< dynamic instructions inside it
    };

    /** One side exit: (TBB state, destination address) -> count. */
    struct ExitProfile
    {
        StateId from;
        Addr to;
        uint64_t count;
    };

    TeaProfiler(const Tea &tea, const TeaReplayer &replayer);

    /**
     * Record one transition. Call immediately *before* feeding the
     * replayer so the pre-transition state attributes the block.
     */
    void observe(const BlockTransition &tr);

    /** Per-TBB bins, indexed by state id (0 = NTE aggregate). */
    const std::vector<TbbProfile> &tbbProfiles() const { return bins; }

    /** Intra-trace edge counts: (from state, to state) -> count. */
    const std::map<std::pair<StateId, StateId>, uint64_t> &
    edgeCounts() const
    {
        return edges;
    }

    /** Side exits sorted by decreasing count. */
    std::vector<ExitProfile> hotExits(size_t max_entries = 16) const;

    /**
     * Completion ratio of a trace: executions of its last-executed TBBs
     * relative to entries. Approximated as entry-state executions vs
     * cyclic returns; a low value flags unstable traces.
     */
    double traceEntryCount(TraceId trace) const;

    /** Render a human-readable report (the pintool's output). */
    std::string report(const Program *prog = nullptr,
                       size_t max_rows = 32) const;

    /** Serialize to a text form that can be stored with the traces. */
    std::string serialize() const;

    /**
     * Merge a previously stored profile (the paper's "reuse in future
     * executions"): counts from `text` are added onto this profiler's
     * bins. The profile must have been taken over the same trace set;
     * records that do not match a state are rejected.
     * @throws FatalError on malformed text or mismatched states.
     */
    void merge(const std::string &text);

  private:
    const Tea &tea;
    const TeaReplayer &replayer;
    std::vector<TbbProfile> bins;
    std::map<std::pair<StateId, StateId>, uint64_t> edges;
    std::map<std::pair<StateId, Addr>, uint64_t> exits;
};

} // namespace tea

#endif // TEA_TEA_PROFILER_HH
