#include "tea/compiled.hh"

#include <atomic>

#include "util/logging.hh"

namespace tea {

namespace {

std::atomic<uint64_t> compileCounter{0};

/** Smallest power of two >= 2 * n (min 8): keeps the open-addressed
 *  table at most half full, so probe chains stay short. */
uint32_t
hashCapacity(size_t n)
{
    uint32_t cap = 8;
    while (cap < 2 * n)
        cap *= 2;
    return cap;
}

} // namespace

CompiledTea::CompiledTea(const Tea &tea)
{
    compileCounter.fetch_add(1, std::memory_order_relaxed);
    nStates = static_cast<uint32_t>(tea.numStates());

    // SoA state metadata. NTE (slot 0) keeps kNoAddr.
    stateStart.assign(nStates, kNoAddr);
    for (StateId id = 1; id < nStates; ++id)
        stateStart[id] = tea.state(id).start;

    // CSR successor arrays, labels inlined. NTE's run is empty (its
    // out-transitions are the entry index below).
    succOffset.assign(nStates + 1, 0);
    for (StateId id = 1; id < nStates; ++id)
        succOffset[id + 1] =
            succOffset[id] +
            static_cast<uint32_t>(tea.state(id).succs.size());
    succs.resize(succOffset[nStates]);
    for (StateId id = 1; id < nStates; ++id) {
        uint32_t at = succOffset[id];
        for (StateId t : tea.state(id).succs)
            succs[at++] = Succ{stateStart[t], t};
    }

    // Entry index: flat sorted array + open-addressed hash.
    entriesFlat = tea.entries();
    uint32_t cap = hashCapacity(entriesFlat.size());
    hashMask = cap - 1;
    hashSlots.assign(cap, HashSlot{kNoAddr, Tea::kNteState});
    for (const auto &[addr, id] : entriesFlat) {
        TEA_ASSERT(addr != kNoAddr, "entry at the invalid address");
        uint32_t slot = hashOf(addr) & hashMask;
        while (hashSlots[slot].addr != kNoAddr)
            slot = (slot + 1) & hashMask;
        hashSlots[slot] = HashSlot{addr, id};
    }
}

std::shared_ptr<const CompiledTea>
CompiledTea::compile(std::shared_ptr<const Tea> tea)
{
    TEA_ASSERT(tea != nullptr, "compiling a null automaton snapshot");
    auto compiled = std::make_shared<CompiledTea>(*tea);
    compiled->source = std::move(tea);
    return compiled;
}

size_t
CompiledTea::footprintBytes() const
{
    return succOffset.size() * sizeof(uint32_t) +
           succs.size() * sizeof(Succ) +
           stateStart.size() * sizeof(Addr) +
           hashSlots.size() * sizeof(HashSlot) +
           entriesFlat.size() * sizeof(entriesFlat[0]);
}

uint64_t
CompiledTea::compileCount()
{
    return compileCounter.load(std::memory_order_relaxed);
}

} // namespace tea
