#include "tea/compiled.hh"

#include <atomic>
#include <cstring>

#include "tea/serialize.hh"
#include "tea/teac.hh"
#include "util/logging.hh"
#include "util/mmap.hh"

namespace tea {

namespace {

std::atomic<uint64_t> compileCounter{0};
std::atomic<uint64_t> recompileCounter{0};

/** Smallest power of two >= 2 * n (min 8): keeps the open-addressed
 *  table at most half full, so probe chains stay short. */
uint32_t
hashCapacity(size_t n)
{
    uint32_t cap = 8;
    while (cap < 2 * n)
        cap *= 2;
    return cap;
}

} // namespace

CompiledTea::CompiledTea(const Tea &tea)
{
    compileCounter.fetch_add(1, std::memory_order_relaxed);
    nStates = static_cast<uint32_t>(tea.numStates());
    nEntries_ = static_cast<uint32_t>(tea.entries().size());

    uint64_t succTotal = 0;
    for (StateId id = 1; id < nStates; ++id)
        succTotal += tea.state(id).succs.size();
    TEA_ASSERT(succTotal <= 0xffffffffull, "transition count overflow");
    nSuccs_ = static_cast<uint32_t>(succTotal);

    uint32_t cap = hashCapacity(nEntries_);
    hashMask = cap - 1;

    std::vector<uint8_t> blob = saveTea(tea);
    TEA_ASSERT(blob.size() <= 0xffffffffull, "source TEA blob overflow");
    teaBlobLen_ = static_cast<uint32_t>(blob.size());

    // Build every section in place inside one arena laid out exactly as
    // the .teac payload, so serialize() is a verbatim copy and a mapped
    // image is indistinguishable from a fresh compile.
    TeacLayout lay =
        TeacLayout::compute(nStates, nSuccs_, nEntries_, cap, teaBlobLen_);
    arena.assign(lay.payloadBytes, 0);
    uint8_t *base = arena.data();
    auto *succOffset = reinterpret_cast<uint32_t *>(base + lay.offSuccOffset);
    auto *succsOut = reinterpret_cast<Succ *>(base + lay.offSuccs);
    auto *stateStart = reinterpret_cast<Addr *>(base + lay.offStateStart);
    auto *stateMeta = reinterpret_cast<StateMeta *>(base + lay.offStateMeta);
    auto *hashSlots = reinterpret_cast<HashSlot *>(base + lay.offHashSlots);
    auto *entriesOut = reinterpret_cast<Entry *>(base + lay.offEntries);

    // SoA state metadata. NTE (slot 0) keeps kNoAddr / ~0u identity.
    stateStart[0] = kNoAddr;
    stateMeta[0] = StateMeta{~0u, ~0u};
    for (StateId id = 1; id < nStates; ++id) {
        const TeaState &st = tea.state(id);
        stateStart[id] = st.start;
        stateMeta[id] = StateMeta{st.trace, st.tbb};
    }

    // CSR successor arrays, labels inlined. NTE's run is empty (its
    // out-transitions are the entry index below).
    succOffset[0] = 0;
    succOffset[1] = 0;
    for (StateId id = 1; id < nStates; ++id)
        succOffset[id + 1] =
            succOffset[id] +
            static_cast<uint32_t>(tea.state(id).succs.size());
    for (StateId id = 1; id < nStates; ++id) {
        uint32_t at = succOffset[id];
        for (StateId t : tea.state(id).succs)
            succsOut[at++] = Succ{stateStart[t], t};
    }

    // Entry index: flat sorted array + open-addressed hash.
    for (uint32_t i = 0; i < cap; ++i)
        hashSlots[i] = HashSlot{kNoAddr, Tea::kNteState};
    uint32_t at = 0;
    for (const auto &[addr, id] : tea.entries()) {
        TEA_ASSERT(addr != kNoAddr, "entry at the invalid address");
        entriesOut[at++] = Entry{addr, id};
        uint32_t slot = hashOf(addr) & hashMask;
        while (hashSlots[slot].addr != kNoAddr)
            slot = (slot + 1) & hashMask;
        hashSlots[slot] = HashSlot{addr, id};
    }

    std::memcpy(base + lay.offTea, blob.data(), blob.size());

    payloadP = base;
    payloadLen = lay.payloadBytes;
    succOffsetP = succOffset;
    succsP = succsOut;
    stateStartP = stateStart;
    stateMetaP = stateMeta;
    hashSlotsP = hashSlots;
    entriesP = entriesOut;
    teaBlobP = base + lay.offTea;
}

std::shared_ptr<const CompiledTea>
CompiledTea::compile(std::shared_ptr<const Tea> tea)
{
    TEA_ASSERT(tea != nullptr, "compiling a null automaton snapshot");
    auto compiled = std::make_shared<CompiledTea>(*tea);
    compiled->source = std::move(tea);
    return compiled;
}

std::shared_ptr<const CompiledTea>
CompiledTea::recompile(std::shared_ptr<const Tea> tea,
                       const std::shared_ptr<const CompiledTea> &prev,
                       bool appendOnly, double maxChurn,
                       RecompileInfo *info)
{
    TEA_ASSERT(tea != nullptr, "recompiling a null automaton snapshot");
    RecompileInfo local;
    RecompileInfo &out = info != nullptr ? *info : local;
    out = RecompileInfo{};

    uint32_t newN = static_cast<uint32_t>(tea->numStates());
    const char *fallback = nullptr;
    if (prev == nullptr)
        fallback = "no previous snapshot";
    else if (!appendOnly)
        fallback = "non-append growth";
    else if (newN < prev->nStates)
        fallback = "automaton shrank";
    else if (double(newN - prev->nStates) > maxChurn * double(newN))
        fallback = "churn over threshold";
    if (fallback != nullptr) {
        out.fallbackReason = fallback;
        return compile(std::move(tea));
    }

    uint32_t prevN = prev->nStates;
    if (newN == prevN) {
        // Append-only with no new states means no new trace: identical
        // automaton, nothing to build.
        out.incremental = true;
        out.unchanged = true;
        out.reusedStates = prevN;
        return prev;
    }

    // Spot-check the append-only claim against the last reused state;
    // the full differential lives in tests/test_rec.cc.
    if (prevN > 1) {
        const TeaState &last = tea->state(prevN - 1);
        TEA_ASSERT(prev->stateStartP[prevN - 1] == last.start &&
                       prev->stateMetaP[prevN - 1].trace == last.trace,
                   "recompile: previous snapshot is not a prefix of the "
                   "grown automaton");
    }

    recompileCounter.fetch_add(1, std::memory_order_relaxed);

    uint32_t nEntries = static_cast<uint32_t>(tea->entries().size());
    // The reused prefix pins its transition count; only appended states
    // contribute new CSR records.
    uint64_t succTotal = prev->nSuccs_;
    for (StateId id = prevN; id < newN; ++id)
        succTotal += tea->state(id).succs.size();
    TEA_ASSERT(succTotal <= 0xffffffffull, "transition count overflow");
    uint32_t nSuccs = static_cast<uint32_t>(succTotal);
    uint32_t cap = hashCapacity(nEntries);

    // Blobless arena (teaBytes = 0): the source .tea copy is the one
    // section whose cost scales with the whole automaton, so deltas
    // skip it and co-own the source instead; serialize() regenerates
    // the canonical blob-bearing image on persist.
    TeacLayout lay = TeacLayout::compute(newN, nSuccs, nEntries, cap, 0);
    std::shared_ptr<CompiledTea> compiled(new CompiledTea());
    CompiledTea &c = *compiled;
    c.nStates = newN;
    c.nSuccs_ = nSuccs;
    c.nEntries_ = nEntries;
    c.hashMask = cap - 1;
    c.teaBlobLen_ = 0;
    c.arena.assign(lay.payloadBytes, 0);
    uint8_t *base = c.arena.data();
    auto *succOffset = reinterpret_cast<uint32_t *>(base + lay.offSuccOffset);
    auto *succsOut = reinterpret_cast<Succ *>(base + lay.offSuccs);
    auto *stateStart = reinterpret_cast<Addr *>(base + lay.offStateStart);
    auto *stateMeta = reinterpret_cast<StateMeta *>(base + lay.offStateMeta);
    auto *hashSlots = reinterpret_cast<HashSlot *>(base + lay.offHashSlots);
    auto *entriesOut = reinterpret_cast<Entry *>(base + lay.offEntries);

    // Reused prefix: verbatim copies out of the previous arena (owned
    // or mapped — the typed pointers read the same either way).
    std::memcpy(succOffset, prev->succOffsetP,
                (size_t(prevN) + 1) * sizeof(uint32_t));
    std::memcpy(succsOut, prev->succsP, size_t(prev->nSuccs_) * sizeof(Succ));
    std::memcpy(stateStart, prev->stateStartP, size_t(prevN) * sizeof(Addr));
    std::memcpy(stateMeta, prev->stateMetaP,
                size_t(prevN) * sizeof(StateMeta));

    // Appended states. Starts and identities first: appended traces'
    // edges are intra-trace, so a new state's succ targets (and their
    // labels) land inside the appended range being filled here.
    for (StateId id = prevN; id < newN; ++id) {
        const TeaState &st = tea->state(id);
        stateStart[id] = st.start;
        stateMeta[id] = StateMeta{st.trace, st.tbb};
    }
    for (StateId id = prevN; id < newN; ++id) {
        const TeaState &st = tea->state(id);
        succOffset[id + 1] =
            succOffset[id] + static_cast<uint32_t>(st.succs.size());
        uint32_t at = succOffset[id];
        for (StateId t : st.succs)
            succsOut[at++] = Succ{stateStart[t], t};
    }

    // Entry index: rebuilt in full. O(traces) — cheap next to the state
    // sections — and Tea::entries() iterates sorted by address, so the
    // hash fill order (hence the bytes) matches a full compile exactly.
    for (uint32_t i = 0; i < cap; ++i)
        hashSlots[i] = HashSlot{kNoAddr, Tea::kNteState};
    uint32_t at = 0;
    for (const auto &[addr, id] : tea->entries()) {
        TEA_ASSERT(addr != kNoAddr, "entry at the invalid address");
        entriesOut[at++] = Entry{addr, id};
        uint32_t slot = hashOf(addr) & c.hashMask;
        while (hashSlots[slot].addr != kNoAddr)
            slot = (slot + 1) & c.hashMask;
        hashSlots[slot] = HashSlot{addr, id};
    }

    c.payloadP = base;
    c.payloadLen = lay.payloadBytes;
    c.succOffsetP = succOffset;
    c.succsP = succsOut;
    c.stateStartP = stateStart;
    c.stateMetaP = stateMeta;
    c.hashSlotsP = hashSlots;
    c.entriesP = entriesOut;
    c.teaBlobP = base + lay.offTea;
    c.source = std::move(tea);

    out.incremental = true;
    out.reusedStates = prevN;
    out.addedStates = newN - prevN;
    return compiled;
}

std::shared_ptr<const CompiledTea>
CompiledTea::fromMapped(std::shared_ptr<const MappedFile> file,
                        bool verifyPayload)
{
    TEA_ASSERT(file != nullptr, "loading a null mapping");
    CompiledTeaView view =
        CompiledTeaView::parse(file->data(), file->size(), verifyPayload);
    std::shared_ptr<CompiledTea> compiled(new CompiledTea());
    compiled->adoptView(view);
    compiled->mapped = std::move(file);
    return compiled;
}

std::shared_ptr<const CompiledTea>
CompiledTea::fromFile(const std::string &path, bool verifyPayload)
{
    return fromMapped(MappedFile::openShared(path), verifyPayload);
}

void
CompiledTea::adoptView(const CompiledTeaView &view)
{
    nStates = view.header.nStates;
    nSuccs_ = view.header.nSuccs;
    nEntries_ = view.header.nEntries;
    hashMask = view.header.hashCap - 1;
    teaBlobLen_ = view.header.teaBytes;
    succOffsetP = view.succOffset;
    succsP = view.succs;
    stateStartP = view.stateStart;
    stateMetaP = view.stateMeta;
    hashSlotsP = view.hashSlots;
    entriesP = view.entries;
    teaBlobP = view.teaBlob;
    payloadP = view.payload;
    payloadLen = view.header.payloadBytes;
}

StateId
CompiledTea::stateFor(uint32_t trace, uint32_t tbb) const
{
    for (StateId id = 1; id < nStates; ++id)
        if (stateMetaP[id].trace == trace && stateMetaP[id].tbb == tbb)
            return id;
    return Tea::kNteState;
}

Tea
CompiledTea::rehydrateTea() const
{
    // Blobless delta snapshots carry their source live instead of
    // serialized.
    if (teaBlobLen_ == 0 && source != nullptr)
        return *source;
    return loadTea(std::vector<uint8_t>(teaBlobP, teaBlobP + teaBlobLen_));
}

size_t
CompiledTea::footprintBytes() const
{
    return (size_t(nStates) + 1) * sizeof(uint32_t) + // succOffset
           size_t(nSuccs_) * sizeof(Succ) +
           size_t(nStates) * sizeof(Addr) +           // stateStart
           size_t(nStates) * sizeof(StateMeta) +
           (size_t(hashMask) + 1) * sizeof(HashSlot) +
           size_t(nEntries_) * sizeof(Entry);
}

uint64_t
CompiledTea::compileCount()
{
    return compileCounter.load(std::memory_order_relaxed);
}

uint64_t
CompiledTea::recompileCount()
{
    return recompileCounter.load(std::memory_order_relaxed);
}

} // namespace tea
