#include "tea/teac.hh"

#include <bit>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "util/crc32.hh"
#include "util/logging.hh"

namespace tea {

// The format is little-endian only (see the header comment); this
// library targets little-endian hosts, so a big-endian port must add
// byte-swapping rather than silently writing a foreign byte order.
static_assert(std::endian::native == std::endian::little,
              "the .teac format requires a little-endian host");

namespace {

uint64_t
align8(uint64_t v)
{
    return (v + 7) & ~uint64_t(7);
}

/** Payload ceiling: u32 counts bound every section below 2^35 bytes,
 *  so anything past this is a corrupt header, not a big automaton. */
constexpr uint64_t kMaxPayload = uint64_t(1) << 38;

/**
 * Cold path of the structural audit: the fast pass below only
 * accumulates a did-anything-fail flag (so it stays branch-light and
 * auto-vectorizable on the hot mmap-load path); when it trips, this
 * walk re-runs every check one element at a time to name the culprit
 * in the FatalError. Never returns.
 */
[[noreturn]] [[gnu::noinline]] void
auditDiagnose(const CompiledTeaView &view, const TeacHeader &h)
{
    if (view.succOffset[0] != 0)
        fatal("teac: CSR offset table does not start at 0");
    for (uint32_t i = 0; i < h.nStates; ++i)
        if (view.succOffset[i + 1] < view.succOffset[i])
            fatal("teac: CSR offset table is not monotone at state %u", i);
    if (view.succOffset[h.nStates] != h.nSuccs)
        fatal("teac: CSR offset table ends at %u, want %u transitions",
              view.succOffset[h.nStates], h.nSuccs);
    if (view.succOffset[1] != 0)
        fatal("teac: the NTE state has explicit successors");

    if (view.stateStart[0] != kNoAddr)
        fatal("teac: the NTE state has a start address");
    if (view.stateMeta[0].trace != ~0u || view.stateMeta[0].tbb != ~0u)
        fatal("teac: the NTE state has a trace identity");
    for (uint32_t i = 1; i < h.nStates; ++i) {
        if (view.stateStart[i] == kNoAddr)
            fatal("teac: state %u has no start address", i);
        if (view.stateMeta[i].trace == ~0u)
            fatal("teac: state %u has no owning trace", i);
    }

    for (uint32_t i = 0; i < h.nSuccs; ++i) {
        const CompiledTea::Succ &s = view.succs[i];
        if (s.target == Tea::kNteState || s.target >= h.nStates)
            fatal("teac: transition %u targets invalid state %u", i,
                  s.target);
        if (s.label != view.stateStart[s.target])
            fatal("teac: transition %u label 0x%08x disagrees with its "
                  "target's start 0x%08x",
                  i, s.label, view.stateStart[s.target]);
    }

    uint32_t occupied = 0;
    for (uint32_t i = 0; i < h.hashCap; ++i) {
        const CompiledTea::HashSlot &slot = view.hashSlots[i];
        if (slot.addr == kNoAddr)
            continue;
        ++occupied;
        if (slot.state == Tea::kNteState || slot.state >= h.nStates)
            fatal("teac: hash slot %u holds invalid state %u", i,
                  slot.state);
    }
    if (occupied != h.nEntries)
        fatal("teac: hash table holds %u entries, header promises %u",
              occupied, h.nEntries);

    Addr prevAddr = 0;
    for (uint32_t i = 0; i < h.nEntries; ++i) {
        const CompiledTea::Entry &e = view.entries[i];
        if (e.addr == kNoAddr)
            fatal("teac: entry %u at the invalid address", i);
        if (i > 0 && e.addr <= prevAddr)
            fatal("teac: entry array is not strictly sorted at index %u", i);
        prevAddr = e.addr;
        if (e.state == Tea::kNteState || e.state >= h.nStates)
            fatal("teac: entry %u maps to invalid state %u", i, e.state);
    }

    // The fast pass saw a violation the loops above cannot reproduce —
    // impossible unless they ever fall out of sync; fail closed anyway.
    fatal("teac: structural audit failed");
}

} // namespace

TeacLayout
TeacLayout::compute(uint32_t nStates, uint32_t nSuccs, uint32_t nEntries,
                    uint32_t hashCap, uint32_t teaBytes)
{
    TeacLayout lay{};
    uint64_t off = 0;
    lay.offSuccOffset = off;
    off = align8(off + (uint64_t(nStates) + 1) * sizeof(uint32_t));
    lay.offSuccs = off;
    off += uint64_t(nSuccs) * sizeof(CompiledTea::Succ);
    lay.offStateStart = off;
    off = align8(off + uint64_t(nStates) * sizeof(Addr));
    lay.offStateMeta = off;
    off += uint64_t(nStates) * sizeof(CompiledTea::StateMeta);
    lay.offHashSlots = off;
    off += uint64_t(hashCap) * sizeof(CompiledTea::HashSlot);
    lay.offEntries = off;
    off += uint64_t(nEntries) * sizeof(CompiledTea::Entry);
    lay.offTea = off;
    off = align8(off + teaBytes);
    lay.payloadBytes = off;
    if (off > kMaxPayload)
        fatal("teac: implausible payload size %llu",
              static_cast<unsigned long long>(off));
    return lay;
}

CompiledTeaView
CompiledTeaView::parse(const uint8_t *data, size_t len, bool verifyPayload)
{
    if (data == nullptr || len < sizeof(TeacHeader))
        fatal("teac: truncated image: %zu bytes, header needs %zu", len,
              sizeof(TeacHeader));
    if ((reinterpret_cast<uintptr_t>(data) & 7) != 0)
        fatal("teac: image base is not 8-byte aligned");

    TeacHeader h;
    std::memcpy(&h, data, sizeof(h));
    if (h.magic != kTeacMagic)
        fatal("teac: bad magic 0x%08x (want 0x%08x)", h.magic, kTeacMagic);

    // Authenticate the header before trusting any other field.
    TeacHeader crcView = h;
    crcView.headerCrc = 0;
    uint32_t wantHeaderCrc = crc32(&crcView, sizeof(crcView));
    if (h.headerCrc != wantHeaderCrc)
        fatal("teac: header CRC mismatch (stored 0x%08x, computed 0x%08x)",
              h.headerCrc, wantHeaderCrc);

    if (h.version != kTeacVersion)
        fatal("teac: unsupported format version %u (this reader speaks %u)",
              h.version, kTeacVersion);
    if (h.flags != 0)
        fatal("teac: unknown flag bits 0x%08x", h.flags);
    if (h.reserved != 0)
        fatal("teac: nonzero reserved field 0x%08x", h.reserved);
    if (h.nStates == 0)
        fatal("teac: zero states (the NTE state must exist)");
    if (h.hashCap < 8 || (h.hashCap & (h.hashCap - 1)) != 0)
        fatal("teac: hash capacity %u is not a power of two >= 8",
              h.hashCap);
    // A strictly under-full table guarantees every probe chain hits an
    // empty slot, so entryAt() terminates on any address.
    if (h.nEntries >= h.hashCap)
        fatal("teac: hash table overfull: %u entries in %u slots",
              h.nEntries, h.hashCap);

    // The offsets are a pure function of the counts: recompute and
    // require an exact match, so there is one valid geometry and no
    // section can alias or escape the payload.
    TeacLayout lay = TeacLayout::compute(h.nStates, h.nSuccs, h.nEntries,
                                         h.hashCap, h.teaBytes);
    if (h.payloadBytes != lay.payloadBytes)
        fatal("teac: payload size %llu does not match the declared shape "
              "(canonical %llu)",
              static_cast<unsigned long long>(h.payloadBytes),
              static_cast<unsigned long long>(lay.payloadBytes));
    if (len != sizeof(TeacHeader) + h.payloadBytes)
        fatal("teac: image is %zu bytes but the header promises %llu", len,
              static_cast<unsigned long long>(sizeof(TeacHeader) +
                                              h.payloadBytes));
    if (h.offSuccOffset != lay.offSuccOffset || h.offSuccs != lay.offSuccs ||
        h.offStateStart != lay.offStateStart ||
        h.offStateMeta != lay.offStateMeta ||
        h.offHashSlots != lay.offHashSlots ||
        h.offEntries != lay.offEntries || h.offTea != lay.offTea)
        fatal("teac: non-canonical section offsets");

    const uint8_t *payload = data + sizeof(TeacHeader);
    if (verifyPayload) {
        uint32_t wantPayloadCrc = crc32(payload, h.payloadBytes);
        if (h.payloadCrc != wantPayloadCrc)
            fatal("teac: payload CRC mismatch (stored 0x%08x, computed "
                  "0x%08x)",
                  h.payloadCrc, wantPayloadCrc);
    }
    // (The source-TEA hash is part of the same optional tier: it is
    // checked below only under verifyPayload, since the blob is never
    // walked by the kernel — rehydrateTea() re-validates it in full.)

    CompiledTeaView view;
    view.header = h;
    view.payload = payload;
    view.succOffset =
        reinterpret_cast<const uint32_t *>(payload + lay.offSuccOffset);
    view.succs = reinterpret_cast<const CompiledTea::Succ *>(
        payload + lay.offSuccs);
    view.stateStart =
        reinterpret_cast<const Addr *>(payload + lay.offStateStart);
    view.stateMeta = reinterpret_cast<const CompiledTea::StateMeta *>(
        payload + lay.offStateMeta);
    view.hashSlots = reinterpret_cast<const CompiledTea::HashSlot *>(
        payload + lay.offHashSlots);
    view.entries = reinterpret_cast<const CompiledTea::Entry *>(
        payload + lay.offEntries);
    view.teaBlob = payload + lay.offTea;

    // Structural audit: after this pass the zero-copy kernel can walk
    // the image with no per-access bounds checks. Each section is
    // scanned with a branch-free accumulator (this is the hot part of
    // every store fault-in, so the good path must not branch per
    // element); any violation drops to auditDiagnose() for the exact
    // per-element error message.
    uint32_t bad = 0;

    // CSR offsets: monotone, 0-based, NTE succ-free, total == nSuccs.
    bad |= static_cast<uint32_t>(view.succOffset[0] != 0);
    bad |= static_cast<uint32_t>(view.succOffset[1] != 0);
    bad |= static_cast<uint32_t>(view.succOffset[h.nStates] != h.nSuccs);
    for (uint32_t i = 0; i < h.nStates; ++i)
        bad |= static_cast<uint32_t>(view.succOffset[i + 1] <
                                     view.succOffset[i]);

    // Per-state SoA: only NTE may lack a start address or an owning
    // trace, and NTE must lack both.
    bad |= static_cast<uint32_t>(view.stateStart[0] != kNoAddr);
    bad |= static_cast<uint32_t>(view.stateMeta[0].trace != ~0u ||
                                 view.stateMeta[0].tbb != ~0u);
    for (uint32_t i = 1; i < h.nStates; ++i) {
        bad |= static_cast<uint32_t>(view.stateStart[i] == kNoAddr);
        bad |= static_cast<uint32_t>(view.stateMeta[i].trace == ~0u);
    }

    // Transitions: in-range non-NTE targets whose start address equals
    // the inlined label. The gather index is clamped to 0 once the
    // bounds bit is set, so a corrupt target can never read OOB.
    for (uint32_t i = 0; i < h.nSuccs; ++i) {
        uint32_t t = view.succs[i].target;
        uint32_t oob = static_cast<uint32_t>(t == Tea::kNteState ||
                                             t >= h.nStates);
        bad |= oob;
        bad |= static_cast<uint32_t>(
            view.stateStart[oob != 0 ? 0 : t] != view.succs[i].label);
    }

    // Hash slots: occupied count matches the header, every occupied
    // slot holds an in-range non-NTE state.
    uint32_t occupied = 0;
    for (uint32_t i = 0; i < h.hashCap; ++i) {
        uint32_t occ =
            static_cast<uint32_t>(view.hashSlots[i].addr != kNoAddr);
        occupied += occ;
        bad |= occ & static_cast<uint32_t>(
                         view.hashSlots[i].state == Tea::kNteState ||
                         view.hashSlots[i].state >= h.nStates);
    }
    bad |= static_cast<uint32_t>(occupied != h.nEntries);

    // Entries: strictly sorted, valid addresses, in-range states.
    Addr prevAddr = 0;
    for (uint32_t i = 0; i < h.nEntries; ++i) {
        const CompiledTea::Entry &e = view.entries[i];
        bad |= static_cast<uint32_t>(e.addr == kNoAddr);
        bad |= static_cast<uint32_t>(i > 0 && e.addr <= prevAddr);
        bad |= static_cast<uint32_t>(e.state == Tea::kNteState ||
                                     e.state >= h.nStates);
        prevAddr = e.addr;
    }
    if (bad != 0)
        auditDiagnose(view, h);

    // Cross-check the hash: every entry address must probe to the same
    // state, so the "No Global" ablation and the default lookup can
    // never diverge. Probes terminate because the table is under-full
    // (checked above); with occupancy == nEntries and the entry array
    // strictly sorted, a full bijection follows.
    uint32_t mask = h.hashCap - 1;
    for (uint32_t i = 0; i < h.nEntries; ++i) {
        const CompiledTea::Entry &e = view.entries[i];
        uint32_t slot = CompiledTea::hashOf(e.addr) & mask;
        for (;;) {
            const CompiledTea::HashSlot &hs = view.hashSlots[slot];
            if (hs.addr == e.addr) {
                if (hs.state != e.state)
                    fatal("teac: hash and entry array disagree at address "
                          "0x%08x",
                          e.addr);
                break;
            }
            if (hs.addr == kNoAddr)
                fatal("teac: entry address 0x%08x is missing from the "
                      "hash table",
                      e.addr);
            slot = (slot + 1) & mask;
        }
    }

    if (verifyPayload) {
        uint32_t wantSourceHash = crc32(view.teaBlob, h.teaBytes);
        if (h.sourceHash != wantSourceHash)
            fatal("teac: source-TEA hash mismatch (stored 0x%08x, "
                  "computed 0x%08x)",
                  h.sourceHash, wantSourceHash);
    }

    return view;
}

std::vector<uint8_t>
CompiledTea::serialize() const
{
    // A blobless delta snapshot (CompiledTea::recompile) has no
    // embedded source copy; its persistent form is the canonical full
    // compile of the co-owned source, so `.teac` bytes on disk are
    // bit-identical to an offline compile of the same automaton.
    if (teaBlobLen_ == 0 && sourceTea() != nullptr)
        return CompiledTea(*sourceTea()).serialize();

    TeacHeader h{};
    h.magic = kTeacMagic;
    h.version = kTeacVersion;
    h.flags = 0;
    h.nStates = nStates;
    h.nSuccs = nSuccs_;
    h.nEntries = nEntries_;
    h.hashCap = hashMask + 1;
    h.teaBytes = teaBlobLen_;
    h.payloadBytes = payloadLen;
    TeacLayout lay = TeacLayout::compute(nStates, nSuccs_, nEntries_,
                                         hashMask + 1, teaBlobLen_);
    TEA_ASSERT(lay.payloadBytes == payloadLen,
               "compiled arena disagrees with the canonical layout");
    h.offSuccOffset = lay.offSuccOffset;
    h.offSuccs = lay.offSuccs;
    h.offStateStart = lay.offStateStart;
    h.offStateMeta = lay.offStateMeta;
    h.offHashSlots = lay.offHashSlots;
    h.offEntries = lay.offEntries;
    h.offTea = lay.offTea;
    h.sourceHash = crc32(teaBlobP, teaBlobLen_);
    h.payloadCrc = crc32(payloadP, payloadLen);
    h.reserved = 0;
    h.headerCrc = 0;
    h.headerCrc = crc32(&h, sizeof(h));

    std::vector<uint8_t> out(sizeof(TeacHeader) + payloadLen);
    std::memcpy(out.data(), &h, sizeof(h));
    std::memcpy(out.data() + sizeof(h), payloadP, payloadLen);
    return out;
}

void
saveTeacFile(const CompiledTea &compiled, const std::string &path)
{
    std::vector<uint8_t> bytes = compiled.serialize();
    // Write-then-rename so a concurrent reader (or a crash mid-write)
    // sees either the old image or the new one, never a torn file.
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        fatal("cannot create '%s'", tmp.c_str());
    size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
    int flushed = std::fflush(f);
    if (std::fclose(f) != 0 || put != bytes.size() || flushed != 0) {
        std::remove(tmp.c_str());
        fatal("short write to '%s'", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("cannot rename '%s' into place", tmp.c_str());
    }
}

} // namespace tea
