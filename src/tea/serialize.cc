#include "tea/serialize.hh"

#include <fstream>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

namespace {

constexpr uint32_t kMagic = 0x54454141; // "TEAA"
constexpr uint32_t kVersion = 2;

void
put8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

void
put16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    put16(out, static_cast<uint16_t>(v));
    put16(out, static_cast<uint16_t>(v >> 16));
}

/** LEB128 (7 bits per byte, high bit = continue). */
void
putVar(std::vector<uint8_t> &out, uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint8_t
get8(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    if (cursor >= bytes.size())
        fatal("tea: truncated input");
    return bytes[cursor++];
}

uint16_t
get16(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    uint16_t lo = get8(bytes, cursor);
    uint16_t hi = get8(bytes, cursor);
    return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t
get32(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    uint32_t lo = get16(bytes, cursor);
    uint32_t hi = get16(bytes, cursor);
    return lo | (hi << 16);
}

uint32_t
getVar(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    uint32_t v = 0;
    int shift = 0;
    for (;;) {
        uint8_t byte = get8(bytes, cursor);
        v |= static_cast<uint32_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
        if (shift > 28)
            fatal("tea: varint too long");
    }
}

} // namespace

std::vector<uint8_t>
saveTea(const Tea &tea)
{
    size_t n = tea.numTbbStates();

    // Count traces and their block counts; states are grouped by trace.
    std::vector<uint32_t> blocks_per_trace;
    for (size_t i = 1; i <= n; ++i) {
        const TeaState &s = tea.state(static_cast<StateId>(i));
        if (s.trace >= blocks_per_trace.size())
            blocks_per_trace.resize(s.trace + 1, 0);
        if (s.tbb != blocks_per_trace[s.trace])
            fatal("tea: states not grouped by trace; cannot serialize");
        ++blocks_per_trace[s.trace];
    }

    std::vector<uint8_t> out;
    put32(out, kMagic);
    put32(out, kVersion);
    put32(out, static_cast<uint32_t>(n));
    put32(out, static_cast<uint32_t>(blocks_per_trace.size()));
    for (uint32_t count : blocks_per_trace)
        putVar(out, count);

    bool wide_ids = n >= 0xffff;
    put8(out, wide_ids ? 1 : 0);
    for (size_t i = 1; i <= n; ++i) {
        const TeaState &s = tea.state(static_cast<StateId>(i));
        put32(out, s.start);
        putVar(out, s.end - s.start);
        put8(out, s.loopHeader ? 1 : 0);
        putVar(out, static_cast<uint32_t>(s.succs.size()));
        for (StateId t : s.succs) {
            if (wide_ids)
                put32(out, t);
            else
                put16(out, static_cast<uint16_t>(t));
        }
    }
    return out;
}

Tea
loadTea(const std::vector<uint8_t> &bytes)
{
    size_t cursor = 0;
    if (get32(bytes, cursor) != kMagic)
        fatal("tea: bad magic");
    if (get32(bytes, cursor) != kVersion)
        fatal("tea: unsupported version");
    uint32_t nstates = get32(bytes, cursor);
    uint32_t ntraces = get32(bytes, cursor);

    if (nstates > 100'000'000 || ntraces > nstates + 1)
        fatal("tea: implausible header (%u states, %u traces)", nstates,
              ntraces);
    std::vector<uint32_t> blocks_per_trace(ntraces);
    uint64_t total = 0;
    for (uint32_t i = 0; i < ntraces; ++i) {
        blocks_per_trace[i] = getVar(bytes, cursor);
        if (blocks_per_trace[i] == 0)
            fatal("tea: trace %u has no blocks", i);
        total += blocks_per_trace[i];
    }
    if (total != nstates)
        fatal("tea: trace block counts (%llu) disagree with state count "
              "(%u)", static_cast<unsigned long long>(total), nstates);

    Tea tea;
    struct Pending
    {
        StateId id;
        std::vector<StateId> succs;
    };
    std::vector<Pending> pending;
    pending.reserve(nstates);

    bool wide_ids = get8(bytes, cursor) != 0;
    uint32_t trace = 0;
    uint32_t tbb = 0;
    for (uint32_t i = 0; i < nstates; ++i) {
        while (trace < ntraces && tbb >= blocks_per_trace[trace]) {
            ++trace;
            tbb = 0;
        }
        if (trace >= ntraces)
            fatal("tea: state outside any trace");
        Addr start = get32(bytes, cursor);
        uint32_t delta = getVar(bytes, cursor);
        if (delta > 0xffffff)
            fatal("tea: implausible block length %u", delta);
        Addr end = start + delta;
        bool loop_header = (get8(bytes, cursor) & 1) != 0;
        uint32_t ntrans = getVar(bytes, cursor);
        if (ntrans > nstates)
            fatal("tea: state with %u transitions", ntrans);
        StateId id = tea.addState(trace, tbb, start, end, loop_header);
        Pending p;
        p.id = id;
        p.succs.reserve(ntrans);
        for (uint32_t j = 0; j < ntrans; ++j)
            p.succs.push_back(wide_ids ? get32(bytes, cursor)
                                       : get16(bytes, cursor));
        pending.push_back(std::move(p));
        ++tbb;
    }
    if (cursor != bytes.size())
        fatal("tea: %zu trailing bytes", bytes.size() - cursor);

    for (const Pending &p : pending) {
        for (StateId t : p.succs) {
            if (t == Tea::kNteState || t > nstates)
                fatal("tea: bad transition target %u", t);
            tea.addTransition(p.id, t);
        }
    }
    // Entries: TBB 0 of every trace. Corrupt inputs can carry two
    // traces with the same entry address; report that as bad data
    // rather than tripping the library invariant.
    for (uint32_t t = 0; t < ntraces; ++t) {
        StateId entry = tea.stateFor(t, 0);
        if (tea.entryAt(tea.state(entry).start) != Tea::kNteState)
            fatal("tea: duplicate trace entry address");
        tea.addEntry(entry);
    }
    return tea;
}

void
saveTeaFile(const Tea &tea, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    auto bytes = saveTea(tea);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        fatal("error writing '%s'", path.c_str());
}

Tea
loadTeaFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    return loadTea(bytes);
}

} // namespace tea
