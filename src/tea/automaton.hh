/**
 * @file
 * The Trace Execution Automaton (TEA) itself.
 *
 * A TEA is a DFA with one state per TBB plus the distinguished NTE state
 * ("No Trace being Executed"). Transition labels are guest program
 * counters: feeding the executing block-start stream into the automaton
 * keeps its current state synchronized with the trace copy (TBB) the
 * program is logically inside — without any replicated trace code.
 *
 * Representation notes (these drive the Table 1 memory numbers):
 * - A transition's label is always the *start address of its target TBB*
 *   (the PC that triggers it, §3), so per-state transition lists store
 *   only target state ids; labels are read from the target state.
 * - Transitions to NTE are implicit: any label not matched by the current
 *   state's list and not entering a trace falls back to NTE. This mirrors
 *   Algorithm 1, which adds TBB->NTE transitions precisely for the labels
 *   it does not otherwise account for.
 * - NTE's out-transitions are the trace entry points; they are resolved
 *   through a pluggable lookup structure at replay time (§4.2).
 */

#ifndef TEA_TEA_AUTOMATON_HH
#define TEA_TEA_AUTOMATON_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.hh"

namespace tea {

class Program;

/** A TEA state id; kNteState (0) is the NTE state. */
using StateId = uint32_t;

/** One automaton state: a TBB of some trace. */
struct TeaState
{
    TraceId trace;  ///< owning trace
    uint32_t tbb;   ///< TBB index within the trace
    Addr start;     ///< block start address (== incoming label)
    Addr end;       ///< block end address
    bool loopHeader;
    /**
     * Out-transitions: target state ids. The label of the transition to
     * target t is states[t].start.
     */
    std::vector<StateId> succs;
};

/**
 * The whole-program automaton of Figure 3(b).
 */
class Tea
{
  public:
    /** The NTE state's id. */
    static constexpr StateId kNteState = 0;

    Tea();

    /** Total states including NTE. */
    size_t numStates() const { return states.size(); }

    /** Number of TBB states (excluding NTE). */
    size_t numTbbStates() const { return states.size() - 1; }

    /** Total explicit transitions (TBB->TBB plus NTE->entry). */
    size_t numTransitions() const;

    /** State record; id must be a TBB state (not NTE). */
    const TeaState &state(StateId id) const;

    /** State representing (trace, tbb), or kNteState when absent. */
    StateId stateFor(TraceId trace, uint32_t tbb) const;

    /** Trace entry points: (entry address, entry state), sorted by addr. */
    const std::vector<std::pair<Addr, StateId>> &entries() const
    {
        return entryList;
    }

    /** Entry state at addr, or kNteState when no trace starts there. */
    StateId entryAt(Addr addr) const;

    /**
     * The canonical transition function (reference semantics; the
     * TeaReplayer implements the same function with the §4.2 lookup
     * accelerators).
     *
     * @param cur   current state
     * @param label the next executing block's start address
     * @return the next state (kNteState when the label leaves all traces)
     */
    StateId nextState(StateId cur, Addr label) const;

    /** @name Construction (used by TeaBuilder / deserialization) */
    /// @{
    /** Append a TBB state. @return its id. */
    StateId addState(TraceId trace, uint32_t tbb, Addr start, Addr end,
                     bool loop_header);

    /** Add a transition from -> to (label implied by `to`). */
    void addTransition(StateId from, StateId to);

    /** Register a trace entry (an NTE out-transition). */
    void addEntry(StateId to);

    /** Drop everything back to just the NTE state. */
    void clear();
    /// @}

    /**
     * Verify DFA invariants (Properties 1 and 2 of the paper given the
     * source trace set): every TBB has a state; every intra-trace edge
     * has a transition; determinism (one target per (state, label));
     * entry list is sorted and unique.
     * @throws PanicError on violation.
     */
    void validate(const TraceSet &traces) const;

    /**
     * Serialized size in bytes of the compact binary form — the "TEA"
     * column of Table 1 (see tea/serialize.hh for the exact layout).
     */
    size_t serializedBytes() const;

    /** Render the automaton in GraphViz DOT (Figure 3 reproduction). */
    std::string toDot(const std::string &name,
                      const Program *prog = nullptr) const;

  private:
    /**
     * states[0] is a placeholder for NTE (its succs stay empty; NTE
     * transitions live in entryList).
     */
    std::vector<TeaState> states;
    std::vector<std::pair<Addr, StateId>> entryList;
    std::unordered_map<Addr, StateId> entryMap;
    std::unordered_map<uint64_t, StateId> byTraceTbb;
};

} // namespace tea

#endif // TEA_TEA_AUTOMATON_HH
