/**
 * @file
 * Compact binary (de)serialization of a TEA.
 *
 * This is the representation whose size the Table 1 "TEA" column
 * reports: the complete trace shape with **zero replicated code bytes**.
 *
 * Layout (little endian, varints are LEB128):
 *   u32 magic 'TEAA'   u32 version   u32 #tbb-states   u32 #traces
 *   per trace:  varint block count (states are stored grouped by trace,
 *               in TBB order; TBB 0 is the trace entry, so NTE
 *               transitions are fully implicit)
 *   u8 wide-ids flag (state ids are u32 when >= 65535 states, else u16)
 *   per state:  u32 start, varint end-start, u8 flags (bit0 = loop
 *               header), varint #transitions, then one state id per
 *               transition (labels are implicit: label == target.start)
 */

#ifndef TEA_TEA_SERIALIZE_HH
#define TEA_TEA_SERIALIZE_HH

#include <string>
#include <vector>

#include "tea/automaton.hh"

namespace tea {

/** Serialize; the result's size() equals Tea::serializedBytes(). */
std::vector<uint8_t> saveTea(const Tea &tea);

/** Deserialize. @throws FatalError on malformed input. */
Tea loadTea(const std::vector<uint8_t> &bytes);

/** Write the binary form to a file. */
void saveTeaFile(const Tea &tea, const std::string &path);

/** Read the binary form from a file. */
Tea loadTeaFile(const std::string &path);

} // namespace tea

#endif // TEA_TEA_SERIALIZE_HH
