/**
 * @file
 * Algorithm 2: recording TEA (and traces) online.
 *
 * The recorder is the paper's three-state machine:
 *
 *   Initial   — set up an empty TEA (just NTE); done in the constructor.
 *   Executing — ChangeState(TEA, Current, Next) on every block
 *               transition; ask the selection policy whether to start
 *               recording (TriggerTraceRecording / StartCreatingTrace).
 *   Creating  — AddTBBToTrace(Current, Next) until the policy declares
 *               the trace done (DoneTraceRecording / FinishTrace).
 *
 * One deliberate refinement over the paper's pseudo-code: ChangeState
 * also runs while Creating, so the automaton position stays valid if a
 * recording aborts into already-hot code.
 */

#ifndef TEA_TEA_RECORDER_HH
#define TEA_TEA_RECORDER_HH

#include <memory>

#include "tea/builder.hh"
#include "tea/replayer.hh"
#include "trace/selector.hh"

namespace tea {

/**
 * Records traces online, maintaining the TEA as it grows.
 */
class TeaRecorder
{
  public:
    /**
     * @param selector the trace-selection policy (owned)
     * @param config   lookup configuration for the embedded replayer
     */
    TeaRecorder(std::unique_ptr<TraceSelector> selector,
                LookupConfig config = {});

    ~TeaRecorder();

    /** Process one block transition (one invocation of Algorithm 2). */
    void feed(const BlockTransition &tr);

    /** The traces recorded so far. */
    const TraceSet &traces() const { return traceSet; }

    /** The automaton recorded so far. */
    const Tea &tea() const { return automaton; }

    /** Whether the state machine is currently creating a trace. */
    bool creating() const { return recState == RecState::Creating; }

    /**
     * Counters accumulated over the whole run, including across TEA
     * rebuilds (coverage here is the Table 3 "Recording" coverage).
     */
    ReplayStats stats() const;

    /** Number of traces installed (new + extensions). */
    uint64_t installs() const { return installCount; }

  private:
    enum class RecState { Executing, Creating };

    void install(RecordingResult result);

    std::unique_ptr<TraceSelector> selector;
    LookupConfig cfg;
    TraceSet traceSet;
    Tea automaton;
    std::unique_ptr<TeaReplayer> replayer;
    RecState recState = RecState::Executing;
    ReplayStats accumulated; ///< stats from replayers retired by rebuilds
    Addr lastToStart = kNoAddr;
    uint64_t installCount = 0;
};

} // namespace tea

#endif // TEA_TEA_RECORDER_HH
