#include "tea/automaton.hh"

#include <algorithm>
#include <set>

#include "isa/program.hh"
#include "tea/serialize.hh"
#include "util/dot.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

Tea::Tea()
{
    clear();
}

void
Tea::clear()
{
    states.clear();
    states.push_back({0, 0, kNoAddr, kNoAddr, false, {}}); // NTE slot
    entryList.clear();
    entryMap.clear();
    byTraceTbb.clear();
}

size_t
Tea::numTransitions() const
{
    size_t n = entryList.size();
    for (size_t i = 1; i < states.size(); ++i)
        n += states[i].succs.size();
    return n;
}

const TeaState &
Tea::state(StateId id) const
{
    TEA_ASSERT(id != kNteState && id < states.size(), "bad state id %u",
               id);
    return states[id];
}

StateId
Tea::stateFor(TraceId trace, uint32_t tbb) const
{
    uint64_t key = (static_cast<uint64_t>(trace) << 32) | tbb;
    auto it = byTraceTbb.find(key);
    return it == byTraceTbb.end() ? kNteState : it->second;
}

StateId
Tea::entryAt(Addr addr) const
{
    auto it = entryMap.find(addr);
    return it == entryMap.end() ? kNteState : it->second;
}

StateId
Tea::nextState(StateId cur, Addr label) const
{
    if (cur != kNteState) {
        const TeaState &s = states[cur];
        for (StateId t : s.succs)
            if (states[t].start == label)
                return t;
    }
    // Leaving traces (or staying outside them): can we enter one?
    return entryAt(label);
}

StateId
Tea::addState(TraceId trace, uint32_t tbb, Addr start, Addr end,
              bool loop_header)
{
    StateId id = static_cast<StateId>(states.size());
    states.push_back({trace, tbb, start, end, loop_header, {}});
    uint64_t key = (static_cast<uint64_t>(trace) << 32) | tbb;
    TEA_ASSERT(!byTraceTbb.count(key), "duplicate state for trace %u "
               "tbb %u", trace, tbb);
    byTraceTbb[key] = id;
    return id;
}

void
Tea::addTransition(StateId from, StateId to)
{
    TEA_ASSERT(from != kNteState && from < states.size(),
               "bad transition source %u", from);
    TEA_ASSERT(to != kNteState && to < states.size(),
               "bad transition target %u", to);
    states[from].succs.push_back(to);
}

void
Tea::addEntry(StateId to)
{
    TEA_ASSERT(to != kNteState && to < states.size(), "bad entry %u", to);
    Addr addr = states[to].start;
    TEA_ASSERT(!entryMap.count(addr), "duplicate trace entry at %s",
               hex32(addr).c_str());
    entryMap[addr] = to;
    auto pos = std::lower_bound(
        entryList.begin(), entryList.end(), std::make_pair(addr, to));
    entryList.insert(pos, {addr, to});
}

void
Tea::validate(const TraceSet &traces) const
{
    // Property 1: every TBB of every trace has exactly one state.
    size_t expected = traces.totalBlocks();
    TEA_ASSERT(numTbbStates() == expected,
               "state count %zu != TBB count %zu", numTbbStates(),
               expected);
    for (const Trace &t : traces.all()) {
        for (uint32_t b = 0; b < t.blocks.size(); ++b) {
            StateId id = stateFor(t.id, b);
            TEA_ASSERT(id != kNteState, "missing state for trace %u "
                       "tbb %u", t.id, b);
            const TeaState &s = states[id];
            TEA_ASSERT(s.start == t.blocks[b].start &&
                       s.end == t.blocks[b].end,
                       "state/TBB address mismatch");
        }
        // Property 2: every intra-trace edge is represented.
        for (const Trace::Edge &e : t.edges) {
            StateId from = stateFor(t.id, e.from);
            StateId to = stateFor(t.id, e.to);
            const auto &succs = states[from].succs;
            TEA_ASSERT(std::find(succs.begin(), succs.end(), to) !=
                       succs.end(),
                       "edge (%u: %u -> %u) missing from TEA", t.id,
                       e.from, e.to);
        }
        // Each trace must be reachable from NTE at its entry.
        TEA_ASSERT(entryAt(t.entry()) == stateFor(t.id, 0),
                   "trace %u entry not wired to NTE", t.id);
    }
    // Determinism: per state, out-labels are unique.
    for (size_t i = 1; i < states.size(); ++i) {
        std::set<Addr> labels;
        for (StateId t : states[i].succs) {
            TEA_ASSERT(labels.insert(states[t].start).second,
                       "state %zu is nondeterministic on %s", i,
                       hex32(states[t].start).c_str());
        }
    }
    // Entry list sorted / unique and consistent with the map.
    for (size_t i = 1; i < entryList.size(); ++i)
        TEA_ASSERT(entryList[i - 1].first < entryList[i].first,
                   "entry list unsorted");
    TEA_ASSERT(entryList.size() == entryMap.size(), "entry index skew");
}

size_t
Tea::serializedBytes() const
{
    // Delegate to the actual serializer so the reported size can never
    // drift from the bytes a tool would really store (tea/serialize.cc).
    return saveTea(*this).size();
}

std::string
Tea::toDot(const std::string &name, const Program *prog) const
{
    DotGraph g(name);
    auto state_label = [&](StateId id) {
        const TeaState &s = states[id];
        std::string block = hex32(s.start);
        if (prog) {
            std::string lbl = prog->labelAt(s.start);
            if (!lbl.empty())
                block = lbl;
        }
        return strprintf("$$T%u.%s", s.trace + 1, block.c_str());
    };

    g.addNode("NTE", "NTE", "doublecircle");
    for (size_t i = 1; i < states.size(); ++i)
        g.addNode(strprintf("s%zu", i), state_label(static_cast<StateId>(i)));

    for (const auto &[addr, id] : entryList)
        g.addEdge("NTE", strprintf("s%u", id), hex32(addr));
    for (size_t i = 1; i < states.size(); ++i) {
        for (StateId t : states[i].succs) {
            g.addEdge(strprintf("s%zu", i), strprintf("s%u", t),
                      hex32(states[t].start));
        }
        // One representative fall-back edge to NTE (implicit transitions).
        g.addEdge(strprintf("s%zu", i), "NTE", "otherwise");
    }
    return g.render();
}

} // namespace tea
