/**
 * @file
 * TEA replay: the optimized transition function of §4.2.
 *
 * The replayer consumes the block-transition stream of an *unmodified*
 * program execution and keeps the automaton state synchronized, gathering
 * per-TBB profile data on the way. Its hot path is the transition
 * function; per the paper it is layered as
 *
 *   1. the current state's own transition list (intra-trace, common case),
 *   2. a per-state local cache of recent (address -> state) resolutions,
 *   3. a global container over trace entry addresses.
 *
 * Two kernels implement that same function:
 *
 * - the **compiled kernel** (default): walks a CompiledTea — CSR
 *   successor arrays with inlined labels, flat open-addressed entry
 *   hash (tea/compiled.hh). The fast path for production replay.
 * - the **reference kernel**: walks the pointer-based `Tea` directly
 *   with the paper's node B+ tree or linked trace list. This is the
 *   §4.2 reproduction the Table 4 ablation measures, and the oracle
 *   the compiled kernel is differentially tested against.
 *
 * Both kernels are bit-identical in every observable: ReplayStats,
 * per-TBB profiles, and the state sequence (tests/test_compiled.cc).
 *
 * The four Table 4 configurations are obtained from LookupConfig with
 * `useCompiled = false`: {No-Global/Local, Global/No-Local,
 * Global/Local} plus the "Empty" run (an automaton with no traces,
 * global tree on, caches off).
 */

#ifndef TEA_TEA_REPLAYER_HH
#define TEA_TEA_REPLAYER_HH

#include <forward_list>
#include <memory>
#include <vector>

#include "btree/bptree.hh"
#include "btree/local_cache.hh"
#include "tea/automaton.hh"
#include "tea/compiled.hh"
#include "vm/block.hh"

namespace tea {

/** Which lookup accelerators the transition function may use (§4.2). */
struct LookupConfig
{
    /**
     * Use an indexed global container over trace entries vs a linear
     * list. Under the compiled kernel the index is the flat hash and
     * the list is the flat entry array; under the reference kernel
     * they are the paper's node B+ tree and linked list.
     */
    bool useGlobalBTree = true;
    bool useLocalCache = true;  ///< per-state caches on the exit path
    /**
     * Verify on every transition that the automaton state matches the
     * executing block (the paper's "precise map" property). Used by the
     * test suite; adds overhead, so benches leave it off.
     */
    bool checkConsistency = false;
    /**
     * Replay on the cache-flat CompiledTea kernel (default) instead of
     * the pointer-chasing reference structures. Observable results are
     * identical either way; only speed differs.
     */
    bool useCompiled = true;
};

/** Counters gathered during a replay (or an online recording) run. */
struct ReplayStats
{
    uint64_t blocks = 0;        ///< block executions observed
    uint64_t insnsTotal = 0;    ///< dynamic instructions observed
    uint64_t insnsInTrace = 0;  ///< of those, executed inside a trace
    uint64_t transitions = 0;   ///< automaton transitions processed
    uint64_t intraTraceHits = 0;///< resolved by the state's own list
    uint64_t traceExits = 0;    ///< transitions that left a trace
    uint64_t exitsToCold = 0;   ///< of those, landing in cold code (NTE)
    uint64_t nteBlocks = 0;     ///< block executions attributed to NTE
    uint64_t localCacheHits = 0;
    uint64_t globalLookups = 0;
    uint64_t globalHits = 0;

    /** Fraction of dynamic instructions inside traces (Tables 2/3). */
    double
    coverage() const
    {
        return insnsTotal == 0
                   ? 0.0
                   : static_cast<double>(insnsInTrace) /
                         static_cast<double>(insnsTotal);
    }

    /**
     * Accumulate another run's counters (batch replay, svc). Pure
     * integer sums, so folding per-stream stats in a fixed order yields
     * bit-identical totals no matter which threads produced them.
     */
    ReplayStats &
    operator+=(const ReplayStats &o)
    {
        blocks += o.blocks;
        insnsTotal += o.insnsTotal;
        insnsInTrace += o.insnsInTrace;
        transitions += o.transitions;
        intraTraceHits += o.intraTraceHits;
        traceExits += o.traceExits;
        exitsToCold += o.exitsToCold;
        nteBlocks += o.nteBlocks;
        localCacheHits += o.localCacheHits;
        globalLookups += o.globalLookups;
        globalHits += o.globalHits;
        return *this;
    }

    bool operator==(const ReplayStats &) const = default;
};

/**
 * Replays a TEA against a running program.
 *
 * Feed it every BlockTransition produced by a BlockTracker; it attributes
 * the completed block to the current state (profiling) and then applies
 * the transition function on the next block's start address.
 */
class TeaReplayer
{
  public:
    /**
     * @param tea    the automaton to replay (must outlive the replayer)
     * @param config kernel and accelerator selection
     * @param precompiled an existing compiled snapshot of `tea` to
     *        share (svc/net replay against one registry-owned
     *        CompiledTea). When null and the config selects the
     *        compiled kernel, the replayer compiles its own copy.
     */
    TeaReplayer(const Tea &tea, LookupConfig config,
                std::shared_ptr<const CompiledTea> precompiled = nullptr);

    /**
     * Tea-less construction: replay a compiled snapshot alone — the
     * store's mapped `.teac` images never materialize a Tea at all.
     * A CompiledTea is self-describing (SoA metadata carries each
     * state's identity), so profiles and consistency checks work as
     * usual; only the reference kernel needs the source automaton,
     * hence `config.useCompiled` must be set.
     *
     * @param snapshot the compiled automaton (shared, kept alive)
     * @param config   accelerator selection; `useCompiled` required
     * @throws FatalError when config selects the reference kernel
     */
    TeaReplayer(std::shared_ptr<const CompiledTea> snapshot,
                LookupConfig config);

    /** Process one completed block execution. */
    void
    feed(const BlockTransition &tr)
    {
        if (compiled)
            feedCompiled(tr);
        else
            feedReference(tr);
    }

    /**
     * Process a contiguous run of block executions. Result-identical
     * to feeding each transition in order; on the compiled kernel the
     * batch loop keeps the current state and the hot counters in
     * registers and writes them back once, which is where most of the
     * kernel's throughput edge comes from. Batch-replay paths (svc
     * jobs, benches) should prefer this over per-record feed().
     */
    void feedAll(const BlockTransition *begin,
                 const BlockTransition *end);

    /** The automaton state of the block currently executing. */
    StateId currentState() const { return cur; }

    /** Accumulated counters. */
    const ReplayStats &stats() const { return st; }

    /** Executions attributed to a state (NTE included at index 0). */
    uint64_t execCount(StateId id) const;

    /** Executions of (trace, tbb) — the per-copy profile of Figure 1. */
    uint64_t execCountFor(TraceId trace, uint32_t tbb) const;

    /**
     * Memory used by the lookup structures: the global container
     * (compiled arrays, or tree/list on the reference kernel) plus only
     * the local caches actually materialized — caches allocate lazily
     * on the first exit-path miss of their state, so an automaton with
     * a million states costs nothing until states actually exit.
     */
    size_t lookupFootprintBytes() const;

    /** Per-state local caches materialized so far. */
    size_t materializedCaches() const { return cachePool.size(); }

    /** The compiled snapshot in use (null on the reference kernel). */
    const CompiledTea *compiledTea() const { return compiled; }

    /** Total automaton states including NTE. */
    uint32_t numStates() const { return nStatesTotal; }

    /** Return to NTE and zero all statistics. */
    void reset();

    /**
     * Force the automaton position. Used by the online recorder after it
     * rebuilds the TEA (state ids are not stable across rebuilds).
     */
    void setCurrentState(StateId id);

  private:
    /** cacheSlot sentinel: no cache materialized for the state yet. */
    static constexpr uint32_t kNoCacheSlot = 0xffffffffu;

    void feedReference(const BlockTransition &tr);
    void feedCompiled(const BlockTransition &tr);
    void feedCompiledBatch(const BlockTransition *begin,
                           const BlockTransition *end);
    StateId resolveEntry(Addr addr);
    StateId resolveEntryCompiled(Addr addr);
    bool cacheLookup(StateId state, Addr label, StateId &out);
    void cacheFill(StateId state, Addr label, StateId value);

    /** The source automaton; null when replaying a compiled snapshot
     *  alone (the reference kernel is unavailable then). */
    const Tea *tea = nullptr;
    LookupConfig cfg;
    uint32_t nStatesTotal = 0;
    StateId cur = Tea::kNteState;

    /** The compiled kernel's flat snapshot; null on the reference path. */
    const CompiledTea *compiled = nullptr;
    std::shared_ptr<const CompiledTea> compiledShared; ///< ownership

    BPlusTree globalTree;
    /**
     * The unindexed fallback container. The paper's first implementation
     * "kept the traces in a linked list" (§4.2); a real node-per-entry
     * list is used here so the pathological configurations pay the same
     * pointer-chasing cost the paper measured.
     */
    std::forward_list<std::pair<Addr, StateId>> globalList;

    /**
     * Lazy per-state caches: cacheSlot maps a state to its slot in
     * cachePool, kNoCacheSlot until the state's first exit-path fill.
     */
    std::vector<uint32_t> cacheSlot;
    std::vector<LocalCache> cachePool;

    std::vector<uint64_t> execCounts;
    ReplayStats st;
};

} // namespace tea

#endif // TEA_TEA_REPLAYER_HH
