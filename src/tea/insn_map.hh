/**
 * @file
 * Instruction-granular trace mapping.
 *
 * The paper defines TEA as mapping executing instructions to
 * "instructions or basic blocks" in recorded traces. The automaton
 * proper works at TBB granularity; this adjunct refines a (state, PC)
 * pair to the precise *instruction instance* inside the trace — e.g.
 * instruction (C) of the duplicated trace in Figure 1(d), as opposed to
 * the same guest instruction's copy (5) in another TBB.
 *
 * This is a pure query structure derived from a Tea and the program; it
 * adds nothing to the automaton's memory accounting.
 */

#ifndef TEA_TEA_INSN_MAP_HH
#define TEA_TEA_INSN_MAP_HH

#include <vector>

#include "isa/program.hh"
#include "tea/automaton.hh"

namespace tea {

/** The identity of one instruction instance inside a trace. */
struct TraceInsn
{
    TraceId trace;   ///< owning trace
    uint32_t tbb;    ///< TBB instance within the trace
    uint32_t index;  ///< instruction index within the TBB (0-based)
    Addr pc;         ///< the guest address it mirrors

    bool operator==(const TraceInsn &) const = default;
};

/**
 * Refines block-level TEA states to instruction instances.
 */
class InsnMap
{
  public:
    /**
     * Build the map for an automaton over a program.
     * @throws FatalError when a state's block range does not decode in
     *         the program.
     */
    InsnMap(const Tea &tea, const Program &prog);

    /**
     * Map the PC executing under a given automaton state.
     * @param state the replayer's current state
     * @param pc    the executing instruction's address
     * @return true and fill `out` when the state is a TBB state and pc
     *         falls on one of its instructions; false otherwise (NTE,
     *         or a PC outside the state's block — which cannot happen
     *         on a consistent replay).
     */
    bool map(StateId state, Addr pc, TraceInsn &out) const;

    /** Number of instruction instances across all TBB states. */
    size_t totalInsns() const { return total; }

    /** Instruction count of one TBB state. */
    size_t insnCount(StateId state) const;

    /** All instruction instances of a state, in execution order. */
    std::vector<TraceInsn> instancesOf(StateId state) const;

  private:
    const Tea &tea;
    const Program &prog;
    /** Per state: the addresses of its instructions (index aligned). */
    std::vector<std::vector<Addr>> addrs;
    size_t total = 0;
};

} // namespace tea

#endif // TEA_TEA_INSN_MAP_HH
