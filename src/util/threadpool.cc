#include "util/threadpool.hh"

#include <chrono>

#include "util/logging.hh"

namespace tea {

ThreadPool::ThreadPool(size_t workers)
{
    if (workers == 0)
        workers = 1;
    threads.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cvTask.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
ThreadPool::setTaskObserver(TaskObserver fn)
{
    std::lock_guard<std::mutex> lock(mu);
    observer = std::move(fn);
}

void
ThreadPool::submit(Task task)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping)
            panic("threadpool: submit after shutdown");
        queue.push_back(std::move(task));
    }
    cvTask.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    cvIdle.wait(lock, [this] { return queue.empty() && inFlight == 0; });
    if (firstError) {
        std::exception_ptr err = firstError;
        firstError = nullptr;
        std::rethrow_exception(err);
    }
}

uint64_t
ThreadPool::executed() const
{
    std::lock_guard<std::mutex> lock(mu);
    return doneCount;
}

uint64_t
ThreadPool::failures() const
{
    std::lock_guard<std::mutex> lock(mu);
    return failCount;
}

size_t
ThreadPool::pending() const
{
    std::lock_guard<std::mutex> lock(mu);
    return queue.size();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cvTask.wait(lock, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) {
            if (stopping)
                return;
            continue;
        }
        Task task = std::move(queue.front());
        queue.pop_front();
        ++inFlight;
        TaskObserver obs = observer;
        lock.unlock();
        auto begin = std::chrono::steady_clock::now();
        std::exception_ptr err;
        std::string what;
        try {
            task();
        } catch (const std::exception &e) {
            // The worker survives any throwing task; the first
            // exception is reported at the next drain().
            err = std::current_exception();
            what = e.what();
        } catch (...) {
            err = std::current_exception();
            what = "non-standard exception";
        }
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
        if (err && sharedWarnLimiter().allow()) {
            uint64_t dropped = sharedWarnLimiter().suppressedAndReset();
            if (dropped > 0)
                warn("threadpool: task failed: %s (%llu similar warnings "
                     "suppressed)",
                     what.c_str(),
                     static_cast<unsigned long long>(dropped));
            else
                warn("threadpool: task failed: %s", what.c_str());
        }
        if (obs)
            obs(ms, err != nullptr);
        lock.lock();
        if (err) {
            ++failCount;
            if (!firstError)
                firstError = err;
        }
        --inFlight;
        ++doneCount;
        if (queue.empty() && inFlight == 0)
            cvIdle.notify_all();
    }
}

} // namespace tea
