#include "util/strutil.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tea {

std::string
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

bool
parseInt(std::string_view s, int64_t &out)
{
    if (s.empty())
        return false;
    std::string buf(s);
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end == buf.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

std::string
hex32(uint32_t value)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", value);
    return buf;
}

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out.append(sep);
        out.append(items[i]);
    }
    return out;
}

} // namespace tea
