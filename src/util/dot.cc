#include "util/dot.hh"

#include <sstream>

namespace tea {

DotGraph::DotGraph(std::string graph_name) : name(std::move(graph_name)) {}

void
DotGraph::addNode(const std::string &id, const std::string &label,
                  const std::string &shape)
{
    nodes.push_back({id, label.empty() ? id : label, shape});
}

void
DotGraph::addEdge(const std::string &from, const std::string &to,
                  const std::string &label)
{
    edges.push_back({from, to, label});
}

std::string
DotGraph::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
DotGraph::render() const
{
    std::ostringstream os;
    os << "digraph \"" << escape(name) << "\" {\n";
    os << "    rankdir=TB;\n";
    for (const auto &n : nodes) {
        os << "    \"" << escape(n.id) << "\" [label=\"" << escape(n.label)
           << "\", shape=" << n.shape << "];\n";
    }
    for (const auto &e : edges) {
        os << "    \"" << escape(e.from) << "\" -> \"" << escape(e.to)
           << "\"";
        if (!e.label.empty())
            os << " [label=\"" << escape(e.label) << "\"]";
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace tea
