/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the library (workload input generation, property tests,
 * fuzzers) flows through Xorshift64Star so experiments are reproducible from
 * a single seed.
 */

#ifndef TEA_UTIL_RANDOM_HH
#define TEA_UTIL_RANDOM_HH

#include <cstdint>

namespace tea {

/**
 * xorshift64* PRNG. Small, fast, and good enough for workload synthesis;
 * never used for anything security-sensitive.
 */
class Xorshift64Star
{
  public:
    /** Construct from a seed; seed 0 is remapped to a fixed constant. */
    explicit Xorshift64Star(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5);

  private:
    uint64_t state;
};

} // namespace tea

#endif // TEA_UTIL_RANDOM_HH
