#include "util/table.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace tea {

TextTable::TextTable(std::vector<std::string> header_cells)
    : header(std::move(header_cells))
{
    TEA_ASSERT(!header.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size())
        fatal("table row has %zu cells, expected %zu", cells.size(),
              header.size());
    rows.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows.emplace_back();
}

size_t
TextTable::rowCount() const
{
    size_t n = 0;
    for (const auto &r : rows)
        if (!r.empty())
            ++n;
    return n;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &cells,
                          std::ostringstream &os) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << "| " << cells[c];
            os << std::string(widths[c] - cells[c].size() + 1, ' ');
        }
        os << "|\n";
    };
    auto render_sep = [&](std::ostringstream &os) {
        for (size_t c = 0; c < widths.size(); ++c)
            os << "+" << std::string(widths[c] + 2, '-');
        os << "+\n";
    };

    std::ostringstream os;
    render_sep(os);
    render_row(header, os);
    render_sep(os);
    for (const auto &row : rows) {
        if (row.empty())
            render_sep(os);
        else
            render_row(row, os);
    }
    render_sep(os);
    return os.str();
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::num(uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
TextTable::pct(double ratio, int precision)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

} // namespace tea
