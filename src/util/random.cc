#include "util/random.hh"

#include "util/logging.hh"

namespace tea {

Xorshift64Star::Xorshift64Star(uint64_t seed)
    : state(seed ? seed : 0x106689d45497fdb5ULL)
{
}

uint64_t
Xorshift64Star::next()
{
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
}

uint64_t
Xorshift64Star::nextBelow(uint64_t bound)
{
    TEA_ASSERT(bound != 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias for large bounds.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Xorshift64Star::nextRange(int64_t lo, int64_t hi)
{
    TEA_ASSERT(lo <= hi, "nextRange with lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Xorshift64Star::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Xorshift64Star::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace tea
