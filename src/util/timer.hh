/**
 * @file
 * Wall-clock timing for the benchmark harnesses (Table 2/3/4 "Time").
 */

#ifndef TEA_UTIL_TIMER_HH
#define TEA_UTIL_TIMER_HH

#include <chrono>

namespace tea {

/** A simple steady-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : begin(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { begin = Clock::now(); }

    /** Elapsed seconds since construction/reset. */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - begin).count();
    }

    /** Elapsed milliseconds since construction/reset. */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point begin;
};

} // namespace tea

#endif // TEA_UTIL_TIMER_HH
