/**
 * @file
 * Lightweight statistics helpers used by the benchmark harnesses.
 */

#ifndef TEA_UTIL_STATS_HH
#define TEA_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tea {

/** Geometric mean of a series. Zero/negative entries are skipped. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; returns 0 for an empty series. */
double mean(const std::vector<double> &values);

/** Population standard deviation; returns 0 for fewer than 2 samples. */
double stddev(const std::vector<double> &values);

/** Percentile (0..100) via nearest-rank on a copy of the series. */
double percentile(std::vector<double> values, double pct);

/**
 * A named bag of monotonically increasing counters.
 *
 * Replay/record harnesses accumulate event counts here (instructions,
 * transitions, cache hits, ...) and the benches read them back by name.
 */
class CounterSet
{
  public:
    /** Add delta (default 1) to counter name, creating it at 0. */
    void add(const std::string &name, uint64_t delta = 1);

    /** Set counter name to an absolute value. */
    void set(const std::string &name, uint64_t value);

    /** Value of counter name; 0 when never touched. */
    uint64_t get(const std::string &name) const;

    /** True when the counter exists. */
    bool has(const std::string &name) const;

    /** Reset all counters to an empty set. */
    void clear();

    /** All counters in name order. */
    const std::map<std::string, uint64_t> &all() const { return counters; }

    /** Merge other into this set by summing matching names. */
    void merge(const CounterSet &other);

    /** Render as "name=value" lines for logs. */
    std::string toString() const;

  private:
    std::map<std::string, uint64_t> counters;
};

} // namespace tea

#endif // TEA_UTIL_STATS_HH
