#include "util/logging.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

namespace tea {

namespace {

LogLevel g_level = LogLevel::Warn;
std::atomic<LogSinkFn> g_sink{nullptr};

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    if (LogSinkFn sink = g_sink.load(std::memory_order_acquire))
        sink(tag, msg.c_str());
}

} // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

void
setLogSink(LogSinkFn sink)
{
    g_sink.store(sink, std::memory_order_release);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrprintf(fmt, ap);
    va_end(ap);
    return out;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", vstrprintf(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", vstrprintf(fmt, ap));
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", vstrprintf(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    if (LogSinkFn sink = g_sink.load(std::memory_order_acquire))
        sink("fatal", msg.c_str());
    throw FatalError(msg);
}

bool
RateLimiter::allow()
{
    using clock = std::chrono::steady_clock;
    double now = std::chrono::duration<double>(
                     clock::now().time_since_epoch())
                     .count();
    return allowAt(now);
}

bool
RateLimiter::allowAt(double nowSeconds)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!primed) {
        lastSec = nowSeconds;
        primed = true;
    }
    double elapsed = std::max(0.0, nowSeconds - lastSec);
    tokens = std::min(cap, tokens + elapsed * rate);
    lastSec = nowSeconds;
    if (tokens >= 1.0) {
        tokens -= 1.0;
        return true;
    }
    ++suppressed;
    ++suppressedTotal;
    return false;
}

uint64_t
RateLimiter::suppressedAndReset()
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t n = suppressed;
    suppressed = 0;
    return n;
}

uint64_t
RateLimiter::totalSuppressed()
{
    std::lock_guard<std::mutex> lock(mu);
    return suppressedTotal;
}

RateLimiter &
sharedWarnLimiter()
{
    static RateLimiter limiter(5.0, 10.0);
    return limiter;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    if (LogSinkFn sink = g_sink.load(std::memory_order_acquire))
        sink("panic", msg.c_str());
    throw PanicError(msg);
}

} // namespace tea
