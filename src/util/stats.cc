#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace tea {

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    size_t n = 0;
    for (double v : values) {
        if (v <= 0.0)
            continue;
        log_sum += std::log(v);
        ++n;
    }
    if (n == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(n));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
percentile(std::vector<double> values, double pct)
{
    if (values.empty())
        return 0.0;
    TEA_ASSERT(pct >= 0.0 && pct <= 100.0, "percentile out of range");
    std::sort(values.begin(), values.end());
    size_t rank = static_cast<size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(values.size())));
    if (rank == 0)
        rank = 1;
    return values[rank - 1];
}

void
CounterSet::add(const std::string &name, uint64_t delta)
{
    counters[name] += delta;
}

void
CounterSet::set(const std::string &name, uint64_t value)
{
    counters[name] = value;
}

uint64_t
CounterSet::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

bool
CounterSet::has(const std::string &name) const
{
    return counters.count(name) != 0;
}

void
CounterSet::clear()
{
    counters.clear();
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
}

std::string
CounterSet::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << name << "=" << value << "\n";
    return os.str();
}

} // namespace tea
