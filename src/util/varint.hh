/**
 * @file
 * LEB128 varints and zigzag mapping, shared across layers.
 *
 * The v2 trace-log codec (svc/tracelog.cc) and the metrics history
 * ring (obs/history.cc) both delta-compress integer streams the same
 * way: zigzag the signed delta so small magnitudes of either sign
 * become small unsigned values, then LEB128 them (7 bits per byte,
 * high bit = continue). tea_obs cannot link tea_svc, so the helpers
 * live here in tea_util — header-only, and small enough to inline
 * into the hot decode loops that care.
 *
 * getVar() is the bounds-checked reader shape: it returns false on a
 * truncated or overlong (> 10 byte) varint instead of throwing, so
 * both strict decoders (which turn false into fatal()) and salvage
 * decoders (which stop at the tear) can share it.
 */

#ifndef TEA_UTIL_VARINT_HH
#define TEA_UTIL_VARINT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tea {

/** LEB128-append v (7 bits per byte, high bit = continue). */
inline void
putVar(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/**
 * Decode one LEB128 varint from [*cursor, len). Advances *cursor past
 * the varint and returns true; returns false (cursor untouched past
 * the bytes it consumed) on truncation or a varint longer than 10
 * bytes.
 */
inline bool
getVar(const uint8_t *data, size_t len, size_t &cursor, uint64_t &v)
{
    v = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
        if (cursor >= len)
            return false;
        uint8_t byte = data[cursor++];
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    return false;
}

/** Zigzag: small magnitudes of either sign become small varints. */
inline uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

inline int64_t
unzigzag(uint64_t u)
{
    return static_cast<int64_t>(u >> 1) ^ -static_cast<int64_t>(u & 1);
}

} // namespace tea

#endif // TEA_UTIL_VARINT_HH
