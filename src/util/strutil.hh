/**
 * @file
 * Small string helpers shared by the assembler, table printer, and tools.
 */

#ifndef TEA_UTIL_STRUTIL_HH
#define TEA_UTIL_STRUTIL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tea {

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Lowercase an ASCII string. */
std::string toLower(std::string_view s);

/** True when s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True when s ends with the given suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/**
 * Parse an integer literal supporting decimal, 0x-hex, and a leading '-'.
 * @return true on success, storing the value into out.
 */
bool parseInt(std::string_view s, int64_t &out);

/** Format an address as 0x%08x (guest addresses are 32-bit). */
std::string hex32(uint32_t value);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 std::string_view sep);

// JSON escaping lives in util/json.hh (jsonEscape, JsonWriter).

} // namespace tea

#endif // TEA_UTIL_STRUTIL_HH
