#include "util/crc32.hh"

#include <array>
#include <bit>
#include <cstring>

namespace tea {

namespace {

/**
 * Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
 * table[k][b] is the CRC of byte b followed by k zero bytes. Eight
 * lookups then advance the CRC a whole 64-bit word per iteration,
 * which matters because the `.teac` store CRCs every payload it
 * verifies and the bytewise loop was the measured cold-start
 * bottleneck (~270 MB/s; this runs several times faster).
 */
struct Crc32Tables
{
    std::array<std::array<uint32_t, 256>, 8> t;
};

Crc32Tables
buildTables()
{
    Crc32Tables tb{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        tb.t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = tb.t[0][i];
        for (int k = 1; k < 8; ++k) {
            c = tb.t[0][c & 0xff] ^ (c >> 8);
            tb.t[k][i] = c;
        }
    }
    return tb;
}

} // namespace

uint32_t
crc32Update(uint32_t crc, const void *data, size_t len)
{
    static const Crc32Tables tb = buildTables();
    const auto *p = static_cast<const uint8_t *>(data);
    crc = ~crc;

    // Head: reach 8-byte alignment so the word loads below are aligned.
    while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
        --len;
    }

    if constexpr (std::endian::native == std::endian::little) {
        while (len >= 8) {
            uint64_t w;
            std::memcpy(&w, p, 8);
            w ^= crc;
            crc = tb.t[7][w & 0xff] ^ tb.t[6][(w >> 8) & 0xff] ^
                  tb.t[5][(w >> 16) & 0xff] ^ tb.t[4][(w >> 24) & 0xff] ^
                  tb.t[3][(w >> 32) & 0xff] ^ tb.t[2][(w >> 40) & 0xff] ^
                  tb.t[1][(w >> 48) & 0xff] ^ tb.t[0][(w >> 56) & 0xff];
            p += 8;
            len -= 8;
        }
    }

    // Tail (and the whole buffer on a big-endian host).
    while (len-- > 0)
        crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    return ~crc;
}

} // namespace tea
