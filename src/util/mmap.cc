#include "util/mmap.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/logging.hh"

namespace tea {

MappedFile
MappedFile::open(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fatal("cannot open '%s': %s", path.c_str(),
              std::strerror(errno));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        fatal("cannot stat '%s': %s", path.c_str(), std::strerror(err));
    }
    if (!S_ISREG(st.st_mode)) {
        ::close(fd);
        fatal("'%s' is not a regular file", path.c_str());
    }

    MappedFile mf;
    mf.path_ = path;
    mf.len = static_cast<size_t>(st.st_size);
    if (mf.len != 0) {
        void *p = ::mmap(nullptr, mf.len, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p == MAP_FAILED) {
            int err = errno;
            ::close(fd);
            fatal("cannot mmap '%s': %s", path.c_str(),
                  std::strerror(err));
        }
        mf.base = static_cast<const uint8_t *>(p);
    }
    // The mapping holds its own reference to the file; the descriptor
    // is no longer needed.
    ::close(fd);
    return mf;
}

std::shared_ptr<const MappedFile>
MappedFile::openShared(const std::string &path)
{
    return std::make_shared<const MappedFile>(open(path));
}

MappedFile::~MappedFile()
{
    if (base != nullptr)
        ::munmap(const_cast<uint8_t *>(base), len);
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : base(other.base), len(other.len), path_(std::move(other.path_))
{
    other.base = nullptr;
    other.len = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        if (base != nullptr)
            ::munmap(const_cast<uint8_t *>(base), len);
        base = other.base;
        len = other.len;
        path_ = std::move(other.path_);
        other.base = nullptr;
        other.len = 0;
    }
    return *this;
}

} // namespace tea
