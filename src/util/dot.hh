/**
 * @file
 * Tiny GraphViz DOT emitter used to visualize automata and CFGs.
 */

#ifndef TEA_UTIL_DOT_HH
#define TEA_UTIL_DOT_HH

#include <string>
#include <vector>

namespace tea {

/**
 * Builds a directed graph in DOT syntax.
 *
 * Node/edge identities are free-form strings; the emitter quotes and
 * escapes them. The paper's Figure 3 (trace DFA and whole-program TEA) is
 * regenerated through this class.
 */
class DotGraph
{
  public:
    /** Create a graph with the given name (used in the digraph header). */
    explicit DotGraph(std::string name);

    /** Add a node with an optional display label and shape. */
    void addNode(const std::string &id, const std::string &label = "",
                 const std::string &shape = "ellipse");

    /** Add an edge with an optional label (the transition's address). */
    void addEdge(const std::string &from, const std::string &to,
                 const std::string &label = "");

    /** Render the whole graph as DOT text. */
    std::string render() const;

  private:
    struct Node
    {
        std::string id;
        std::string label;
        std::string shape;
    };
    struct Edge
    {
        std::string from;
        std::string to;
        std::string label;
    };

    static std::string escape(const std::string &s);

    std::string name;
    std::vector<Node> nodes;
    std::vector<Edge> edges;
};

} // namespace tea

#endif // TEA_UTIL_DOT_HH
