/**
 * @file
 * MappedFile: a read-only, shareable memory mapping of a file.
 *
 * The persistent automaton store serves compiled automata straight out
 * of mapped `.teac` images (tea/teac.hh): the bytes on disk *are* the
 * live lookup structures, so "loading" is one mmap plus validation —
 * no deserialization, no allocation proportional to the automaton.
 *
 * Lifetime is the load-bearing part: a MappedFile is held through
 * `shared_ptr` by every CompiledTea view built over it, so the mapping
 * stays alive while any replay still walks it. Evicting a name from
 * the store merely drops the store's reference — the munmap happens
 * only when the last pinned snapshot lets go, which is what makes
 * LRU eviction safe against in-flight replays.
 */

#ifndef TEA_UTIL_MMAP_HH
#define TEA_UTIL_MMAP_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace tea {

class MappedFile
{
  public:
    /**
     * Map `path` read-only. @throws FatalError when the file cannot be
     * opened, statted, or mapped. Empty files map successfully with
     * size() == 0 and a null data pointer.
     */
    static MappedFile open(const std::string &path);

    /** open(), wrapped for sharing across snapshots. */
    static std::shared_ptr<const MappedFile>
    openShared(const std::string &path);

    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const uint8_t *data() const { return base; }
    size_t size() const { return len; }
    const std::string &path() const { return path_; }

    /** True when a mapping is held. */
    explicit operator bool() const { return base != nullptr; }

  private:
    const uint8_t *base = nullptr;
    size_t len = 0;
    std::string path_;
};

} // namespace tea

#endif // TEA_UTIL_MMAP_HH
