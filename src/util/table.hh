/**
 * @file
 * Fixed-width ASCII table rendering.
 *
 * The benchmark harnesses print the same rows the paper's tables report;
 * this helper keeps the output aligned and machine-greppable.
 */

#ifndef TEA_UTIL_TABLE_HH
#define TEA_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tea {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"benchmark", "DBT", "TEA", "Savings"});
 *   t.addRow({"171.swim", "538", "110", "79%"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with header cells; column count is fixed from here on. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Number of data rows added so far (separators excluded). */
    size_t rowCount() const;

    /** Render the table with padded columns. */
    std::string render() const;

    /** Helper: format a double with the given precision. */
    static std::string num(double value, int precision = 2);

    /** Helper: format an integer with thousands separators removed. */
    static std::string num(uint64_t value);

    /** Helper: format a ratio as a percentage string like "79%". */
    static std::string pct(double ratio, int precision = 0);

  private:
    std::vector<std::string> header;
    /** Rows; an empty vector marks a separator. */
    std::vector<std::vector<std::string>> rows;
};

} // namespace tea

#endif // TEA_UTIL_TABLE_HH
