/**
 * @file
 * The repo's one JSON producer.
 *
 * Every machine-readable output — `teadbt ... --json`, the metrics
 * snapshot behind the STATS wire frame, the bench result files — goes
 * through JsonWriter, so escaping and comma placement live in exactly
 * one place. The writer is a small streaming builder: begin/end nest
 * objects and arrays, key() names the next member, value() emits a
 * scalar; commas are inserted automatically. There is deliberately no
 * parser: the repo only *emits* JSON, and readers on the other side
 * (CI, jq, dashboards) bring their own.
 *
 * Output style is stable and diff-friendly: `"key": value` with one
 * space after the colon, no newlines, UTF-8 passed through untouched,
 * control characters escaped as \\uXXXX. Doubles print with %.6g and
 * non-finite values degrade to 0 (JSON has no NaN/Inf).
 */

#ifndef TEA_UTIL_JSON_HH
#define TEA_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tea {

/**
 * Escape a string for embedding inside a JSON string literal (the
 * surrounding quotes are the caller's). Escapes '"', '\\', and all
 * control characters; everything else passes through byte-for-byte.
 */
std::string jsonEscape(std::string_view s);

/**
 * Streaming JSON builder (see file comment). Usage:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("streams").value(uint64_t(4));
 *   w.key("logs").beginArray().value("a.tlog").value("b.tlog").endArray();
 *   w.endObject();
 *   puts(w.str().c_str());
 *
 * Nesting errors (value without a key inside an object, mismatched
 * end) throw PanicError — a malformed emitter is a library bug.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Name the next member; valid only directly inside an object. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(unsigned v) { return value(uint64_t(v)); }
    JsonWriter &value(int v) { return value(int64_t(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** Emit pre-rendered JSON verbatim as the next value. */
    JsonWriter &rawValue(std::string_view json);

    /** The rendered document (valid once every begin has its end). */
    const std::string &str() const;

  private:
    enum class Scope : uint8_t { Object, Array };

    void beforeValue();

    std::string out;
    struct Frame
    {
        Scope scope;
        size_t items = 0;
        bool keyPending = false;
    };
    std::vector<Frame> stack;
    size_t valuesAtRoot = 0;
};

} // namespace tea

#endif // TEA_UTIL_JSON_HH
