#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace tea {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    if (stack.empty()) {
        if (valuesAtRoot++ > 0)
            panic("json: more than one document at the root");
        return;
    }
    Frame &top = stack.back();
    if (top.scope == Scope::Object) {
        if (!top.keyPending)
            panic("json: object member without a key");
        top.keyPending = false;
    } else {
        if (top.items > 0)
            out += ", ";
    }
    ++top.items;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out += '{';
    stack.push_back(Frame{Scope::Object});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack.empty() || stack.back().scope != Scope::Object ||
        stack.back().keyPending)
        panic("json: endObject out of place");
    stack.pop_back();
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out += '[';
    stack.push_back(Frame{Scope::Array});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack.empty() || stack.back().scope != Scope::Array)
        panic("json: endArray out of place");
    stack.pop_back();
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (stack.empty() || stack.back().scope != Scope::Object ||
        stack.back().keyPending)
        panic("json: key() outside an object member position");
    if (stack.back().items > 0)
        out += ", ";
    out += '"';
    out += jsonEscape(k);
    out += "\": ";
    stack.back().keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    out += '"';
    out += jsonEscape(v);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v))
        v = 0.0; // JSON has no NaN/Inf
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out += "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    beforeValue();
    out += json;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    if (!stack.empty())
        panic("json: document still has %zu open scopes", stack.size());
    return out;
}

} // namespace tea
