/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
 *
 * Used by the trace-log format (svc/tracelog.hh) to detect payload
 * corruption per chunk. Table-driven; the table is a function-local
 * static, so first-use initialization is thread-safe.
 */

#ifndef TEA_UTIL_CRC32_HH
#define TEA_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace tea {

/** Incremental CRC-32: pass the previous return value to continue. */
uint32_t crc32Update(uint32_t crc, const void *data, size_t len);

/** One-shot CRC-32 of a buffer. */
inline uint32_t
crc32(const void *data, size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace tea

#endif // TEA_UTIL_CRC32_HH
