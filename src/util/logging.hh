/**
 * @file
 * Status and error reporting for the TEA library.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (library bugs), fatal() for user errors (bad input programs, bad
 * configuration). Unlike gem5 both throw exceptions instead of aborting so
 * that a host application (and the test suite) can recover.
 */

#ifndef TEA_UTIL_LOGGING_HH
#define TEA_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace tea {

/** Exception thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity threshold (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/**
 * A tee for every emitted log line (and for the messages fatal() and
 * panic() are about to throw). The flight recorder (obs/flightrec.hh)
 * installs one to keep the last K lines in its preallocated black
 * box. A plain function pointer, deliberately: installation is a
 * relaxed atomic store, the call adds no allocation or lock to the
 * logging path, and there is exactly one consumer by design. Pass
 * nullptr to detach. The sink sees exactly what stderr sees (the
 * verbosity threshold applies first), plus every fatal/panic message.
 */
using LogSinkFn = void (*)(const char *tag, const char *msg);
void setLogSink(LogSinkFn sink);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Informative message; shown at LogLevel::Inform and above. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning message; shown at LogLevel::Warn and above. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug message; shown only at LogLevel::Debug. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a user error and throw FatalError.
 * Use for conditions caused by the caller (bad program, bad config).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a library bug and throw PanicError.
 * Use for conditions that can never happen unless the library is broken.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Token-bucket limiter for repetitive log messages, so a flapping
 * client (one reconnecting and getting evicted in a loop, say) cannot
 * flood the log. The bucket holds up to `burst` tokens and refills at
 * `ratePerSec`; each allowed message costs one token. Thread-safe: the
 * server's eviction path calls it from every session worker.
 *
 * Denied messages are counted; suppressedAndReset() lets the next
 * allowed message report how many were dropped, so the log never
 * silently loses information — it loses only repetition.
 */
class RateLimiter
{
  public:
    RateLimiter(double ratePerSec, double burst)
        : rate(ratePerSec), cap(burst), tokens(burst)
    {
    }

    /** Spend a token if one is available (refilled from the wall clock). */
    bool allow();

    /**
     * Clock-explicit variant: `nowSeconds` on any monotonic axis.
     * allow() delegates here with steady_clock time; tests drive it
     * with a synthetic clock for determinism.
     */
    bool allowAt(double nowSeconds);

    /** Messages denied since the last call; resets the counter. */
    uint64_t suppressedAndReset();

    /**
     * Messages denied since construction (monotonic — unaffected by
     * suppressedAndReset()). Exported as the `log.suppressed` metric so
     * dropped log lines are visible, not silently gone.
     */
    uint64_t totalSuppressed();

  private:
    std::mutex mu;
    double rate;        ///< tokens per second
    double cap;         ///< bucket capacity (burst)
    double tokens;      ///< current balance
    double lastSec = 0; ///< last refill time
    bool primed = false;
    uint64_t suppressed = 0;
    uint64_t suppressedTotal = 0;
};

/**
 * The process-wide limiter for repetitive warnings. Every spammy warn
 * path — server eviction warnings, thread-pool task failures, the
 * slow-request trace log — draws from this one bucket, so a flood on
 * any of them throttles them all and the total drop count is one
 * number (burst 10, then at most 5/s).
 */
RateLimiter &sharedWarnLimiter();

/** assert-like helper that panics with a message when cond is false. */
#define TEA_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::tea::panic("assertion '" #cond "' failed: " __VA_ARGS__);     \
    } while (0)

} // namespace tea

#endif // TEA_UTIL_LOGGING_HH
