/**
 * @file
 * Status and error reporting for the TEA library.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (library bugs), fatal() for user errors (bad input programs, bad
 * configuration). Unlike gem5 both throw exceptions instead of aborting so
 * that a host application (and the test suite) can recover.
 */

#ifndef TEA_UTIL_LOGGING_HH
#define TEA_UTIL_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace tea {

/** Exception thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity threshold (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Informative message; shown at LogLevel::Inform and above. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning message; shown at LogLevel::Warn and above. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug message; shown only at LogLevel::Debug. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a user error and throw FatalError.
 * Use for conditions caused by the caller (bad program, bad config).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a library bug and throw PanicError.
 * Use for conditions that can never happen unless the library is broken.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** assert-like helper that panics with a message when cond is false. */
#define TEA_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::tea::panic("assertion '" #cond "' failed: " __VA_ARGS__);     \
    } while (0)

} // namespace tea

#endif // TEA_UTIL_LOGGING_HH
