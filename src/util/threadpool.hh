/**
 * @file
 * A fixed-size worker pool for batch jobs.
 *
 * The pool is deliberately minimal: N threads created up front, a FIFO
 * task queue, and a drain() barrier. Higher layers (svc/replay_service.hh)
 * get their determinism by *not* communicating through the pool at all —
 * each task writes to a slot it exclusively owns, and all merging happens
 * after drain() on the calling thread. The pool therefore needs no
 * futures, no task priorities, and no work stealing.
 *
 * Exception contract: a task that throws does not kill the worker; the
 * first exception is captured and rethrown from the next drain() (or
 * swallowed by the destructor if the caller never drains). Tasks that
 * must report per-item errors should catch locally instead.
 */

#ifndef TEA_UTIL_THREADPOOL_HH
#define TEA_UTIL_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tea {

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Start `workers` threads. 0 is clamped to 1: a pool with no
     * workers would deadlock the first drain().
     */
    explicit ThreadPool(size_t workers);

    /** Pending tasks run to completion, then workers join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Per-task completion hook: called on the worker thread after each
     * task finishes, with the task's wall-clock duration and whether it
     * threw. The observability layer wires this into a task-latency
     * histogram and a failure counter (net/server.cc); installing one
     * while tasks are running is safe. Pass an empty function to clear.
     */
    using TaskObserver = std::function<void(double ms, bool failed)>;
    void setTaskObserver(TaskObserver fn);

    /** Enqueue a task. @throws PanicError after shutdown began. */
    void submit(Task task);

    /**
     * Block until every submitted task has finished executing (not just
     * been dequeued). Rethrows the first task exception captured since
     * the previous drain(). The pool is reusable afterwards.
     */
    void drain();

    size_t workers() const { return threads.size(); }

    /** Tasks executed since construction (for tests and stats). */
    uint64_t executed() const;

    /**
     * Tasks that exited by throwing, since construction. Included in
     * executed(): a throwing task still completes — it never kills its
     * worker or skews pending()/drain() accounting
     * (tests/test_threadpool.cc pins this).
     */
    uint64_t failures() const;

    /**
     * Queue depth: tasks submitted but not yet picked up by a worker.
     * Admission control (net/server.hh) and the batch-replay CLI read
     * this to bound and report backlog; the value is advisory — it can
     * change the moment the lock is released.
     */
    size_t pending() const;

  private:
    void workerLoop();

    mutable std::mutex mu;
    std::condition_variable cvTask;  ///< signals workers: task or stop
    std::condition_variable cvIdle;  ///< signals drain(): all work done
    std::deque<Task> queue;
    std::vector<std::thread> threads;
    size_t inFlight = 0;     ///< tasks dequeued but not finished
    uint64_t doneCount = 0;  ///< tasks finished since construction
    uint64_t failCount = 0;  ///< tasks that finished by throwing
    bool stopping = false;
    std::exception_ptr firstError;
    TaskObserver observer; ///< copied under mu before each call
};

} // namespace tea

#endif // TEA_UTIL_THREADPOOL_HH
