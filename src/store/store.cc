#include "store/store.hh"

#include <algorithm>
#include <filesystem>
#include <set>
#include <system_error>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "tea/teac.hh"
#include "util/logging.hh"
#include "util/mmap.hh"

namespace fs = std::filesystem;

namespace tea {

AutomatonStore::AutomatonStore(AutomatonRegistry &registry_,
                               StoreConfig config)
    : registry(registry_), cfg(std::move(config))
{
    if (cfg.dir.empty())
        fatal("store: no directory configured");
    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    if (ec)
        fatal("store: cannot create directory '%s': %s", cfg.dir.c_str(),
              ec.message().c_str());
}

bool
AutomatonStore::validName(const std::string &name)
{
    if (name.empty() || name.size() > 255 || name[0] == '.')
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
AutomatonStore::pathFor(const std::string &name) const
{
    return cfg.dir + "/" + name + ".teac";
}

AutomatonSnapshot
AutomatonStore::get(const std::string &name)
{
    // Invalid names can never have been stored; treating them as
    // absent (rather than probing the filesystem) also keeps path
    // traversal out by construction.
    if (!validName(name))
        return {};

    AutomatonSnapshot snap = registry.snapshot(name);
    if (snap) {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (resident.count(name))
                touchLocked(name);
        }
        if (hits)
            hits->inc();
        if (hitsBy)
            hitsBy->at(name).inc();
        return snap;
    }

    if (misses)
        misses->inc();
    std::string path = pathFor(name);
    if (!fs::exists(path))
        return {};

    // Fault-in, outside the store lock: mmap + validate, no recompile.
    // A concurrent GET of the same name may race us here; both loads
    // are valid and the last registry insert wins.
    uint64_t t0 = trace != nullptr ? obs::monotonicNanos() : 0;
    auto compiled =
        CompiledTea::fromMapped(MappedFile::openShared(path),
                                cfg.verifyPayload);
    if (trace != nullptr) {
        obs::Span s;
        s.phase = obs::SpanPhase::StoreFaultIn;
        s.startNs = t0;
        s.durNs = obs::monotonicNanos() - t0;
        trace->push(s);
    }
    if (mmapLoads)
        mmapLoads->inc();
    if (faultsBy)
        faultsBy->at(name).inc();
    AutomatonSnapshot out = registry.putCompiled(name, compiled);
    {
        std::lock_guard<std::mutex> lock(mu);
        insertLocked(name, compiled->footprintBytes());
        enforceBudgetLocked(name);
    }
    return out;
}

AutomatonSnapshot
AutomatonStore::put(const std::string &name,
                    std::shared_ptr<const Tea> tea)
{
    if (!validName(name))
        fatal("store: invalid automaton name '%s'", name.c_str());
    TEA_ASSERT(tea != nullptr, "storing a null automaton");

    // Compile and write through before anything becomes visible: if
    // the disk write fails, neither tier changes.
    auto compiled = CompiledTea::compile(std::move(tea));
    saveTeacFile(*compiled, pathFor(name));
    AutomatonSnapshot out = registry.putCompiled(name, compiled);
    {
        std::lock_guard<std::mutex> lock(mu);
        insertLocked(name, compiled->footprintBytes());
        enforceBudgetLocked(name);
    }
    return out;
}

AutomatonSnapshot
AutomatonStore::replaceResident(const std::string &name,
                                std::shared_ptr<const CompiledTea> compiled)
{
    if (!validName(name))
        fatal("store: invalid automaton name '%s'", name.c_str());
    TEA_ASSERT(compiled != nullptr, "swapping in a null compiled image");
    size_t bytes = compiled->footprintBytes();
    AutomatonSnapshot prev = registry.replace(name, std::move(compiled));
    {
        std::lock_guard<std::mutex> lock(mu);
        insertLocked(name, bytes);
        enforceBudgetLocked(name);
    }
    return prev;
}

void
AutomatonStore::writeThrough(const std::string &name,
                             const CompiledTea &compiled)
{
    if (!validName(name))
        fatal("store: invalid automaton name '%s'", name.c_str());
    saveTeacFile(compiled, pathFor(name));
}

bool
AutomatonStore::evictResident(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = resident.find(name);
        if (it == resident.end())
            return false;
        residentBytes_ -= it->second.bytes;
        lru.erase(it->second.lruIt);
        resident.erase(it);
    }
    registry.evict(name);
    return true;
}

std::vector<StoreEntry>
AutomatonStore::list() const
{
    std::set<std::string> onDisk;
    std::error_code ec;
    for (fs::directory_iterator it(cfg.dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const fs::path &p = it->path();
        if (p.extension() != ".teac")
            continue; // skips atomic-write temp files too
        std::string stem = p.stem().string();
        if (validName(stem))
            onDisk.insert(stem);
    }

    std::vector<StoreEntry> out;
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string &name : onDisk)
        out.push_back(StoreEntry{name, resident.count(name) != 0, true});
    for (const auto &[name, r] : resident)
        if (!onDisk.count(name))
            out.push_back(StoreEntry{name, true, false});
    std::sort(out.begin(), out.end(),
              [](const StoreEntry &a, const StoreEntry &b) {
                  return a.name < b.name;
              });
    return out;
}

size_t
AutomatonStore::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return residentBytes_;
}

size_t
AutomatonStore::residentCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return resident.size();
}

void
AutomatonStore::bindMetrics(obs::MetricsRegistry &metrics)
{
    hits = &metrics.counter("store.hits");
    misses = &metrics.counter("store.misses");
    mmapLoads = &metrics.counter("store.mmap_loads");
    evictions = &metrics.counter("store.evictions");
    hitsBy = &metrics.labeledCounter("store.hits_by_automaton");
    faultsBy = &metrics.labeledCounter("store.faults_by_automaton");
    metrics.gaugeFn("store.resident", [this] {
        return static_cast<int64_t>(residentCount());
    });
    metrics.gaugeFn("store.resident_bytes", [this] {
        return static_cast<int64_t>(residentBytes());
    });
}

void
AutomatonStore::touchLocked(const std::string &name)
{
    auto it = resident.find(name);
    lru.splice(lru.end(), lru, it->second.lruIt);
}

void
AutomatonStore::insertLocked(const std::string &name, size_t bytes)
{
    auto it = resident.find(name);
    if (it != resident.end()) {
        // Replacement (re-PUT or fault-in race): swap the charge.
        residentBytes_ -= it->second.bytes;
        it->second.bytes = bytes;
        residentBytes_ += bytes;
        lru.splice(lru.end(), lru, it->second.lruIt);
        return;
    }
    lru.push_back(name);
    resident[name] = Resident{std::prev(lru.end()), bytes};
    residentBytes_ += bytes;
}

void
AutomatonStore::enforceBudgetLocked(const std::string &keep)
{
    auto overBudget = [&] {
        return (cfg.maxResident != 0 && resident.size() > cfg.maxResident) ||
               (cfg.maxResidentBytes != 0 &&
                residentBytes_ > cfg.maxResidentBytes);
    };
    while (overBudget()) {
        auto it = lru.begin();
        // Never thrash out the name that triggered enforcement: a
        // budget smaller than one automaton still serves that one.
        if (*it == keep && ++it == lru.end())
            break;
        std::string victim = *it;
        residentBytes_ -= resident[victim].bytes;
        resident.erase(victim);
        lru.erase(it);
        // Only the references are dropped here: any replay that pinned
        // this snapshot keeps it (and its mapping) alive until done.
        registry.evict(victim);
        if (evictions)
            evictions->inc();
    }
}

} // namespace tea
