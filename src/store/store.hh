/**
 * @file
 * AutomatonStore: the disk-backed tier behind the AutomatonRegistry.
 *
 * The registry is RAM-only: every process restart pays a full
 * rebuild+recompile of every automaton it serves. The store turns the
 * registry into the *resident tier* of a two-level hierarchy:
 *
 *   resident:  AutomatonRegistry — mmap'd (or RAM-compiled) snapshots,
 *              pinned by replays through shared_ptr
 *   cold:      <dir>/<name>.teac — relocatable compiled images
 *              (tea/teac.hh), one file per name
 *
 * GET of a resident name is exactly the registry's sharded lookup plus
 * an LRU touch. GET of a cold name faults the image in: one mmap, one
 * validation pass, zero deserialization — no Tea is ever built, and
 * CompiledTea::compileCount() provably does not move. PUT compiles,
 * writes through to disk (atomic tmp+rename, so a crash or concurrent
 * reader never sees a torn file), and installs the snapshot resident.
 *
 * Eviction: when `maxResidentBytes` or `maxResident` is exceeded, the
 * least-recently-used names are dropped from the registry (their files
 * remain — a later GET faults them back in). "Dropped" means only the
 * store's and registry's references go away: a replay that pinned the
 * snapshot keeps its mapping alive through shared_ptr until it drains,
 * so eviction can NEVER unmap memory a kernel still walks
 * (tests/test_store.cc races GET/replay/evict under TSan to pin this).
 *
 * Thread safety: all store state (LRU list, residency index) sits
 * behind one mutex; the expensive steps — mmap+validate on fault-in,
 * compile+serialize+write on PUT — run outside it. Concurrent cold GETs
 * of the same name may both load the image; both results are valid and
 * the loser's mapping is dropped harmlessly (last insert wins).
 */

#ifndef TEA_STORE_STORE_HH
#define TEA_STORE_STORE_HH

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/registry.hh"

namespace tea {

namespace obs {
class MetricsRegistry;
class Counter;
class LabeledCounter;
class SpanRing;
} // namespace obs

/** Store placement and budget knobs. */
struct StoreConfig
{
    std::string dir; ///< directory of `<name>.teac` images

    /**
     * Resident-tier budgets; 0 means unlimited. Bytes are compiled
     * footprint bytes (the same number `registry.footprint_bytes`
     * exports), counted against automatons the *store* manages — both
     * caps are enforced by LRU eviction after every fault-in and PUT.
     */
    size_t maxResidentBytes = 0;
    size_t maxResident = 0;

    /**
     * Run the strict integrity tier (payload CRC + source hash) on
     * every fault-in. Off by default: the header CRC and the full
     * structural audit always run and are what make a mapped image
     * safe to replay; the CRC pass roughly doubles cold-start cost and
     * only adds detection of bit rot in bytes the audit cannot fully
     * constrain (see "Integrity tiers" in tea/teac.hh). Turn it on for
     * media you do not trust.
     */
    bool verifyPayload = false;
};

/** One name known to the store: resident, on disk, or both. */
struct StoreEntry
{
    std::string name;
    bool resident = false; ///< pinned in the registry right now
    bool onDisk = false;   ///< a `.teac` image exists in the directory
};

class AutomatonStore
{
  public:
    /**
     * @param registry the resident tier (not owned; must outlive the
     *        store)
     * @param config   directory and budgets; the directory is created
     *        if absent. @throws FatalError when it cannot be
     */
    AutomatonStore(AutomatonRegistry &registry, StoreConfig config);

    /**
     * Resolve a name: registry hit, or fault the `.teac` image in from
     * disk (mmap + validate, no recompile), or an empty snapshot when
     * the name exists nowhere. @throws FatalError when the image on
     * disk is corrupt — a damaged file must fail loudly, not read as
     * absent.
     */
    AutomatonSnapshot get(const std::string &name);

    /**
     * Install an automaton: compile, write `<dir>/<name>.teac` through
     * atomically, and make it resident. @return the resident snapshot.
     * @throws FatalError on invalid names or I/O failure
     */
    AutomatonSnapshot put(const std::string &name,
                          std::shared_ptr<const Tea> tea);

    /**
     * Hot-swap the resident snapshot of `name` without touching disk:
     * an atomic registry replace plus budget re-accounting (the new
     * compiled footprint takes over the old charge and the name moves
     * to MRU). The recording service calls this on every incremental
     * swap; writeThrough() persists a swapped snapshot when it is
     * worth a disk write. @return the displaced snapshot (empty when
     * the name was new). @throws FatalError on invalid names
     */
    AutomatonSnapshot
    replaceResident(const std::string &name,
                    std::shared_ptr<const CompiledTea> compiled);

    /**
     * Persist `compiled` as `<dir>/<name>.teac` through the atomic
     * tmp+rename path; readers (and crashes) see the old image or the
     * new one, never a torn file. A blobless delta snapshot serializes
     * as the canonical full image (tea/compiled.hh), so the bytes on
     * disk stay bit-identical to an offline compile.
     * @throws FatalError on invalid names or I/O failure
     */
    void writeThrough(const std::string &name, const CompiledTea &compiled);

    /**
     * Drop a name from the resident tier (its file remains, so a later
     * GET faults it back in). In-flight replays keep their snapshot.
     * @return false when the name was not resident
     */
    bool evictResident(const std::string &name);

    /**
     * Every name the store knows: the union of the resident tier and
     * the directory scan, sorted, with residency markers (the LIST
     * wire response's resident/cold flags come from here).
     */
    std::vector<StoreEntry> list() const;

    /** Resident compiled bytes the store accounts against its budget. */
    size_t residentBytes() const;

    /** Resident automaton count under store management. */
    size_t residentCount() const;

    /**
     * Valid store names: nonempty, at most 255 bytes, characters from
     * [A-Za-z0-9._-], not starting with a dot. Everything else is
     * rejected up front so a name can never escape the store directory
     * or collide with the atomic-write temp files.
     */
    static bool validName(const std::string &name);

    /** `<dir>/<name>.teac`. */
    std::string pathFor(const std::string &name) const;

    /**
     * Register the `store.*` instruments in `metrics` and start
     * counting against them (hits, misses, mmap_loads, evictions, plus
     * resident/resident_bytes callback gauges, plus the per-automaton
     * store.{hits,faults}_by_automaton labeled families).
     */
    void bindMetrics(obs::MetricsRegistry &metrics);

    /**
     * Trace cold fault-ins into `ring` as `store.fault_in` spans (the
     * mmap + validate window of a cold GET). Borrowed; null (the
     * default) skips the clock reads entirely.
     */
    void bindTrace(obs::SpanRing *ring) { trace = ring; }

    const StoreConfig &config() const { return cfg; }

  private:
    struct Resident
    {
        std::list<std::string>::iterator lruIt; ///< position in `lru`
        size_t bytes = 0; ///< compiled footprint charged to the budget
    };

    /** Move `name` to the MRU end; caller holds `mu`. */
    void touchLocked(const std::string &name);

    /** Account a newly resident name; caller holds `mu`. */
    void insertLocked(const std::string &name, size_t bytes);

    /**
     * Evict LRU names until both budgets hold, never evicting `keep`
     * (the name just faulted in — a budget smaller than one automaton
     * must not thrash it out immediately). Caller holds `mu`.
     */
    void enforceBudgetLocked(const std::string &keep);

    AutomatonRegistry &registry;
    StoreConfig cfg;

    mutable std::mutex mu;
    std::list<std::string> lru; ///< front = LRU, back = MRU
    std::unordered_map<std::string, Resident> resident;
    size_t residentBytes_ = 0;

    obs::Counter *hits = nullptr;
    obs::Counter *misses = nullptr;
    obs::Counter *mmapLoads = nullptr;
    obs::Counter *evictions = nullptr;
    obs::LabeledCounter *hitsBy = nullptr;   ///< store.hits_by_automaton
    obs::LabeledCounter *faultsBy = nullptr; ///< store.faults_by_automaton
    obs::SpanRing *trace = nullptr; ///< store.fault_in span sink
};

} // namespace tea

#endif // TEA_STORE_STORE_HH
