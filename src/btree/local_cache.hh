/**
 * @file
 * The per-state "local cache" of §4.2.
 *
 * TEA's transition function is dominated by lookups that leave a trace:
 * the current state's explicit transition list misses and the target must
 * be found in the global trace container. The paper adds a small cache in
 * front of that container, private to each automaton state, remembering
 * recent (address -> state) resolutions. The paper's data shows it matters
 * even more than the global B+ tree.
 */

#ifndef TEA_BTREE_LOCAL_CACHE_HH
#define TEA_BTREE_LOCAL_CACHE_HH

#include <cstdint>

namespace tea {

/**
 * A tiny direct-mapped address->value cache.
 *
 * Four entries, indexed by address bits; misses are simply overwritten.
 * Kept header-only and branch-light because it sits on the hot path of
 * every trace-exit transition.
 */
class LocalCache
{
  public:
    static constexpr int kEntries = 4;

    LocalCache() { clear(); }

    /** Invalidate every entry. */
    void
    clear()
    {
        for (auto &e : entries)
            e.addr = kInvalid;
    }

    /** @return true and set out when addr is cached. */
    bool
    lookup(uint32_t addr, uint32_t &out) const
    {
        const Entry &e = entries[slot(addr)];
        if (e.addr != addr)
            return false;
        out = e.value;
        return true;
    }

    /** Remember a resolution. */
    void
    fill(uint32_t addr, uint32_t value)
    {
        Entry &e = entries[slot(addr)];
        e.addr = addr;
        e.value = value;
    }

    /** Bytes used by one cache instance (for memory accounting). */
    static constexpr size_t footprintBytes() { return sizeof(Entry) * kEntries; }

  private:
    static constexpr uint32_t kInvalid = 0xffffffffu;

    struct Entry
    {
        uint32_t addr;
        uint32_t value;
    };

    static int
    slot(uint32_t addr)
    {
        // Guest instructions are byte addressed; drop the low bits that
        // rarely vary between block starts.
        return (addr >> 2) & (kEntries - 1);
    }

    Entry entries[kEntries];
};

} // namespace tea

#endif // TEA_BTREE_LOCAL_CACHE_HH
