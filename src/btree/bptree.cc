#include "btree/bptree.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tea {

/**
 * One tree node. Leaves keep parallel key/value arrays and a next-leaf
 * link; inner nodes keep keys[i] = smallest key in children[i + 1]'s
 * subtree, with one more child than keys.
 */
struct BPlusTree::Node
{
    bool leaf;
    int nkeys = 0;
    Key keys[kOrder];
    union
    {
        Value values[kOrder];        ///< leaf payloads
        Node *children[kOrder + 1];  ///< inner children (nkeys + 1 used)
    };
    Node *next = nullptr; ///< leaf chain

    explicit Node(bool is_leaf) : leaf(is_leaf)
    {
        for (int i = 0; i <= kOrder; ++i)
            if (!is_leaf)
                children[i] = nullptr;
    }

    /** Index of the first key >= key. */
    int
    lowerBound(Key key) const
    {
        int lo = 0, hi = nkeys;
        while (lo < hi) {
            int mid = (lo + hi) / 2;
            if (keys[mid] < key)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Child slot to descend into for key (inner nodes). */
    int
    childIndex(Key key) const
    {
        int lo = 0, hi = nkeys;
        while (lo < hi) {
            int mid = (lo + hi) / 2;
            if (key < keys[mid])
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }
};

/** Result of a recursive insert: a possible split to propagate up. */
struct BPlusTree::InsertResult
{
    bool split = false;
    Key sepKey = 0;    ///< smallest key of the new right sibling
    Node *right = nullptr;
    bool inserted = false; ///< false when an existing key was overwritten
};

BPlusTree::BPlusTree() : root(new Node(true)), count(0) {}

BPlusTree::~BPlusTree()
{
    destroy(root);
}

BPlusTree::BPlusTree(BPlusTree &&other) noexcept
    : root(other.root), count(other.count)
{
    other.root = new Node(true);
    other.count = 0;
}

BPlusTree &
BPlusTree::operator=(BPlusTree &&other) noexcept
{
    if (this != &other) {
        destroy(root);
        root = other.root;
        count = other.count;
        other.root = new Node(true);
        other.count = 0;
    }
    return *this;
}

void
BPlusTree::destroy(Node *node)
{
    if (!node)
        return;
    if (!node->leaf)
        for (int i = 0; i <= node->nkeys; ++i)
            destroy(node->children[i]);
    delete node;
}

void
BPlusTree::clear()
{
    destroy(root);
    root = new Node(true);
    count = 0;
}

bool
BPlusTree::find(Key key, Value &out) const
{
    const Node *node = root;
    while (!node->leaf)
        node = node->children[node->childIndex(key)];
    int i = node->lowerBound(key);
    if (i < node->nkeys && node->keys[i] == key) {
        out = node->values[i];
        return true;
    }
    return false;
}

bool
BPlusTree::contains(Key key) const
{
    Value v;
    return find(key, v);
}

BPlusTree::InsertResult
BPlusTree::insertRec(Node *node, Key key, Value value)
{
    InsertResult result;
    if (node->leaf) {
        int i = node->lowerBound(key);
        if (i < node->nkeys && node->keys[i] == key) {
            node->values[i] = value; // overwrite
            return result;
        }
        result.inserted = true;
        if (node->nkeys < kOrder) {
            for (int j = node->nkeys; j > i; --j) {
                node->keys[j] = node->keys[j - 1];
                node->values[j] = node->values[j - 1];
            }
            node->keys[i] = key;
            node->values[i] = value;
            ++node->nkeys;
            return result;
        }
        // Split the leaf: left keeps the low half, right gets the rest.
        Node *right = new Node(true);
        int half = (kOrder + 1) / 2;
        // Merge the new key into a temporary view by splitting around i.
        Key tmp_keys[kOrder + 1];
        Value tmp_vals[kOrder + 1];
        for (int j = 0; j < i; ++j) {
            tmp_keys[j] = node->keys[j];
            tmp_vals[j] = node->values[j];
        }
        tmp_keys[i] = key;
        tmp_vals[i] = value;
        for (int j = i; j < node->nkeys; ++j) {
            tmp_keys[j + 1] = node->keys[j];
            tmp_vals[j + 1] = node->values[j];
        }
        int total = kOrder + 1;
        node->nkeys = half;
        right->nkeys = total - half;
        for (int j = 0; j < half; ++j) {
            node->keys[j] = tmp_keys[j];
            node->values[j] = tmp_vals[j];
        }
        for (int j = 0; j < right->nkeys; ++j) {
            right->keys[j] = tmp_keys[half + j];
            right->values[j] = tmp_vals[half + j];
        }
        right->next = node->next;
        node->next = right;
        result.split = true;
        result.sepKey = right->keys[0];
        result.right = right;
        return result;
    }

    int slot = node->childIndex(key);
    InsertResult child = insertRec(node->children[slot], key, value);
    result.inserted = child.inserted;
    if (!child.split)
        return result;

    // Insert (sepKey, right) after slot.
    if (node->nkeys < kOrder) {
        for (int j = node->nkeys; j > slot; --j) {
            node->keys[j] = node->keys[j - 1];
            node->children[j + 1] = node->children[j];
        }
        node->keys[slot] = child.sepKey;
        node->children[slot + 1] = child.right;
        ++node->nkeys;
        return result;
    }

    // Split the inner node.
    Key tmp_keys[kOrder + 1];
    Node *tmp_children[kOrder + 2];
    for (int j = 0; j < slot; ++j)
        tmp_keys[j] = node->keys[j];
    tmp_keys[slot] = child.sepKey;
    for (int j = slot; j < node->nkeys; ++j)
        tmp_keys[j + 1] = node->keys[j];
    for (int j = 0; j <= slot; ++j)
        tmp_children[j] = node->children[j];
    tmp_children[slot + 1] = child.right;
    for (int j = slot + 1; j <= node->nkeys; ++j)
        tmp_children[j + 1] = node->children[j];

    int total = kOrder + 1; // keys including the new one
    int left_keys = total / 2;
    Key up_key = tmp_keys[left_keys];
    Node *right = new Node(false);
    right->nkeys = total - left_keys - 1;

    node->nkeys = left_keys;
    for (int j = 0; j < left_keys; ++j)
        node->keys[j] = tmp_keys[j];
    for (int j = 0; j <= left_keys; ++j)
        node->children[j] = tmp_children[j];
    for (int j = 0; j < right->nkeys; ++j)
        right->keys[j] = tmp_keys[left_keys + 1 + j];
    for (int j = 0; j <= right->nkeys; ++j)
        right->children[j] = tmp_children[left_keys + 1 + j];

    result.split = true;
    result.sepKey = up_key;
    result.right = right;
    return result;
}

void
BPlusTree::insert(Key key, Value value)
{
    InsertResult r = insertRec(root, key, value);
    if (r.inserted)
        ++count;
    if (r.split) {
        Node *new_root = new Node(false);
        new_root->nkeys = 1;
        new_root->keys[0] = r.sepKey;
        new_root->children[0] = root;
        new_root->children[1] = r.right;
        root = new_root;
    }
}

namespace {
constexpr int kMinKeys = BPlusTree::kOrder / 2;
} // namespace

void
BPlusTree::rebalanceChild(Node *parent, int child_idx)
{
    Node *child = parent->children[child_idx];
    Node *left = child_idx > 0 ? parent->children[child_idx - 1] : nullptr;
    Node *right =
        child_idx < parent->nkeys ? parent->children[child_idx + 1] : nullptr;

    if (left && left->nkeys > kMinKeys) {
        // Borrow the largest entry from the left sibling.
        if (child->leaf) {
            for (int j = child->nkeys; j > 0; --j) {
                child->keys[j] = child->keys[j - 1];
                child->values[j] = child->values[j - 1];
            }
            child->keys[0] = left->keys[left->nkeys - 1];
            child->values[0] = left->values[left->nkeys - 1];
            ++child->nkeys;
            --left->nkeys;
            parent->keys[child_idx - 1] = child->keys[0];
        } else {
            for (int j = child->nkeys; j > 0; --j)
                child->keys[j] = child->keys[j - 1];
            for (int j = child->nkeys + 1; j > 0; --j)
                child->children[j] = child->children[j - 1];
            child->keys[0] = parent->keys[child_idx - 1];
            child->children[0] = left->children[left->nkeys];
            parent->keys[child_idx - 1] = left->keys[left->nkeys - 1];
            ++child->nkeys;
            --left->nkeys;
        }
        return;
    }
    if (right && right->nkeys > kMinKeys) {
        // Borrow the smallest entry from the right sibling.
        if (child->leaf) {
            child->keys[child->nkeys] = right->keys[0];
            child->values[child->nkeys] = right->values[0];
            ++child->nkeys;
            for (int j = 0; j < right->nkeys - 1; ++j) {
                right->keys[j] = right->keys[j + 1];
                right->values[j] = right->values[j + 1];
            }
            --right->nkeys;
            parent->keys[child_idx] = right->keys[0];
        } else {
            child->keys[child->nkeys] = parent->keys[child_idx];
            child->children[child->nkeys + 1] = right->children[0];
            parent->keys[child_idx] = right->keys[0];
            ++child->nkeys;
            for (int j = 0; j < right->nkeys - 1; ++j)
                right->keys[j] = right->keys[j + 1];
            for (int j = 0; j < right->nkeys; ++j)
                right->children[j] = right->children[j + 1];
            --right->nkeys;
        }
        return;
    }

    // Merge with a sibling. Normalize so we merge child_idx and
    // child_idx + 1 into the left one.
    int left_idx = left ? child_idx - 1 : child_idx;
    Node *a = parent->children[left_idx];
    Node *b = parent->children[left_idx + 1];
    if (a->leaf) {
        for (int j = 0; j < b->nkeys; ++j) {
            a->keys[a->nkeys + j] = b->keys[j];
            a->values[a->nkeys + j] = b->values[j];
        }
        a->nkeys += b->nkeys;
        a->next = b->next;
    } else {
        a->keys[a->nkeys] = parent->keys[left_idx];
        for (int j = 0; j < b->nkeys; ++j)
            a->keys[a->nkeys + 1 + j] = b->keys[j];
        for (int j = 0; j <= b->nkeys; ++j)
            a->children[a->nkeys + 1 + j] = b->children[j];
        a->nkeys += b->nkeys + 1;
    }
    delete b;
    for (int j = left_idx; j < parent->nkeys - 1; ++j)
        parent->keys[j] = parent->keys[j + 1];
    for (int j = left_idx + 1; j < parent->nkeys; ++j)
        parent->children[j] = parent->children[j + 1];
    --parent->nkeys;
}

bool
BPlusTree::eraseRec(Node *node, Key key)
{
    if (node->leaf) {
        int i = node->lowerBound(key);
        if (i >= node->nkeys || node->keys[i] != key)
            return false;
        for (int j = i; j < node->nkeys - 1; ++j) {
            node->keys[j] = node->keys[j + 1];
            node->values[j] = node->values[j + 1];
        }
        --node->nkeys;
        return true;
    }
    int slot = node->childIndex(key);
    bool erased = eraseRec(node->children[slot], key);
    if (erased && node->children[slot]->nkeys < kMinKeys)
        rebalanceChild(node, slot);
    return erased;
}

bool
BPlusTree::erase(Key key)
{
    bool erased = eraseRec(root, key);
    if (erased) {
        --count;
        if (!root->leaf && root->nkeys == 0) {
            Node *old = root;
            root = root->children[0];
            delete old;
        }
    }
    return erased;
}

int
BPlusTree::height() const
{
    int h = 1;
    const Node *node = root;
    while (!node->leaf) {
        node = node->children[0];
        ++h;
    }
    return h;
}

std::vector<std::pair<BPlusTree::Key, BPlusTree::Value>>
BPlusTree::items() const
{
    std::vector<std::pair<Key, Value>> out;
    out.reserve(count);
    const Node *node = root;
    while (!node->leaf)
        node = node->children[0];
    for (; node; node = node->next)
        for (int i = 0; i < node->nkeys; ++i)
            out.emplace_back(node->keys[i], node->values[i]);
    return out;
}

size_t
BPlusTree::footprintBytes() const
{
    // Count nodes by walking the structure.
    size_t nodes = 0;
    struct Walker
    {
        static void
        walk(const Node *node, size_t &acc)
        {
            ++acc;
            if (!node->leaf)
                for (int i = 0; i <= node->nkeys; ++i)
                    walk(node->children[i], acc);
        }
    };
    Walker::walk(root, nodes);
    return nodes * sizeof(Node);
}

int
BPlusTree::leafDepth() const
{
    return height();
}

void
BPlusTree::checkNode(const Node *node, int depth, int leaf_depth,
                     bool is_root) const
{
    if (node->leaf) {
        TEA_ASSERT(depth == leaf_depth, "leaves at different depths");
    }
    if (!is_root) {
        TEA_ASSERT(node->nkeys >= (node->leaf ? 1 : 1),
                   "underfull node (nkeys=%d)", node->nkeys);
    }
    TEA_ASSERT(node->nkeys <= kOrder, "overfull node");
    for (int i = 1; i < node->nkeys; ++i)
        TEA_ASSERT(node->keys[i - 1] < node->keys[i], "unsorted keys");
    if (!node->leaf) {
        for (int i = 0; i <= node->nkeys; ++i) {
            const Node *child = node->children[i];
            TEA_ASSERT(child != nullptr, "null child");
            checkNode(child, depth + 1, leaf_depth, false);
            // Separator discipline: child i's keys < keys[i] <= child i+1.
            if (i < node->nkeys) {
                TEA_ASSERT(child->keys[child->nkeys - 1] < node->keys[i],
                           "separator violated (left)");
            }
            if (i > 0) {
                TEA_ASSERT(child->keys[0] >= node->keys[i - 1],
                           "separator violated (right)");
            }
        }
    }
}

void
BPlusTree::checkInvariants() const
{
    if (count == 0) {
        TEA_ASSERT(root->leaf && root->nkeys == 0, "bad empty tree");
        return;
    }
    checkNode(root, 1, leafDepth(), true);

    // Leaf chain must enumerate exactly count sorted keys.
    auto all = items();
    TEA_ASSERT(all.size() == count, "leaf chain count mismatch "
               "(%zu vs %zu)", all.size(), count);
    for (size_t i = 1; i < all.size(); ++i)
        TEA_ASSERT(all[i - 1].first < all[i].first, "leaf chain unsorted");
}

} // namespace tea
