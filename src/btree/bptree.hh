/**
 * @file
 * In-memory B+ tree mapping guest addresses to automaton state ids.
 *
 * This is the "global B+ tree" of the paper's §4.2: the container searched
 * by TEA's transition function whenever control flows from cold code into
 * a trace, or from one trace to another, and the per-state transition list
 * and local cache both miss. The paper found it essential on benchmarks
 * with many traces (gcc, vortex); the ablation in bench/table4_overhead
 * reproduces that by swapping it for a linear list.
 */

#ifndef TEA_BTREE_BPTREE_HH
#define TEA_BTREE_BPTREE_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tea {

/**
 * A B+ tree from uint32 keys to uint32 values.
 *
 * Keys are unique; insert overwrites. All values live in the leaves, which
 * are chained for in-order iteration. Fanout is fixed at compile time.
 */
class BPlusTree
{
  public:
    using Key = uint32_t;
    using Value = uint32_t;

    /** Maximum keys per node. */
    static constexpr int kOrder = 16;

    BPlusTree();
    ~BPlusTree();

    BPlusTree(const BPlusTree &) = delete;
    BPlusTree &operator=(const BPlusTree &) = delete;
    BPlusTree(BPlusTree &&other) noexcept;
    BPlusTree &operator=(BPlusTree &&other) noexcept;

    /** Insert or overwrite a key. */
    void insert(Key key, Value value);

    /**
     * Point lookup.
     * @return true and set out when the key exists.
     */
    bool find(Key key, Value &out) const;

    /** True when the key is present. */
    bool contains(Key key) const;

    /**
     * Remove a key.
     * @return true when the key existed.
     */
    bool erase(Key key);

    /** Number of keys stored. */
    size_t size() const { return count; }

    /** True when empty. */
    bool empty() const { return count == 0; }

    /** Height of the tree (1 for a single leaf). */
    int height() const;

    /** Remove everything. */
    void clear();

    /** All (key, value) pairs in key order (walks the leaf chain). */
    std::vector<std::pair<Key, Value>> items() const;

    /**
     * Approximate resident bytes of the tree's nodes; used by the
     * TEA memory accounting to charge the entry index.
     */
    size_t footprintBytes() const;

    /** Validate structural invariants; throws PanicError on corruption. */
    void checkInvariants() const;

  private:
    struct Node;
    struct InsertResult;

    Node *root;
    size_t count;

    static void destroy(Node *node);
    InsertResult insertRec(Node *node, Key key, Value value);
    bool eraseRec(Node *node, Key key);
    static void rebalanceChild(Node *parent, int child_idx);
    void checkNode(const Node *node, int depth, int leaf_depth,
                   bool is_root) const;
    int leafDepth() const;
};

} // namespace tea

#endif // TEA_BTREE_BPTREE_HH
