/**
 * @file
 * Concurrent batch replay of recorded trace logs.
 *
 * The service pairs immutable automaton snapshots (svc/registry.hh)
 * with trace logs (svc/tracelog.hh) and replays each pairing on a fixed
 * worker pool. The concurrency design keeps the hot transition function
 * exactly as single-threaded as the paper's:
 *
 * - each job constructs its *own* TeaReplayer — the per-state local
 *   caches and the global B+ tree are private to the job, so the
 *   transition function takes no locks;
 * - the shared `Tea` is read-only after build, so any number of
 *   replayers may walk it concurrently;
 * - every job writes its result into a slot it exclusively owns, and
 *   all cross-job merging happens on the calling thread after the pool
 *   drains, folding in job-submission order.
 *
 * That last point is what makes the batch *deterministic*: the merged
 * per-TBB profile and summed ReplayStats are pure uint64 sums folded in
 * a fixed order, hence bit-identical to a sequential run regardless of
 * worker count or OS scheduling.
 */

#ifndef TEA_SVC_REPLAY_SERVICE_HH
#define TEA_SVC_REPLAY_SERVICE_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "tea/replayer.hh"
#include "util/threadpool.hh"

namespace tea {

/** One replay request: an automaton snapshot plus one trace log. */
struct ReplayJob
{
    /**
     * The source automaton. May be null when `compiled` is set: jobs
     * against store-faulted mapped images replay on the compiled
     * snapshot alone (the reference kernel then needs a rehydrated
     * Tea — net/session.hh does that per-request).
     */
    std::shared_ptr<const Tea> tea;

    /** File-backed log; used when `logBytes` is null. */
    std::string logPath;

    /**
     * In-memory log (benches, tests). Not owned; must outlive the
     * batch. Readers only consume these bytes, so many jobs may share
     * one buffer.
     */
    const std::vector<uint8_t> *logBytes = nullptr;

    /**
     * Compiled snapshot of `tea`, shared across every job replaying
     * the same automaton (registry puts compile it; runBatch fills it
     * for ad-hoc jobs). When null and the lookup config selects the
     * compiled kernel, runReplayJob() compiles privately — correct but
     * wasteful for concurrent streams, so batch paths always share.
     */
    std::shared_ptr<const CompiledTea> compiled;

    /**
     * Open the log in TraceLogReader salvage mode: a torn log replays
     * its valid chunk prefix and reports the tear in
     * StreamResult::salvage* instead of failing the stream. Strict
     * (the default) keeps the old behavior: any defect fails the job.
     */
    bool salvage = false;
};

/** Outcome of one job (one replayed stream). */
struct StreamResult
{
    ReplayStats stats;
    /**
     * Per-state execution counts (index = StateId, slot 0 = NTE) — the
     * per-TBB profile of the stream.
     */
    std::vector<uint64_t> execCounts;
    /** Empty on success; the FatalError message otherwise. */
    std::string error;

    /** Salvage-mode jobs only: did the log tear? (Still counts as ok.) */
    bool salvaged = false;
    /** Why the log tore (empty unless salvaged). */
    std::string salvageReason;
    /** Bytes after the last valid chunk, dropped by salvage. */
    uint64_t salvageBytesDropped = 0;

    /**
     * Per-phase wall-clock profile, stamped only at feedAll() batch
     * boundaries so no clock read lands in the transition loop.
     * Deliberately *not* part of ReplayStats: stats stay pure event
     * counts with a defaulted operator== (the determinism checks and
     * the 11-u64 wire encoding depend on that), while timing is
     * scheduler noise that may differ between identical runs.
     */
    uint64_t decodeNs = 0; ///< log decode time (TraceLogReader::next)
    uint64_t replayNs = 0; ///< kernel time (feedAll)
    uint64_t batches = 0;  ///< feedAll() calls made

    /** Transition rate over the replay phase, for profiling reports. */
    double
    transitionsPerSec() const
    {
        return replayNs == 0 ? 0.0
                             : static_cast<double>(stats.transitions) *
                                   1e9 / static_cast<double>(replayNs);
    }

    bool ok() const { return error.empty(); }
};

/** Outcome of a whole batch. */
struct BatchResult
{
    /** Per-stream results, in job-submission order. */
    std::vector<StreamResult> streams;
    /** Sum of successful streams' stats, folded in job order. */
    ReplayStats total;
    /**
     * Merged per-TBB profile: elementwise sum of the successful
     * streams' execCounts, folded in job order. Only populated when
     * every job shares one automaton (the common batch shape);
     * otherwise empty, because state ids from different automata are
     * not comparable.
     */
    std::vector<uint64_t> mergedExecCounts;
    /** Jobs that failed (bad log file, corrupt chunk, ...). */
    size_t failures = 0;
};

/**
 * Replay one job synchronously on the calling thread.
 *
 * The single-stream unit of work shared by ReplayService (which fans
 * it out over a worker pool) and the network session (net/session.hh,
 * which runs it inline per REPLAY_STREAM request). Failures are
 * reported in the result, never thrown.
 */
StreamResult runReplayJob(const ReplayJob &job, LookupConfig cfg);

/**
 * A fixed worker pool replaying batches of trace logs.
 *
 * runBatch() blocks until the whole batch completes; per-job failures
 * are reported in the result, never thrown (one corrupt log must not
 * poison the other streams of the batch).
 */
class ReplayService
{
  public:
    /**
     * @param workers pool size; 0 picks hardware_concurrency
     * @param config  lookup configuration for every job's replayer
     */
    explicit ReplayService(size_t workers, LookupConfig config = {});

    /** Replay every job; deterministic merge (see file comment). */
    BatchResult runBatch(const std::vector<ReplayJob> &jobs);

    /**
     * Wire the service to a metrics registry: registers the svc.*
     * counters (batches, streams, stream_failures, transitions,
     * salvaged) and bumps them after every runBatch() merge — on the
     * calling thread, outside the replay hot path. Pass nullptr to
     * detach. The registry must outlive the service.
     */
    void setMetrics(obs::MetricsRegistry *m);

    size_t workers() const { return pool.workers(); }

    /** Jobs submitted but not yet picked up by a worker. */
    size_t pendingJobs() const { return pool.pending(); }

    /** Jobs executed since construction. */
    uint64_t executedJobs() const { return pool.executed(); }

  private:
    LookupConfig cfg;
    ThreadPool pool;

    // Metric handles, null until setMetrics(). Raw pointers into the
    // registry's stable storage (obs/metrics.hh guarantees counters
    // never move once created).
    obs::Counter *mBatches = nullptr;
    obs::Counter *mStreams = nullptr;
    obs::Counter *mFailures = nullptr;
    obs::Counter *mTransitions = nullptr;
    obs::Counter *mSalvaged = nullptr;
};

} // namespace tea

#endif // TEA_SVC_REPLAY_SERVICE_HH
