#include "svc/replay_service.hh"

#include <thread>
#include <unordered_map>

#include "obs/trace.hh"
#include "svc/tracelog.hh"
#include "util/logging.hh"

namespace tea {

ReplayService::ReplayService(size_t workers, LookupConfig config)
    : cfg(config),
      pool(workers != 0 ? workers
                        : std::max(1u, std::thread::hardware_concurrency()))
{
}

StreamResult
runReplayJob(const ReplayJob &job, LookupConfig cfg)
{
    StreamResult res;
    try {
        if (!job.tea && !job.compiled)
            fatal("replay job without an automaton");
        auto mode = job.salvage ? TraceLogReader::Mode::Salvage
                                : TraceLogReader::Mode::Strict;
        // The job's pinned snapshot doubles as the decode automaton:
        // elided v2 chunks reconstruct through the same CompiledTea
        // the replay walks (null for reference-kernel jobs without a
        // snapshot, which then decode every non-elided log as before).
        const CompiledTea *decodeTea = job.compiled.get();
        TraceLogReader reader =
            job.logBytes
                ? TraceLogReader(job.logBytes->data(),
                                 job.logBytes->size(), mode, decodeTea)
                : TraceLogReader::openFile(job.logPath, mode, decodeTea);
        // Compiled-only jobs (store-resident mapped images never carry
        // a Tea) replay on the snapshot alone; the tea-less constructor
        // rejects configs that need the source automaton.
        TeaReplayer replayer =
            job.tea ? TeaReplayer(*job.tea, cfg, job.compiled)
                    : TeaReplayer(job.compiled, cfg);
        // Feed whole decoded chunks: the batch decode kernel fills the
        // reader's chunk buffer and feedAll() consumes it in place —
        // no per-record copy between decode and replay. The per-phase
        // clock is stamped only at chunk boundaries — three reads per
        // kChunkRecords transitions, nothing in the transition loop
        // itself (the ≤3% instrumentation budget that
        // bench/svc_throughput enforces).
        for (;;) {
            uint64_t t0 = obs::monotonicNanos();
            const std::vector<BlockTransition> *buf = reader.nextChunk();
            uint64_t t1 = obs::monotonicNanos();
            res.decodeNs += t1 - t0;
            if (buf == nullptr)
                break;
            replayer.feedAll(buf->data(), buf->data() + buf->size());
            uint64_t t2 = obs::monotonicNanos();
            res.replayNs += t2 - t1;
            ++res.batches;
        }
        if (reader.torn()) {
            res.salvaged = true;
            res.salvageReason = reader.tornReason();
            res.salvageBytesDropped = reader.bytesDiscarded();
        }
        res.stats = replayer.stats();
        res.execCounts.resize(replayer.numStates());
        for (StateId id = 0; id < replayer.numStates(); ++id)
            res.execCounts[id] = replayer.execCount(id);
    } catch (const FatalError &e) {
        res = StreamResult{};
        res.error = e.what();
    }
    return res;
}

void
ReplayService::setMetrics(obs::MetricsRegistry *m)
{
    if (m == nullptr) {
        mBatches = mStreams = mFailures = mTransitions = mSalvaged =
            nullptr;
        return;
    }
    mBatches = &m->counter("svc.batches");
    mStreams = &m->counter("svc.streams");
    mFailures = &m->counter("svc.stream_failures");
    mTransitions = &m->counter("svc.transitions");
    mSalvaged = &m->counter("svc.salvaged");
}

BatchResult
ReplayService::runBatch(const std::vector<ReplayJob> &jobs)
{
    BatchResult batch;
    batch.streams.resize(jobs.size());

    // Compile each distinct automaton exactly once, on the calling
    // thread, before any job runs: N streams over one snapshot must
    // share one CompiledTea, not build N (test_registry_stress pins
    // this with CompiledTea::compileCount()). Jobs that arrive with a
    // compiled snapshot (registry puts) keep it.
    std::vector<ReplayJob> staged(jobs);
    if (cfg.useCompiled) {
        std::unordered_map<const Tea *,
                           std::shared_ptr<const CompiledTea>> compiledBy;
        for (ReplayJob &job : staged) {
            if (!job.tea || job.compiled)
                continue;
            auto &slot = compiledBy[job.tea.get()];
            if (!slot)
                slot = CompiledTea::compile(job.tea);
            job.compiled = slot;
        }
    }

    for (size_t i = 0; i < staged.size(); ++i) {
        const ReplayJob &job = staged[i];
        StreamResult &slot = batch.streams[i];
        pool.submit(
            [&job, &slot, cfg = cfg] { slot = runReplayJob(job, cfg); });
    }
    pool.drain();

    // Merge on the calling thread, in job order: bit-identical to a
    // sequential run no matter how the pool scheduled the jobs.
    bool one_tea = !jobs.empty() && jobs.front().tea != nullptr;
    for (const ReplayJob &job : jobs)
        one_tea = one_tea && job.tea == jobs.front().tea;
    if (one_tea)
        batch.mergedExecCounts.assign(jobs.front().tea->numStates(), 0);

    uint64_t salvaged = 0;
    for (const StreamResult &res : batch.streams) {
        if (res.salvaged)
            ++salvaged;
        if (!res.ok()) {
            ++batch.failures;
            continue;
        }
        batch.total += res.stats;
        if (one_tea)
            for (size_t s = 0; s < res.execCounts.size(); ++s)
                batch.mergedExecCounts[s] += res.execCounts[s];
    }

    // Metric updates ride on the merge, on the calling thread — the
    // workers never touch the registry.
    if (mBatches != nullptr) {
        mBatches->inc();
        mStreams->inc(batch.streams.size());
        mFailures->inc(batch.failures);
        mTransitions->inc(batch.total.transitions);
        mSalvaged->inc(salvaged);
    }
    return batch;
}

} // namespace tea
