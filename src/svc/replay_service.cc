#include "svc/replay_service.hh"

#include <thread>

#include "svc/tracelog.hh"
#include "util/logging.hh"

namespace tea {

ReplayService::ReplayService(size_t workers, LookupConfig config)
    : cfg(config),
      pool(workers != 0 ? workers
                        : std::max(1u, std::thread::hardware_concurrency()))
{
}

StreamResult
runReplayJob(const ReplayJob &job, LookupConfig cfg)
{
    StreamResult res;
    try {
        if (!job.tea)
            fatal("replay job without an automaton");
        TraceLogReader reader =
            job.logBytes ? TraceLogReader(*job.logBytes)
                         : TraceLogReader::openFile(job.logPath);
        TeaReplayer replayer(*job.tea, cfg);
        BlockTransition tr;
        while (reader.next(tr))
            replayer.feed(tr);
        res.stats = replayer.stats();
        res.execCounts.resize(job.tea->numStates());
        for (StateId id = 0; id < job.tea->numStates(); ++id)
            res.execCounts[id] = replayer.execCount(id);
    } catch (const FatalError &e) {
        res = StreamResult{};
        res.error = e.what();
    }
    return res;
}

BatchResult
ReplayService::runBatch(const std::vector<ReplayJob> &jobs)
{
    BatchResult batch;
    batch.streams.resize(jobs.size());

    for (size_t i = 0; i < jobs.size(); ++i) {
        const ReplayJob &job = jobs[i];
        StreamResult &slot = batch.streams[i];
        pool.submit(
            [&job, &slot, cfg = cfg] { slot = runReplayJob(job, cfg); });
    }
    pool.drain();

    // Merge on the calling thread, in job order: bit-identical to a
    // sequential run no matter how the pool scheduled the jobs.
    bool one_tea = !jobs.empty() && jobs.front().tea != nullptr;
    for (const ReplayJob &job : jobs)
        one_tea = one_tea && job.tea == jobs.front().tea;
    if (one_tea)
        batch.mergedExecCounts.assign(jobs.front().tea->numStates(), 0);

    for (const StreamResult &res : batch.streams) {
        if (!res.ok()) {
            ++batch.failures;
            continue;
        }
        batch.total += res.stats;
        if (one_tea)
            for (size_t s = 0; s < res.execCounts.size(); ++s)
                batch.mergedExecCounts[s] += res.execCounts[s];
    }
    return batch;
}

} // namespace tea
