#include "svc/tracelog.hh"

#include "util/crc32.hh"
#include "util/logging.hh"

namespace tea {

namespace {

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    put32(out, static_cast<uint32_t>(v));
    put32(out, static_cast<uint32_t>(v >> 32));
}

/** LEB128 (7 bits per byte, high bit = continue). */
void
putVar(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint8_t
get8(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    if (cursor >= bytes.size())
        fatal("tracelog: truncated input");
    return bytes[cursor++];
}

uint32_t
get32(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    uint32_t v = get8(bytes, cursor);
    v |= static_cast<uint32_t>(get8(bytes, cursor)) << 8;
    v |= static_cast<uint32_t>(get8(bytes, cursor)) << 16;
    v |= static_cast<uint32_t>(get8(bytes, cursor)) << 24;
    return v;
}

uint64_t
get64(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    uint64_t lo = get32(bytes, cursor);
    uint64_t hi = get32(bytes, cursor);
    return lo | (hi << 32);
}

constexpr uint8_t kMaxEdgeKind = static_cast<uint8_t>(EdgeKind::Halt);

} // namespace

// ----------------------------------------------------- shared codec

void
encodeTransition(std::vector<uint8_t> &out, const BlockTransition &tr)
{
    if (tr.from.end < tr.from.start)
        fatal("transition record: block with end < start");
    putVar(out, tr.from.start);
    putVar(out, tr.from.end - tr.from.start);
    putVar(out, tr.from.icount);
    out.push_back(static_cast<uint8_t>(tr.kind));
    putVar(out, tr.toStart);
}

BlockTransition
decodeTransition(const uint8_t *data, size_t len, size_t &cursor)
{
    auto get8r = [&]() -> uint8_t {
        if (cursor >= len)
            fatal("transition record: truncated input");
        return data[cursor++];
    };
    auto getVarR = [&]() -> uint64_t {
        uint64_t v = 0;
        int shift = 0;
        for (;;) {
            uint8_t byte = get8r();
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
            shift += 7;
            if (shift > 63)
                fatal("transition record: varint too long");
        }
    };

    BlockTransition tr;
    uint64_t start = getVarR();
    uint64_t span = getVarR();
    if (start > kNoAddr || span > kNoAddr - start)
        fatal("transition record: out-of-range block bounds");
    tr.from.start = static_cast<Addr>(start);
    tr.from.end = static_cast<Addr>(start + span);
    tr.from.icount = getVarR();
    uint8_t kind = get8r();
    if (kind > kMaxEdgeKind)
        fatal("transition record: bad edge kind %u", kind);
    tr.kind = static_cast<EdgeKind>(kind);
    uint64_t to = getVarR();
    if (to > kNoAddr)
        fatal("transition record: out-of-range destination");
    tr.toStart = static_cast<Addr>(to);
    return tr;
}

// ---------------------------------------------------------------- writer

TraceLogWriter::TraceLogWriter(const std::string &file_path)
    : file(file_path, std::ios::binary), path(file_path)
{
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    std::vector<uint8_t> header;
    put32(header, TraceLogFormat::kMagic);
    put32(header, TraceLogFormat::kVersion);
    emit(header.data(), header.size());
}

TraceLogWriter::TraceLogWriter(std::vector<uint8_t> *sink) : mem(sink)
{
    TEA_ASSERT(sink != nullptr, "tracelog: null memory sink");
    put32(*mem, TraceLogFormat::kMagic);
    put32(*mem, TraceLogFormat::kVersion);
}

TraceLogWriter::~TraceLogWriter()
{
    try {
        finish();
    } catch (...) {
        // Destructors must not throw; an explicit finish() reports
        // write failures to the caller.
    }
}

void
TraceLogWriter::emit(const uint8_t *data, size_t len)
{
    if (mem) {
        mem->insert(mem->end(), data, data + len);
        return;
    }
    file.write(reinterpret_cast<const char *>(data),
               static_cast<std::streamsize>(len));
    if (!file)
        fatal("error writing '%s'", path.c_str());
}

void
TraceLogWriter::append(const BlockTransition &tr)
{
    TEA_ASSERT(!finished, "tracelog: append after finish");
    encodeTransition(payload, tr);
    ++chunkRecords;
    ++total;
    if (chunkRecords >= TraceLogFormat::kChunkRecords)
        flushChunk();
}

void
TraceLogWriter::flushChunk()
{
    if (chunkRecords == 0)
        return;
    std::vector<uint8_t> head;
    put32(head, chunkRecords);
    put32(head, static_cast<uint32_t>(payload.size()));
    emit(head.data(), head.size());
    emit(payload.data(), payload.size());
    std::vector<uint8_t> tail;
    put32(tail, crc32(payload.data(), payload.size()));
    emit(tail.data(), tail.size());
    payload.clear();
    chunkRecords = 0;
}

void
TraceLogWriter::finish()
{
    if (finished)
        return;
    flushChunk();
    std::vector<uint8_t> trailer;
    put32(trailer, 0);
    put64(trailer, total);
    emit(trailer.data(), trailer.size());
    if (file.is_open()) {
        file.flush();
        if (!file)
            fatal("error writing '%s'", path.c_str());
    }
    finished = true;
}

// ---------------------------------------------------------------- reader

TraceLogReader::TraceLogReader(std::vector<uint8_t> data, Mode m)
    : bytes(std::move(data)), mode(m)
{
    // Bad magic/version throws even in salvage mode: a log whose first
    // eight bytes are wrong proves nothing, so there is no prefix to
    // recover.
    if (get32(bytes, cursor) != TraceLogFormat::kMagic)
        fatal("tracelog: bad magic");
    if (get32(bytes, cursor) != TraceLogFormat::kVersion)
        fatal("tracelog: unsupported version");
}

TraceLogReader
TraceLogReader::openFile(const std::string &path, Mode m)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    return TraceLogReader(std::move(data), m);
}

void
TraceLogReader::loadChunk()
{
    if (mode == Mode::Salvage) {
        size_t chunkStart = cursor;
        try {
            loadChunkStrict();
        } catch (const FatalError &e) {
            // The chunk starting at chunkStart is torn: drop any
            // half-decoded records (they were never CRC-validated in
            // full) and end the stream at the last good chunk.
            chunk.clear();
            chunkPos = 0;
            done = true;
            torn_ = true;
            tornReason_ = e.what();
            discarded = bytes.size() - chunkStart;
        }
        return;
    }
    loadChunkStrict();
}

void
TraceLogReader::loadChunkStrict()
{
    uint32_t nrecords = get32(bytes, cursor);
    if (nrecords == 0) {
        // Trailer: the total must match what the chunks delivered and
        // nothing may follow it.
        uint64_t expect = get64(bytes, cursor);
        if (expect != decoded)
            fatal("tracelog: trailer count %llu disagrees with %llu "
                  "records decoded",
                  static_cast<unsigned long long>(expect),
                  static_cast<unsigned long long>(decoded));
        if (cursor != bytes.size())
            fatal("tracelog: %zu trailing bytes", bytes.size() - cursor);
        done = true;
        return;
    }
    uint32_t nbytes = get32(bytes, cursor);
    if (nbytes > bytes.size() - cursor)
        fatal("tracelog: truncated chunk payload");
    if (nrecords > nbytes)
        fatal("tracelog: chunk record count %u exceeds payload bytes %u",
              nrecords, nbytes);
    const uint8_t *payload = bytes.data() + cursor;
    size_t payload_end = cursor + nbytes;
    size_t crc_cursor = payload_end;
    uint32_t stored = get32(bytes, crc_cursor);
    if (crc32(payload, nbytes) != stored)
        fatal("tracelog: chunk CRC mismatch");

    chunk.clear();
    chunk.reserve(nrecords);
    // Records decode through the shared codec, bounded by the chunk
    // payload: a record that would read past it fails as truncation
    // instead of bleeding into the CRC word.
    for (uint32_t i = 0; i < nrecords; ++i)
        chunk.push_back(decodeTransition(bytes.data(), payload_end,
                                         cursor));
    if (cursor != payload_end)
        fatal("tracelog: %zu undecoded payload bytes",
              payload_end - cursor);
    cursor = crc_cursor; // skip the (already verified) CRC word
    decoded += nrecords;
    chunkPos = 0;
}

bool
TraceLogReader::next(BlockTransition &out)
{
    while (chunkPos >= chunk.size()) {
        if (done)
            return false;
        chunk.clear();
        chunkPos = 0;
        loadChunk();
    }
    out = chunk[chunkPos++];
    ++surfaced;
    return true;
}

std::vector<BlockTransition>
readTraceLog(std::vector<uint8_t> bytes)
{
    TraceLogReader reader(std::move(bytes));
    std::vector<BlockTransition> all;
    BlockTransition tr;
    while (reader.next(tr))
        all.push_back(tr);
    return all;
}

} // namespace tea
