#include "svc/tracelog.hh"

#include <algorithm>
#include <unordered_map>

#include "tea/compiled.hh"
#include "util/crc32.hh"
#include "util/logging.hh"
#include "util/mmap.hh"
#include "util/varint.hh"

namespace tea {

namespace {

/** File-write buffer: chunks accumulate here between write() calls. */
constexpr size_t kWriteBuffer = 256 * 1024;

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    put32(out, static_cast<uint32_t>(v));
    put32(out, static_cast<uint32_t>(v >> 32));
}

// putVar/zigzag/unzigzag live in util/varint.hh now, shared with the
// metrics history ring's delta codec (obs/history.cc).

uint8_t
rd8(const uint8_t *data, size_t len, size_t &cursor)
{
    if (cursor >= len)
        fatal("tracelog: truncated input");
    return data[cursor++];
}

uint32_t
rd32(const uint8_t *data, size_t len, size_t &cursor)
{
    uint32_t v = rd8(data, len, cursor);
    v |= static_cast<uint32_t>(rd8(data, len, cursor)) << 8;
    v |= static_cast<uint32_t>(rd8(data, len, cursor)) << 16;
    v |= static_cast<uint32_t>(rd8(data, len, cursor)) << 24;
    return v;
}

uint64_t
rd64(const uint8_t *data, size_t len, size_t &cursor)
{
    uint64_t lo = rd32(data, len, cursor);
    uint64_t hi = rd32(data, len, cursor);
    return lo | (hi << 32);
}

/**
 * Force the per-record decoders into the chunk loop: at -O2 GCC
 * outlines them (the cold fatal() paths inflate their size estimate),
 * and the call/return alone costs a measurable share of the decode
 * budget at a few ns per record.
 */
#if defined(__GNUC__)
#define TEA_HOT_INLINE inline __attribute__((always_inline))
#else
#define TEA_HOT_INLINE inline
#endif

constexpr uint8_t kMaxEdgeKind = static_cast<uint8_t>(EdgeKind::Halt);

/**
 * The decode cursor of the batch kernel: a raw pointer pair. The
 * varint fast path checks bounds once (a varint spans at most 10
 * bytes), not per byte — decodeChunk() runs it for every field of
 * every record except the last few of a chunk.
 */
struct ByteReader
{
    const uint8_t *p;
    const uint8_t *end;

    size_t left() const { return static_cast<size_t>(end - p); }

    uint8_t
    u8()
    {
        if (p == end)
            fatal("transition record: truncated input");
        return *p++;
    }

    uint64_t
    var()
    {
        if (left() >= 10) {
            uint64_t v = 0;
            for (int shift = 0; shift <= 63; shift += 7) {
                uint8_t byte = *p++;
                v |= static_cast<uint64_t>(byte & 0x7f) << shift;
                if (!(byte & 0x80))
                    return v;
            }
            fatal("transition record: varint too long");
        }
        uint64_t v = 0;
        int shift = 0;
        for (;;) {
            uint8_t byte = u8();
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
            shift += 7;
            if (shift > 63)
                fatal("transition record: varint too long");
        }
    }
};

/** Decode one v1/raw record through the pointer cursor. */
TEA_HOT_INLINE BlockTransition
decodeRawRecord(ByteReader &r)
{
    BlockTransition tr;
    uint64_t start = r.var();
    uint64_t span = r.var();
    if (start > kNoAddr || span > kNoAddr - start)
        fatal("transition record: out-of-range block bounds");
    tr.from.start = static_cast<Addr>(start);
    tr.from.end = static_cast<Addr>(start + span);
    tr.from.icount = r.var();
    uint8_t kind = r.u8();
    if (kind > kMaxEdgeKind)
        fatal("transition record: bad edge kind %u", kind);
    tr.kind = static_cast<EdgeKind>(kind);
    uint64_t to = r.var();
    if (to > kNoAddr)
        fatal("transition record: out-of-range destination");
    tr.toStart = static_cast<Addr>(to);
    return tr;
}

// ------------------------------------------------- v2 delta records
//
// One tag byte, then only the fields the tag says are present:
//
//   bit 0  same-start: from.start == previous record's toStart
//   bit 1  new-block:  explicit varint span + varint icount follow
//                      (and update the chunk dictionary); absent, the
//                      dictionary entry for from.start supplies both
//   bit 2  halt:       toStart = kNoAddr, no destination field
//   bits 3-4           reserved, must be zero
//   bits 5-7           edge kind (0..6)
//
// Field order after the tag: [zigzag from.start delta from the base —
// the previous toStart, or 0 at a chunk start / after a halt] when
// not same-start; [varint span, varint icount] when new-block;
// [zigzag toStart delta from from.start] when not halt. All state is
// per chunk: every chunk decodes standalone, which is what keeps
// salvage's whole-chunk-prefix guarantee intact.

constexpr uint8_t kTagSameStart = 0x01;
constexpr uint8_t kTagNewBlock = 0x02;
constexpr uint8_t kTagHalt = 0x04;
constexpr uint8_t kTagReserved = 0x18;
constexpr int kTagKindShift = 5;

struct DictEntry
{
    Addr span;
    uint64_t icount;
};

/**
 * The chunk dictionary, on the batch kernel's hottest path: one find()
 * per record, one put() per distinct block. Open addressing with
 * linear probing and a multiplicative hash — the per-record cost is
 * one multiply and (almost always) one probe, where unordered_map's
 * bucket chase alone made v2 decode measurably slower than v1.
 */
class BlockDict
{
  public:
    BlockDict() { rehash(1u << 9); }

    /**
     * O(1) between-chunk reset: bumping the generation invalidates
     * every slot without touching the table, and the table keeps its
     * grown capacity — a reused dictionary does no allocation and no
     * memset at a chunk boundary, where assign()-style clearing was a
     * measurable share of the per-record decode budget.
     */
    void
    clear()
    {
        count = 0;
        if (++gen == 0) {
            // Stamp wrap-around: re-zero once every 2^32 clears so a
            // stale stamp can never alias the new generation.
            for (Slot &sl : slots)
                sl.stamp = 0;
            gen = 1;
        }
    }

    const DictEntry *
    find(Addr key) const
    {
        for (size_t i = slot(key);; i = (i + 1) & mask) {
            const Slot &sl = slots[i];
            if (sl.stamp != gen)
                return nullptr;
            if (sl.key == key)
                return &sl.entry;
        }
    }

    void
    put(Addr key, DictEntry v)
    {
        if ((count + 1) * 10 >= capacity * 7)
            grow();
        for (size_t i = slot(key);; i = (i + 1) & mask) {
            Slot &sl = slots[i];
            if (sl.stamp != gen) {
                sl.stamp = gen;
                sl.key = key;
                sl.entry = v;
                ++count;
                return;
            }
            if (sl.key == key) {
                sl.entry = v;
                return;
            }
        }
    }

  private:
    /** One probe touches one cache line: stamp, key, and payload live
     * together rather than in parallel arrays. */
    struct Slot
    {
        uint32_t stamp = 0;
        Addr key = 0;
        DictEntry entry{};
    };

    size_t slot(Addr key) const
    {
        return (static_cast<uint64_t>(key) * 0x9e3779b1u) & mask;
    }

    void
    rehash(size_t cap)
    {
        capacity = cap;
        mask = cap - 1;
        slots.assign(cap, Slot{});
        gen = 1;
        count = 0;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots);
        uint32_t oldGen = gen;
        rehash(capacity * 2);
        for (const Slot &sl : old)
            if (sl.stamp == oldGen)
                put(sl.key, sl.entry);
    }

    std::vector<Slot> slots;
    uint32_t gen = 0;
    size_t capacity = 0;
    size_t mask = 0;
    size_t count = 0;
};

struct DeltaState
{
    Addr prevTo = kNoAddr; ///< previous record's toStart; kNoAddr = none
    BlockDict dict;        ///< by from.start
    StateId pred = Tea::kNteState; ///< elision: the mirrored DFA state
    /** Elision: last kind seen on the (from.start, toStart) edge. */
    std::unordered_map<uint64_t, EdgeKind> edgeKind;
    /** Elision: last label taken out of each automaton state. */
    std::unordered_map<StateId, Addr> lastSucc;

    /**
     * Reset to the chunk-boundary state. Containers keep their
     * capacity, so a thread_local scratch DeltaState makes the codec
     * allocation-free in steady state while every chunk still decodes
     * standalone — exactly the same observable behaviour as a fresh
     * DeltaState.
     */
    void
    reset()
    {
        prevTo = kNoAddr;
        pred = Tea::kNteState;
        dict.clear();
        edgeKind.clear();
        lastSucc.clear();
    }
};

uint64_t
edgeKey(Addr from, Addr to)
{
    return (static_cast<uint64_t>(from) << 32) | to;
}

void
encodeDeltaRecord(std::vector<uint8_t> &out, const BlockTransition &tr,
                  DeltaState &st)
{
    if (tr.from.end < tr.from.start)
        fatal("transition record: block with end < start");
    Addr span = tr.from.end - tr.from.start;
    uint8_t tag = static_cast<uint8_t>(tr.kind) << kTagKindShift;
    bool haveBase = st.prevTo != kNoAddr;
    bool sameStart = haveBase && tr.from.start == st.prevTo;
    if (sameStart)
        tag |= kTagSameStart;
    const DictEntry *it = st.dict.find(tr.from.start);
    bool newBlock =
        it == nullptr || it->span != span || it->icount != tr.from.icount;
    if (newBlock)
        tag |= kTagNewBlock;
    bool halt = tr.toStart == kNoAddr;
    if (halt)
        tag |= kTagHalt;
    out.push_back(tag);
    if (!sameStart)
        putVar(out,
               zigzag(static_cast<int64_t>(tr.from.start) -
                      static_cast<int64_t>(haveBase ? st.prevTo : 0)));
    if (newBlock) {
        putVar(out, span);
        putVar(out, tr.from.icount);
        st.dict.put(tr.from.start, DictEntry{span, tr.from.icount});
    }
    if (!halt)
        putVar(out, zigzag(static_cast<int64_t>(tr.toStart) -
                           static_cast<int64_t>(tr.from.start)));
    st.prevTo = halt ? kNoAddr : tr.toStart;
}

TEA_HOT_INLINE BlockTransition
decodeDeltaRecord(ByteReader &r, DeltaState &st)
{
    uint8_t tag = r.u8();
    if (tag & kTagReserved)
        fatal("transition record: reserved tag bits set");
    uint8_t kind = tag >> kTagKindShift;
    if (kind > kMaxEdgeKind)
        fatal("transition record: bad edge kind %u", kind);
    BlockTransition tr;
    tr.kind = static_cast<EdgeKind>(kind);
    bool haveBase = st.prevTo != kNoAddr;
    int64_t start;
    if (tag & kTagSameStart) {
        if (!haveBase)
            fatal("transition record: same-start without a base");
        start = st.prevTo;
    } else {
        start = static_cast<int64_t>(haveBase ? st.prevTo : 0) +
                unzigzag(r.var());
        if (start < 0 || start > static_cast<int64_t>(kNoAddr))
            fatal("transition record: out-of-range block start");
    }
    tr.from.start = static_cast<Addr>(start);
    if (tag & kTagNewBlock) {
        uint64_t span = r.var();
        if (span > kNoAddr - static_cast<Addr>(start))
            fatal("transition record: out-of-range block bounds");
        tr.from.end = static_cast<Addr>(start + span);
        tr.from.icount = r.var();
        st.dict.put(tr.from.start,
                    DictEntry{static_cast<Addr>(span), tr.from.icount});
    } else {
        const DictEntry *it = st.dict.find(tr.from.start);
        if (it == nullptr)
            fatal("transition record: block 0x%x missing from the "
                  "chunk dictionary",
                  tr.from.start);
        tr.from.end = tr.from.start + it->span;
        tr.from.icount = it->icount;
    }
    if (tag & kTagHalt) {
        tr.toStart = kNoAddr;
        st.prevTo = kNoAddr;
    } else {
        int64_t to = start + unzigzag(r.var());
        if (to < 0 || to >= static_cast<int64_t>(kNoAddr))
            fatal("transition record: out-of-range destination");
        tr.toStart = static_cast<Addr>(to);
        st.prevTo = tr.toStart;
    }
    return tr;
}

// -------------------------------------------------- elision predictor
//
// The writer and reader mirror the replayer's transition function
// exactly (tea/replayer.cc feedCompiled): from a trace state, scan its
// CSR successor run for the label; otherwise — and always from NTE —
// fall back to the global entry index. The state outcome is
// independent of LookupConfig (the local cache is value-transparent
// and the B-tree/flat-hash containers index the same mapping), which
// is what makes one predictor sound for every replay mode.

StateId
predictAdvance(const CompiledTea &ct, StateId s, Addr label)
{
    if (label == kNoAddr)
        return s; // halt: the replayer stays put
    if (s != Tea::kNteState) {
        const CompiledTea::Succ *end = ct.succEnd(s);
        for (const CompiledTea::Succ *p = ct.succBegin(s); p != end; ++p)
            if (p->label == label)
                return p->target;
    }
    return ct.entryAt(label);
}

/**
 * The record the automaton predicts at this point, if any. The
 * destination is the label last taken out of the mirrored state this
 * chunk, defaulting to the state's first CSR successor before the
 * state has fired — last-value prediction anchored on the automaton,
 * so steady-state loop iterations predict perfectly while the
 * automaton prior covers the first visit. The previous destination
 * names the block (so from.start is forced), the dictionary supplies
 * span and icount, and the per-edge kind table supplies the kind the
 * (block, destination) edge carried last. Soundness never rests on a
 * guess being right: the writer compares the prediction against the
 * actual record and sets a bit only on exact equality, so
 * reconstruction is bit-identical by construction.
 */
bool
predictRecord(const CompiledTea &ct, const DeltaState &st,
              BlockTransition &out)
{
    if (st.prevTo == kNoAddr || st.pred == Tea::kNteState)
        return false;
    const DictEntry *it = st.dict.find(st.prevTo);
    if (it == nullptr)
        return false;
    Addr dest;
    auto ls = st.lastSucc.find(st.pred);
    if (ls != st.lastSucc.end()) {
        dest = ls->second;
    } else {
        const CompiledTea::Succ *b = ct.succBegin(st.pred);
        if (ct.succEnd(st.pred) == b)
            return false;
        dest = b->label;
    }
    auto ek = st.edgeKind.find(edgeKey(st.prevTo, dest));
    if (ek == st.edgeKind.end())
        return false;
    out.from.start = st.prevTo;
    out.from.end = st.prevTo + it->span;
    out.from.icount = it->icount;
    out.kind = ek->second;
    out.toStart = dest;
    return true;
}

/**
 * Advance the elision predictor's dynamic tables past one record —
 * writer and reader run this identically, before predictAdvance()
 * moves the mirrored state.
 */
void
notePredictorTables(DeltaState &st, const BlockTransition &tr)
{
    st.edgeKind[edgeKey(tr.from.start, tr.toStart)] = tr.kind;
    if (st.pred != Tea::kNteState && tr.toStart != kNoAddr)
        st.lastSucc[st.pred] = tr.toStart;
}

bool
sameTransition(const BlockTransition &a, const BlockTransition &b)
{
    return a.from.start == b.from.start && a.from.end == b.from.end &&
           a.from.icount == b.from.icount && a.kind == b.kind &&
           a.toStart == b.toStart;
}

} // namespace

// ----------------------------------------------------- shared codec

void
encodeTransition(std::vector<uint8_t> &out, const BlockTransition &tr)
{
    if (tr.from.end < tr.from.start)
        fatal("transition record: block with end < start");
    putVar(out, tr.from.start);
    putVar(out, tr.from.end - tr.from.start);
    putVar(out, tr.from.icount);
    out.push_back(static_cast<uint8_t>(tr.kind));
    putVar(out, tr.toStart);
}

BlockTransition
decodeTransition(const uint8_t *data, size_t len, size_t &cursor)
{
    if (cursor > len)
        fatal("transition record: truncated input");
    ByteReader r{data + cursor, data + len};
    BlockTransition tr = decodeRawRecord(r);
    cursor = static_cast<size_t>(r.p - data);
    return tr;
}

void
encodeChunkPayload(std::vector<uint8_t> &out, ChunkEncoding encoding,
                   const BlockTransition *batch, size_t n,
                   const CompiledTea *automaton)
{
    switch (encoding) {
    case ChunkEncoding::Raw:
        for (size_t i = 0; i < n; ++i)
            encodeTransition(out, batch[i]);
        return;
    case ChunkEncoding::Delta: {
        thread_local DeltaState st;
        st.reset();
        for (size_t i = 0; i < n; ++i)
            encodeDeltaRecord(out, batch[i], st);
        return;
    }
    case ChunkEncoding::Elided: {
        if (automaton == nullptr)
            fatal("tracelog: elided encoding needs an automaton");
        const CompiledTea &ct = *automaton;
        size_t base = out.size();
        out.resize(base + (n + 7) / 8, 0);
        std::vector<uint8_t> fallback;
        thread_local DeltaState st;
        st.reset();
        for (size_t i = 0; i < n; ++i) {
            BlockTransition predicted;
            if (predictRecord(ct, st, predicted) &&
                sameTransition(predicted, batch[i])) {
                out[base + (i >> 3)] |=
                    static_cast<uint8_t>(1u << (i & 7));
                // A predicted destination is a successor label, never
                // kNoAddr, so the base always stays valid here.
                st.prevTo = batch[i].toStart;
            } else {
                encodeDeltaRecord(fallback, batch[i], st);
            }
            notePredictorTables(st, batch[i]);
            st.pred = predictAdvance(ct, st.pred, batch[i].toStart);
        }
        out.insert(out.end(), fallback.begin(), fallback.end());
        return;
    }
    }
    fatal("tracelog: bad chunk encoding %u",
          static_cast<unsigned>(encoding));
}

void
decodeChunk(const TraceChunkView &chunk, const CompiledTea *automaton,
            std::vector<BlockTransition> &out)
{
    // Pre-size and write by index: the per-record push_back capacity
    // check and size bump measurably lengthen the kernel's dependency
    // chain. On a decode error the caller discards `out` wholesale, so
    // the default-constructed tail is never observed.
    size_t base = out.size();
    out.resize(base + chunk.records);
    BlockTransition *dst = out.data() + base;
    ByteReader r{chunk.payload, chunk.payload + chunk.size};
    switch (chunk.encoding) {
    case ChunkEncoding::Raw:
        for (uint32_t i = 0; i < chunk.records; ++i)
            dst[i] = decodeRawRecord(r);
        break;
    case ChunkEncoding::Delta: {
        thread_local DeltaState st;
        st.reset();
        for (uint32_t i = 0; i < chunk.records; ++i)
            dst[i] = decodeDeltaRecord(r, st);
        break;
    }
    case ChunkEncoding::Elided: {
        if (automaton == nullptr)
            fatal("tracelog: elided chunk needs the recording "
                  "automaton");
        const CompiledTea &ct = *automaton;
        size_t nbits = (static_cast<size_t>(chunk.records) + 7) / 8;
        if (chunk.size < nbits)
            fatal("tracelog: truncated elision bitset");
        const uint8_t *bits = chunk.payload;
        r.p = chunk.payload + nbits;
        thread_local DeltaState st;
        st.reset();
        for (uint32_t i = 0; i < chunk.records; ++i) {
            BlockTransition &tr = dst[i];
            if ((bits[i >> 3] >> (i & 7)) & 1) {
                if (!predictRecord(ct, st, tr))
                    fatal("tracelog: elided record %u is not "
                          "predictable",
                          i);
                st.prevTo = tr.toStart;
            } else {
                tr = decodeDeltaRecord(r, st);
            }
            notePredictorTables(st, tr);
            st.pred = predictAdvance(ct, st.pred, tr.toStart);
        }
        break;
    }
    default:
        fatal("tracelog: bad chunk encoding %u",
              static_cast<unsigned>(chunk.encoding));
    }
    if (r.p != r.end)
        fatal("tracelog: %zu undecoded payload bytes", r.left());
}

// ------------------------------------------------------- wire chunks

void
encodeWireChunk(std::vector<uint8_t> &out, const BlockTransition *batch,
                size_t n)
{
    std::vector<uint8_t> payload;
    encodeChunkPayload(payload, ChunkEncoding::Delta, batch, n);
    std::vector<uint8_t> head;
    put32(head, static_cast<uint32_t>(n));
    head.push_back(static_cast<uint8_t>(ChunkEncoding::Delta));
    put32(head, static_cast<uint32_t>(payload.size()));
    uint32_t crc = crc32Update(crc32(head.data(), head.size()),
                               payload.data(), payload.size());
    out.insert(out.end(), head.begin(), head.end());
    out.insert(out.end(), payload.begin(), payload.end());
    put32(out, crc);
}

std::vector<BlockTransition>
decodeWireChunk(const uint8_t *data, size_t len)
{
    size_t cursor = 0;
    uint32_t nrecords = rd32(data, len, cursor);
    if (nrecords > TraceLogFormat::kMaxChunkRecords)
        fatal("tracelog: chunk record count %u exceeds limit %u",
              nrecords, TraceLogFormat::kMaxChunkRecords);
    uint8_t enc = rd8(data, len, cursor);
    if (enc > static_cast<uint8_t>(ChunkEncoding::Elided))
        fatal("tracelog: bad chunk encoding %u", enc);
    if (enc == static_cast<uint8_t>(ChunkEncoding::Elided))
        fatal("tracelog: elided chunks are not valid on the wire");
    uint32_t nbytes = rd32(data, len, cursor);
    if (nbytes > len - cursor)
        fatal("tracelog: truncated chunk payload");
    if (nrecords > nbytes)
        fatal("tracelog: chunk record count %u exceeds payload bytes %u",
              nrecords, nbytes);
    const uint8_t *payload = data + cursor;
    size_t payloadEnd = cursor + nbytes;
    size_t crcCursor = payloadEnd;
    uint32_t stored = rd32(data, len, crcCursor);
    if (crc32(data, payloadEnd) != stored)
        fatal("tracelog: chunk CRC mismatch");
    if (crcCursor != len)
        fatal("tracelog: %zu trailing bytes", len - crcCursor);
    std::vector<BlockTransition> out;
    decodeChunk(TraceChunkView{nrecords,
                               static_cast<ChunkEncoding>(enc), payload,
                               nbytes},
                nullptr, out);
    return out;
}

// ---------------------------------------------------------------- writer

TraceLogWriter::TraceLogWriter(const std::string &file_path,
                               TraceLogOptions options)
    : opts(std::move(options)), file(file_path, std::ios::binary),
      path(file_path)
{
    if (opts.version != TraceLogFormat::kVersion &&
        opts.version != TraceLogFormat::kVersionV1)
        fatal("tracelog: unsupported writer version %u", opts.version);
    if (opts.elideWith && opts.version == TraceLogFormat::kVersionV1)
        fatal("tracelog: elision needs container version 2");
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    std::vector<uint8_t> header;
    put32(header, TraceLogFormat::kMagic);
    put32(header, opts.version);
    emit(header.data(), header.size());
}

TraceLogWriter::TraceLogWriter(std::vector<uint8_t> *sink,
                               TraceLogOptions options)
    : opts(std::move(options)), mem(sink)
{
    TEA_ASSERT(sink != nullptr, "tracelog: null memory sink");
    if (opts.version != TraceLogFormat::kVersion &&
        opts.version != TraceLogFormat::kVersionV1)
        fatal("tracelog: unsupported writer version %u", opts.version);
    if (opts.elideWith && opts.version == TraceLogFormat::kVersionV1)
        fatal("tracelog: elision needs container version 2");
    std::vector<uint8_t> header;
    put32(header, TraceLogFormat::kMagic);
    put32(header, opts.version);
    emit(header.data(), header.size());
}

TraceLogWriter::~TraceLogWriter()
{
    try {
        finish();
    } catch (...) {
        // Destructors must not throw; an explicit finish() reports
        // write failures to the caller.
    }
}

void
TraceLogWriter::emit(const uint8_t *data, size_t len)
{
    flushed += len;
    if (mem) {
        mem->insert(mem->end(), data, data + len);
        return;
    }
    obuf.insert(obuf.end(), data, data + len);
}

void
TraceLogWriter::drainToFile(bool force)
{
    if (mem || obuf.empty())
        return;
    if (!force && obuf.size() < kWriteBuffer)
        return;
    file.write(reinterpret_cast<const char *>(obuf.data()),
               static_cast<std::streamsize>(obuf.size()));
    if (!file)
        fatal("error writing '%s'", path.c_str());
    obuf.clear();
}

void
TraceLogWriter::append(const BlockTransition &tr)
{
    TEA_ASSERT(!finished, "tracelog: append after finish");
    if (tr.from.end < tr.from.start)
        fatal("transition record: block with end < start");
    pending.push_back(tr);
    ++total;
    if (pending.size() >= TraceLogFormat::kChunkRecords)
        flushChunk();
}

void
TraceLogWriter::flushChunk()
{
    if (pending.empty())
        return;
    ChunkEncoding enc = ChunkEncoding::Raw;
    if (opts.version >= 2)
        enc = opts.elideWith ? ChunkEncoding::Elided
                             : ChunkEncoding::Delta;
    scratch.clear();
    encodeChunkPayload(scratch, enc, pending.data(), pending.size(),
                       opts.elideWith.get());
    std::vector<uint8_t> head;
    put32(head, static_cast<uint32_t>(pending.size()));
    if (opts.version >= 2)
        head.push_back(static_cast<uint8_t>(enc));
    put32(head, static_cast<uint32_t>(scratch.size()));
    // v2 CRCs cover the chunk header too: a flipped encoding byte or
    // record count must not pass as a valid chunk of another shape.
    uint32_t crc =
        opts.version >= 2
            ? crc32Update(crc32(head.data(), head.size()),
                          scratch.data(), scratch.size())
            : crc32(scratch.data(), scratch.size());
    emit(head.data(), head.size());
    emit(scratch.data(), scratch.size());
    std::vector<uint8_t> tail;
    put32(tail, crc);
    emit(tail.data(), tail.size());
    pending.clear();
    drainToFile(false);
}

void
TraceLogWriter::finish()
{
    if (finished)
        return;
    flushChunk();
    std::vector<uint8_t> trailer;
    put32(trailer, 0);
    put64(trailer, total);
    emit(trailer.data(), trailer.size());
    drainToFile(true);
    if (file.is_open()) {
        file.flush();
        if (!file)
            fatal("error writing '%s'", path.c_str());
    }
    finished = true;
}

// ---------------------------------------------------------------- reader

TraceLogReader::TraceLogReader(std::vector<uint8_t> bytes, Mode m,
                               const CompiledTea *ct)
    : owned(std::move(bytes))
{
    data = owned.data();
    len = owned.size();
    automaton = ct;
    mode = m;
    readHeader();
}

TraceLogReader::TraceLogReader(const uint8_t *d, size_t n, Mode m,
                               const CompiledTea *ct)
{
    data = d;
    len = n;
    automaton = ct;
    mode = m;
    readHeader();
}

void
TraceLogReader::readHeader()
{
    // Bad magic/version throws even in salvage mode: a log whose first
    // eight bytes are wrong proves nothing, so there is no prefix to
    // recover.
    if (rd32(data, len, cursor) != TraceLogFormat::kMagic)
        fatal("tracelog: bad magic");
    version_ = rd32(data, len, cursor);
    if (version_ != TraceLogFormat::kVersion &&
        version_ != TraceLogFormat::kVersionV1)
        fatal("tracelog: unsupported version");
}

TraceLogReader
TraceLogReader::openFile(const std::string &path, Mode m,
                         const CompiledTea *ct)
{
    // mmap instead of a read-ahead copy: the kernel pages the log in
    // as decode walks it, and a multi-gigabyte log costs no heap.
    std::shared_ptr<const MappedFile> mf = MappedFile::openShared(path);
    TraceLogReader reader(mf->data(), mf->size(), m, ct);
    reader.map = std::move(mf);
    return reader;
}

void
TraceLogReader::loadChunk()
{
    if (mode == Mode::Salvage) {
        size_t chunkStart = cursor;
        try {
            loadChunkStrict();
        } catch (const FatalError &e) {
            // The chunk starting at chunkStart is torn: drop any
            // half-decoded records (they were never CRC-validated in
            // full) and end the stream at the last good chunk.
            chunk.clear();
            chunkPos = 0;
            done = true;
            torn_ = true;
            tornReason_ = e.what();
            discarded = len - chunkStart;
        }
        return;
    }
    loadChunkStrict();
}

void
TraceLogReader::loadChunkStrict()
{
    size_t headStart = cursor;
    uint32_t nrecords = rd32(data, len, cursor);
    if (nrecords == 0) {
        // Trailer: the total must match what the chunks delivered and
        // nothing may follow it.
        uint64_t expect = rd64(data, len, cursor);
        if (expect != decoded)
            fatal("tracelog: trailer count %llu disagrees with %llu "
                  "records decoded",
                  static_cast<unsigned long long>(expect),
                  static_cast<unsigned long long>(decoded));
        if (cursor != len)
            fatal("tracelog: %zu trailing bytes", len - cursor);
        done = true;
        return;
    }
    ChunkEncoding enc = ChunkEncoding::Raw;
    if (version_ >= 2) {
        uint8_t e = rd8(data, len, cursor);
        if (e > static_cast<uint8_t>(ChunkEncoding::Elided))
            fatal("tracelog: bad chunk encoding %u", e);
        enc = static_cast<ChunkEncoding>(e);
        if (nrecords > TraceLogFormat::kMaxChunkRecords)
            fatal("tracelog: chunk record count %u exceeds limit %u",
                  nrecords, TraceLogFormat::kMaxChunkRecords);
    }
    uint32_t nbytes = rd32(data, len, cursor);
    if (nbytes > len - cursor)
        fatal("tracelog: truncated chunk payload");
    if (enc != ChunkEncoding::Elided && nrecords > nbytes)
        fatal("tracelog: chunk record count %u exceeds payload bytes %u",
              nrecords, nbytes);
    const uint8_t *payload = data + cursor;
    size_t payload_end = cursor + nbytes;
    size_t crc_cursor = payload_end;
    uint32_t stored = rd32(data, len, crc_cursor);
    uint32_t actual =
        version_ >= 2 ? crc32(data + headStart, payload_end - headStart)
                      : crc32(payload, nbytes);
    if (actual != stored)
        fatal("tracelog: chunk CRC mismatch");

    chunk.clear();
    // The whole CRC-validated chunk decodes through the batch kernel;
    // a record that would read past the payload fails as truncation
    // instead of bleeding into the CRC word.
    decodeChunk(TraceChunkView{nrecords, enc, payload, nbytes},
                automaton, chunk);
    cursor = crc_cursor; // skip the (already verified) CRC word
    decoded += nrecords;
    chunkPos = 0;
}

bool
TraceLogReader::next(BlockTransition &out)
{
    while (chunkPos >= chunk.size()) {
        if (done)
            return false;
        chunk.clear();
        chunkPos = 0;
        loadChunk();
    }
    out = chunk[chunkPos++];
    ++surfaced;
    return true;
}

const std::vector<BlockTransition> *
TraceLogReader::nextChunk()
{
    TEA_ASSERT(chunkPos >= chunk.size(),
               "tracelog: nextChunk() with records still unread");
    if (done)
        return nullptr;
    chunk.clear();
    chunkPos = 0;
    loadChunk();
    if (chunk.empty())
        return nullptr; // trailer, or the tear in salvage mode
    chunkPos = chunk.size();
    surfaced += chunk.size();
    return &chunk;
}

std::vector<BlockTransition>
readTraceLog(std::vector<uint8_t> bytes, const CompiledTea *automaton)
{
    TraceLogReader reader(std::move(bytes), TraceLogReader::Mode::Strict,
                          automaton);
    std::vector<BlockTransition> all;
    while (const std::vector<BlockTransition> *c = reader.nextChunk())
        all.insert(all.end(), c->begin(), c->end());
    return all;
}

// ------------------------------------------------------------- inspect

TraceLogInfo
inspectTraceLog(const uint8_t *data, size_t len)
{
    TraceLogInfo info;
    info.fileBytes = len;
    size_t cursor = 0;
    if (rd32(data, len, cursor) != TraceLogFormat::kMagic)
        fatal("tracelog: bad magic");
    info.version = rd32(data, len, cursor);
    if (info.version != TraceLogFormat::kVersion &&
        info.version != TraceLogFormat::kVersionV1)
        fatal("tracelog: unsupported version");
    for (;;) {
        size_t headStart = cursor;
        uint32_t nrecords = rd32(data, len, cursor);
        if (nrecords == 0) {
            uint64_t expect = rd64(data, len, cursor);
            if (expect != info.records)
                fatal("tracelog: trailer count %llu disagrees with "
                      "%llu records framed",
                      static_cast<unsigned long long>(expect),
                      static_cast<unsigned long long>(info.records));
            if (cursor != len)
                fatal("tracelog: %zu trailing bytes", len - cursor);
            return info;
        }
        TraceLogChunkInfo ci;
        ci.records = nrecords;
        if (info.version >= 2) {
            uint8_t e = rd8(data, len, cursor);
            if (e > static_cast<uint8_t>(ChunkEncoding::Elided))
                fatal("tracelog: bad chunk encoding %u", e);
            ci.encoding = static_cast<ChunkEncoding>(e);
            if (nrecords > TraceLogFormat::kMaxChunkRecords)
                fatal("tracelog: chunk record count %u exceeds limit "
                      "%u",
                      nrecords, TraceLogFormat::kMaxChunkRecords);
        }
        uint32_t nbytes = rd32(data, len, cursor);
        if (nbytes > len - cursor)
            fatal("tracelog: truncated chunk payload");
        ci.payloadBytes = nbytes;
        const uint8_t *payload = data + cursor;
        size_t payload_end = cursor + nbytes;
        size_t crc_cursor = payload_end;
        uint32_t stored = rd32(data, len, crc_cursor);
        uint32_t actual = info.version >= 2
                              ? crc32(data + headStart,
                                      payload_end - headStart)
                              : crc32(payload, nbytes);
        if (actual != stored)
            fatal("tracelog: chunk CRC mismatch");
        switch (ci.encoding) {
        case ChunkEncoding::Raw:
            ++info.rawChunks;
            break;
        case ChunkEncoding::Delta:
            ++info.deltaChunks;
            break;
        case ChunkEncoding::Elided: {
            ++info.elidedChunks;
            size_t nbits = (static_cast<size_t>(nrecords) + 7) / 8;
            if (nbytes < nbits)
                fatal("tracelog: truncated elision bitset");
            for (size_t i = 0; i < nbits; ++i) {
                uint8_t byte = payload[i];
                if (i == nbits - 1 && (nrecords & 7) != 0)
                    byte &= static_cast<uint8_t>(
                        (1u << (nrecords & 7)) - 1);
                ci.elidedRecords +=
                    static_cast<uint32_t>(__builtin_popcount(byte));
            }
            break;
        }
        }
        info.records += nrecords;
        info.payloadBytes += nbytes;
        info.elidedRecords += ci.elidedRecords;
        info.chunks.push_back(ci);
        cursor = crc_cursor;
    }
}

} // namespace tea
