/**
 * @file
 * A named, sharded store of immutable TEA automata.
 *
 * The replay service resolves jobs against automata by name. Automata
 * are held as `shared_ptr<const Tea>` snapshots: a `Tea` is immutable
 * after construction, so any number of worker threads may replay
 * against the same snapshot lock-free, and evicting a name never
 * invalidates replays already in flight — they keep their reference
 * until the batch drains.
 *
 * put() also compiles the snapshot into a CompiledTea exactly once, so
 * every replay against a registered automaton — svc batch jobs and net
 * sessions alike — shares one flat kernel image instead of each stream
 * re-walking (or re-flattening) the mutable Tea. The compiled snapshot
 * co-owns its source Tea, so the same eviction guarantee holds for it.
 *
 * The name map itself is sharded: each shard has its own mutex, so
 * concurrent lookups of different names do not serialize. Lock scope is
 * a single shard for every operation except list()/size(), which sweep
 * the shards one at a time (they never hold two shard locks at once,
 * so no lock-order issues).
 */

#ifndef TEA_SVC_REGISTRY_HH
#define TEA_SVC_REGISTRY_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tea/automaton.hh"
#include "tea/compiled.hh"

namespace tea {

/**
 * A pinned (automaton, compiled image) pair, safe across eviction.
 *
 * `tea` may be null while `compiled` is set: automatons faulted in from
 * a persistent store (store/store.hh) are mapped `.teac` images that
 * never materialize a Tea. A CompiledTea is self-describing, so every
 * replay path except the reference kernel works from `compiled` alone;
 * the reference kernel rehydrates the embedded source on demand.
 */
struct AutomatonSnapshot
{
    std::shared_ptr<const Tea> tea;
    std::shared_ptr<const CompiledTea> compiled;

    explicit operator bool() const
    {
        return tea != nullptr || compiled != nullptr;
    }
};

class AutomatonRegistry
{
  public:
    static constexpr size_t kDefaultShards = 16;

    explicit AutomatonRegistry(size_t shard_count = kDefaultShards);

    /** Install (or replace) an automaton. @return the stored snapshot. */
    std::shared_ptr<const Tea> put(const std::string &name, Tea tea);

    /**
     * Install an already-compiled snapshot (a mapped `.teac` image, or
     * a precompiled fleet member). The stored `tea` field is whatever
     * source the image co-owns — typically null for mapped images.
     * @return the stored snapshot
     */
    AutomatonSnapshot putCompiled(const std::string &name,
                                  std::shared_ptr<const CompiledTea> compiled);

    /**
     * Atomic hot-swap: install `compiled` under `name` and return the
     * snapshot it displaced (empty when the name was new). The swap is
     * one pointer assignment under the shard lock — a concurrent
     * snapshot() observes either the old snapshot or the new one,
     * never a mix — and replays that pinned the old snapshot keep it
     * alive through their shared_ptr until they drain, exactly like
     * eviction. This is the recording service's publish step: new
     * requests resolve the grown automaton while in-flight replays
     * finish against the version they started with.
     */
    AutomatonSnapshot replace(const std::string &name,
                              std::shared_ptr<const CompiledTea> compiled);

    /**
     * Load a serialized TEA (tea/serialize.hh) and install it.
     * @throws FatalError on unreadable or corrupt files.
     */
    std::shared_ptr<const Tea> loadFile(const std::string &name,
                                        const std::string &path);

    /** Snapshot by name, or nullptr when absent. */
    std::shared_ptr<const Tea> get(const std::string &name) const;

    /**
     * Automaton plus its shared CompiledTea (compiled once at put()).
     * Both empty when the name is absent. The fields co-own the
     * underlying automaton: replays keep them until done, so eviction
     * never invalidates an in-flight stream.
     */
    AutomatonSnapshot snapshot(const std::string &name) const;

    /** Drop a name. @return false when it was not registered. */
    bool evict(const std::string &name);

    /** Registered names, sorted. */
    std::vector<std::string> list() const;

    /** Number of registered automata. */
    size_t size() const;

    /**
     * Resident bytes of every registered compiled image (the lookup
     * structures a replay walks; tea/compiled.hh footprintBytes()).
     * This is the number the store's `maxResidentBytes` budget caps and
     * the `registry.footprint_bytes` gauge exports.
     */
    size_t footprintBytes() const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, AutomatonSnapshot> map;
    };

    Shard &shardFor(const std::string &name) const;

    mutable std::vector<Shard> shards;
};

} // namespace tea

#endif // TEA_SVC_REGISTRY_HH
