/**
 * @file
 * The streaming trace-log format: a recorded BlockTransition stream.
 *
 * This is the "record in one system, replay in another" transport: the
 * recording side hooks a TraceLogWriter behind its BlockTracker and
 * ships the resulting file; the replay side streams it back through a
 * TraceLogReader into a TeaReplayer — no guest program, VM, or even ISA
 * required on the replay host.
 *
 * On-disk layout (little endian; varints are LEB128, see
 * docs/FORMATS.md for the normative description):
 *
 *   u32 magic 'TEAL'   u32 version
 *   chunk*:  u32 record count (> 0)
 *            u32 payload bytes
 *            payload        ; `record count` encoded transitions
 *            u32 CRC-32 of payload
 *   trailer: u32 0          ; chunk with record count 0 = end marker
 *            u64 total record count
 *
 * Each record encodes one BlockTransition:
 *   varint from.start, varint from.end - from.start, varint icount,
 *   u8 edge kind, varint toStart (kNoAddr for the final halt record).
 *
 * The explicit trailer makes truncation detectable: a reader that hits
 * EOF before the end marker (or whose summed chunk counts disagree with
 * the trailer) reports FatalError instead of silently replaying a
 * partial stream. Per-chunk CRCs catch payload bit-rot without forcing
 * the reader to buffer the whole file.
 */

#ifndef TEA_SVC_TRACELOG_HH
#define TEA_SVC_TRACELOG_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "vm/block.hh"

namespace tea {

/** Trace-log container constants (shared by writer, reader, tests). */
struct TraceLogFormat
{
    static constexpr uint32_t kMagic = 0x5445414c; // "TEAL"
    static constexpr uint32_t kVersion = 1;
    /** Writer flushes a chunk at this many records. */
    static constexpr uint32_t kChunkRecords = 4096;
};

/**
 * Appends BlockTransitions to a chunked log.
 *
 * Hook it behind a BlockTracker callback; call finish() (or let the
 * destructor do it) to emit the trailer. A log without its trailer is
 * deliberately unreadable — crash-truncated recordings must not replay
 * as if complete.
 */
class TraceLogWriter
{
  public:
    /** Write to a file. @throws FatalError when the file can't open. */
    explicit TraceLogWriter(const std::string &path);

    /** Write into a caller-owned buffer (tests, benches). */
    explicit TraceLogWriter(std::vector<uint8_t> *sink);

    /** Calls finish() if the caller has not. */
    ~TraceLogWriter();

    TraceLogWriter(const TraceLogWriter &) = delete;
    TraceLogWriter &operator=(const TraceLogWriter &) = delete;

    /** Append one record. @throws PanicError after finish(). */
    void append(const BlockTransition &tr);

    /** Flush the open chunk and write the trailer; idempotent. */
    void finish();

    /** Records appended so far. */
    uint64_t records() const { return total; }

  private:
    void emit(const uint8_t *data, size_t len);
    void flushChunk();

    std::ofstream file;
    std::vector<uint8_t> *mem = nullptr;
    std::string path; ///< for error messages; empty for memory sinks
    std::vector<uint8_t> payload; ///< open chunk
    uint32_t chunkRecords = 0;
    uint64_t total = 0;
    bool finished = false;
};

/**
 * Streams a trace log back, validating as it goes.
 *
 * Decodes one chunk at a time: the CRC of a chunk is checked before any
 * of its records are surfaced, and the trailer is checked when the last
 * chunk is consumed — next() never returns data from a corrupt or
 * truncated region. All corruption surfaces as FatalError.
 */
class TraceLogReader
{
  public:
    /** Take ownership of an in-memory log. @throws FatalError. */
    explicit TraceLogReader(std::vector<uint8_t> bytes);

    /** Read a log file fully into memory and open it. */
    static TraceLogReader openFile(const std::string &path);

    /**
     * Fetch the next record.
     * @return false at the (validated) end of the log
     * @throws FatalError on any corruption or truncation
     */
    bool next(BlockTransition &out);

    /** Records surfaced so far. */
    uint64_t recordsRead() const { return surfaced; }

  private:
    void loadChunk();

    std::vector<uint8_t> bytes;
    size_t cursor = 0;
    std::vector<BlockTransition> chunk; ///< decoded records of one chunk
    size_t chunkPos = 0;
    uint64_t surfaced = 0; ///< records returned by next()
    uint64_t decoded = 0;  ///< records decoded from chunks (trailer check)
    bool done = false;
};

/** Convenience: decode an entire in-memory log. @throws FatalError. */
std::vector<BlockTransition> readTraceLog(std::vector<uint8_t> bytes);

} // namespace tea

#endif // TEA_SVC_TRACELOG_HH
