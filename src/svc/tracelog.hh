/**
 * @file
 * The streaming trace-log format: a recorded BlockTransition stream.
 *
 * This is the "record in one system, replay in another" transport: the
 * recording side hooks a TraceLogWriter behind its BlockTracker and
 * ships the resulting file; the replay side streams it back through a
 * TraceLogReader into a TeaReplayer — no guest program, VM, or even ISA
 * required on the replay host.
 *
 * On-disk layout (little endian; varints are LEB128, see
 * docs/FORMATS.md for the normative description):
 *
 *   u32 magic 'TEAL'   u32 version (1 or 2)
 *   chunk*:  u32 record count (> 0)
 *            [v2] u8 encoding   ; 0 raw, 1 delta, 2 elided
 *            u32 payload bytes
 *            payload
 *            u32 CRC-32         ; v1: payload only, v2: header+payload
 *   trailer: u32 0          ; chunk with record count 0 = end marker
 *            u64 total record count
 *
 * Version 1 encodes every record standalone (~15 bytes); the reader
 * accepts it forever. Version 2 — the writer default — compresses
 * three ways, each chunk self-contained (the codec state resets at
 * every chunk boundary, so salvage still recovers whole chunks):
 *
 * - *delta records*: `from.start` is implied by (or a zigzag delta
 *   from) the previous record's `toStart`, and a per-chunk dictionary
 *   keyed by start address replaces the span/icount of a revisited
 *   block, so the steady-state record is 2–4 bytes;
 * - *automaton-predicted elision* (opt-in via
 *   TraceLogOptions::elideWith): the chunk leads with a bitset, one
 *   bit per record; a 1-bit costs no payload at all — the reader
 *   replays the same CompiledTea to reconstruct the record the DFA
 *   fully determines — and a 0-bit falls back to an explicit delta
 *   record (cold blocks, trace entries/exits, halts);
 * - decodeChunk(), a batch kernel that decodes a whole CRC-validated
 *   chunk into a caller-provided vector with one bounds check per
 *   record region instead of one per byte.
 *
 * The explicit trailer makes truncation detectable: a reader that hits
 * EOF before the end marker (or whose summed chunk counts disagree with
 * the trailer) reports FatalError instead of silently replaying a
 * partial stream. Per-chunk CRCs catch payload bit-rot without forcing
 * the reader to buffer the whole file.
 */

#ifndef TEA_SVC_TRACELOG_HH
#define TEA_SVC_TRACELOG_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "vm/block.hh"

namespace tea {

class CompiledTea;
class MappedFile;

/** Trace-log container constants (shared by writer, reader, tests). */
struct TraceLogFormat
{
    static constexpr uint32_t kMagic = 0x5445414c; // "TEAL"
    /** What the writer emits by default. */
    static constexpr uint32_t kVersion = 2;
    /** The uncompressed legacy container; readable forever. */
    static constexpr uint32_t kVersionV1 = 1;
    /** Writer flushes a chunk at this many records. */
    static constexpr uint32_t kChunkRecords = 4096;
    /**
     * Reader-side cap on one v2 chunk's record count. An elided chunk
     * frames up to 8 records per payload byte, so without a cap a
     * small forged header could demand a multi-gigabyte decode
     * allocation. Writers flush at kChunkRecords; the cap leaves 256x
     * headroom for other producers. (v1 chunks are implicitly bounded:
     * every record costs at least one payload byte.)
     */
    static constexpr uint32_t kMaxChunkRecords = 1u << 20;
};

/** How one v2 chunk's payload encodes its records. */
enum class ChunkEncoding : uint8_t
{
    Raw = 0,   ///< concatenated v1 records
    Delta = 1, ///< delta + dictionary records
    Elided = 2 ///< prediction bitset + explicit delta fallbacks
};

/**
 * The standalone transition record encoding — v1 chunk payloads and
 * the legacy wire RECORD_CHUNK payload (net/frame.hh):
 *
 *   varint from.start, varint from.end - from.start, varint icount,
 *   u8 edge kind, varint toStart (kNoAddr for the final halt record)
 *
 * encodeTransition() appends one record to `out`; @throws FatalError
 * when the block bounds are inverted (end < start) — the only state a
 * live BlockTracker can never produce.
 */
void encodeTransition(std::vector<uint8_t> &out,
                      const BlockTransition &tr);

/**
 * Decode one encodeTransition() record from `data[cursor..len)`,
 * advancing `cursor` past it. Truncation, overlong varints,
 * out-of-range addresses, and bad edge kinds all throw FatalError —
 * a malformed record is never partially surfaced.
 */
BlockTransition decodeTransition(const uint8_t *data, size_t len,
                                 size_t &cursor);

/**
 * A borrowed view of one chunk's decoded framing: the reader (and the
 * wire) validate the CRC and hand the payload here for batch decode.
 */
struct TraceChunkView
{
    uint32_t records = 0;
    ChunkEncoding encoding = ChunkEncoding::Raw;
    const uint8_t *payload = nullptr;
    size_t size = 0; ///< payload bytes
};

/**
 * Batch-decode one CRC-validated chunk, appending exactly
 * `chunk.records` transitions to `out`. This is the hot decode kernel:
 * a pointer cursor with a fast varint path that checks bounds once per
 * record region, not per byte. Elided chunks need the same
 * `automaton` the writer was seeded with; passing nullptr for one
 * throws. Every malformed payload — truncation, overlong varints,
 * out-of-range deltas, dictionary misses, reserved tag bits, an
 * elided bit the automaton cannot predict, trailing bytes — throws
 * FatalError with nothing partially appended beyond the failing
 * record.
 */
void decodeChunk(const TraceChunkView &chunk,
                 const CompiledTea *automaton,
                 std::vector<BlockTransition> &out);

/**
 * Encode `n` transitions as one chunk payload (no container header or
 * CRC — the writer and the wire frame it). Elided encoding requires
 * `automaton`; Raw and Delta ignore it.
 */
void encodeChunkPayload(std::vector<uint8_t> &out,
                        ChunkEncoding encoding,
                        const BlockTransition *batch, size_t n,
                        const CompiledTea *automaton = nullptr);

/**
 * The v2 wire RECORD_CHUNK payload: one self-contained framed chunk
 * (v2 chunk header + delta payload + CRC-32 over both), so a batch of
 * revisited blocks costs 2–4 bytes each on the wire instead of ~15.
 * Negotiated via RecordFlags::kChunksV2 (net/frame.hh).
 */
void encodeWireChunk(std::vector<uint8_t> &out,
                     const BlockTransition *batch, size_t n);

/**
 * Decode one encodeWireChunk() payload. @throws FatalError on any
 * framing or codec defect (truncation, CRC mismatch, trailing bytes,
 * malformed records) — a malformed wire chunk surfaces atomically,
 * never as a partial batch.
 */
std::vector<BlockTransition> decodeWireChunk(const uint8_t *data,
                                             size_t len);

/** Writer knobs; the default writes v2 delta chunks. */
struct TraceLogOptions
{
    /** kVersion (2) or kVersionV1 (1). */
    uint32_t version = TraceLogFormat::kVersion;
    /**
     * Seed the writer with a compiled automaton to emit Elided chunks
     * (v2 only): transitions the DFA fully determines cost one bitset
     * bit. The reader must be handed the same automaton to decode.
     */
    std::shared_ptr<const CompiledTea> elideWith;
};

/**
 * Appends BlockTransitions to a chunked log.
 *
 * Hook it behind a BlockTracker callback; call finish() (or let the
 * destructor do it) to emit the trailer. A log without its trailer is
 * deliberately unreadable — crash-truncated recordings must not replay
 * as if complete. File output is buffered: chunks accumulate in
 * memory and reach the OS in >=256 KiB writes (one syscall per many
 * chunks, not three per chunk); finish() drains and flushes.
 */
class TraceLogWriter
{
  public:
    /** Write to a file. @throws FatalError when the file can't open. */
    explicit TraceLogWriter(const std::string &path,
                            TraceLogOptions options = {});

    /** Write into a caller-owned buffer (tests, benches, the wire). */
    explicit TraceLogWriter(std::vector<uint8_t> *sink,
                            TraceLogOptions options = {});

    /** Calls finish() if the caller has not. */
    ~TraceLogWriter();

    TraceLogWriter(const TraceLogWriter &) = delete;
    TraceLogWriter &operator=(const TraceLogWriter &) = delete;

    /** Append one record. @throws PanicError after finish(). */
    void append(const BlockTransition &tr);

    /** Flush the open chunk and write the trailer; idempotent. */
    void finish();

    /** Records appended so far. */
    uint64_t records() const { return total; }

    /**
     * Encoded log bytes produced so far (header + completed chunks;
     * + trailer once finish() ran). Counted as chunks are encoded, so
     * benches and rec.* metrics report bytes without stat-ing the
     * file; bytes still in the write buffer are included.
     */
    uint64_t flushedBytes() const { return flushed; }

    /** The container version being written (1 or 2). */
    uint32_t version() const { return opts.version; }

  private:
    void emit(const uint8_t *data, size_t len);
    void flushChunk();
    void drainToFile(bool force);

    TraceLogOptions opts;
    std::ofstream file;
    std::vector<uint8_t> *mem = nullptr;
    std::string path; ///< for error messages; empty for memory sinks
    std::vector<BlockTransition> pending; ///< open chunk's records
    std::vector<uint8_t> obuf;    ///< buffered file bytes
    std::vector<uint8_t> scratch; ///< encoded-chunk staging
    uint64_t total = 0;
    uint64_t flushed = 0;
    bool finished = false;
};

/**
 * Streams a trace log back, validating as it goes.
 *
 * Decodes one chunk at a time: the CRC of a chunk is checked before any
 * of its records are surfaced, and the trailer is checked when the last
 * chunk is consumed — next() never returns data from a corrupt or
 * truncated region. In the default Strict mode all corruption surfaces
 * as FatalError.
 *
 * Salvage mode recovers what a torn log still proves: the longest
 * prefix of complete, CRC-valid chunks. The first chunk that fails any
 * check (truncated header or payload, CRC mismatch, malformed record,
 * an elided chunk with no automaton to decode it, missing or
 * inconsistent trailer) ends the stream instead of throwing; next()
 * then returns false and torn() reports what happened. Records already
 * surfaced are exactly the strict-mode prefix — salvage never yields a
 * byte strict mode would reject. Because the tail beyond the tear is
 * unframed, the number of *lost* records is unknowable;
 * bytesDiscarded() reports the raw byte count instead. A file that is
 * damaged before any content — bad magic or version — still throws in
 * either mode: there is nothing to salvage.
 *
 * Elided chunks reconstruct through the `automaton` passed at
 * construction, which must be the automaton the writer was seeded
 * with; it is borrowed, so the caller keeps it alive (ReplayJob pins
 * its snapshot for exactly this reason). Logs without elided chunks
 * decode with no automaton at all.
 */
class TraceLogReader
{
  public:
    enum class Mode
    {
        Strict, ///< any defect throws FatalError
        Salvage ///< recover the valid chunk prefix of a torn log
    };

    /** Take ownership of an in-memory log. @throws FatalError. */
    explicit TraceLogReader(std::vector<uint8_t> bytes,
                            Mode mode = Mode::Strict,
                            const CompiledTea *automaton = nullptr);

    /**
     * Borrow an in-memory log (no copy). The buffer must outlive the
     * reader — the replay service streams a session's log this way.
     */
    TraceLogReader(const uint8_t *data, size_t len,
                   Mode mode = Mode::Strict,
                   const CompiledTea *automaton = nullptr);

    /** mmap a log file (no read-ahead copy) and open it. */
    static TraceLogReader openFile(const std::string &path,
                                   Mode mode = Mode::Strict,
                                   const CompiledTea *automaton = nullptr);

    /**
     * Fetch the next record.
     * @return false at the end of the log: validated end in Strict
     *         mode, validated end *or* the tear in Salvage mode
     * @throws FatalError on any corruption or truncation (Strict mode)
     */
    bool next(BlockTransition &out);

    /**
     * Batch access: decode and surface the next whole chunk. The
     * returned vector is owned by the reader and valid until the next
     * nextChunk()/next() call. Do not mix with next() mid-chunk (the
     * current chunk must be fully drained first).
     * @return nullptr at the end of the log (or the tear, in Salvage)
     */
    const std::vector<BlockTransition> *nextChunk();

    /** The container version of the open log (1 or 2). */
    uint32_t version() const { return version_; }

    /** Records surfaced so far. */
    uint64_t recordsRead() const { return surfaced; }

    /** Salvage mode only: did the stream end at a tear? */
    bool torn() const { return torn_; }

    /** Why the log tore (empty unless torn()). */
    const std::string &tornReason() const { return tornReason_; }

    /** Bytes after the last valid chunk, dropped by salvage. */
    uint64_t bytesDiscarded() const { return discarded; }

  private:
    void readHeader();
    void loadChunk();
    void loadChunkStrict();

    std::vector<uint8_t> owned; ///< backing store for the owning ctor
    std::shared_ptr<const MappedFile> map; ///< backing store, openFile
    const uint8_t *data = nullptr;
    size_t len = 0;
    const CompiledTea *automaton = nullptr;
    uint32_t version_ = 0;
    size_t cursor = 0;
    std::vector<BlockTransition> chunk; ///< decoded records of one chunk
    size_t chunkPos = 0;
    uint64_t surfaced = 0; ///< records returned by next()
    uint64_t decoded = 0;  ///< records decoded from chunks (trailer check)
    bool done = false;
    Mode mode = Mode::Strict;
    bool torn_ = false;
    std::string tornReason_;
    uint64_t discarded = 0;
};

/**
 * Convenience: decode an entire in-memory log. Pass the writer's
 * automaton for logs with elided chunks. @throws FatalError.
 */
std::vector<BlockTransition>
readTraceLog(std::vector<uint8_t> bytes,
             const CompiledTea *automaton = nullptr);

/** Per-chunk accounting from inspectTraceLog(). */
struct TraceLogChunkInfo
{
    ChunkEncoding encoding = ChunkEncoding::Raw;
    uint32_t records = 0;
    uint32_t payloadBytes = 0;
    uint32_t elidedRecords = 0; ///< bitset 1-bits (Elided chunks only)
};

/** Whole-log accounting from inspectTraceLog(). */
struct TraceLogInfo
{
    uint32_t version = 0;
    uint64_t fileBytes = 0;
    uint64_t records = 0;
    uint64_t payloadBytes = 0;   ///< sum of chunk payloads
    uint64_t elidedRecords = 0;  ///< records carried as bitset bits
    uint64_t rawChunks = 0;
    uint64_t deltaChunks = 0;
    uint64_t elidedChunks = 0;
    std::vector<TraceLogChunkInfo> chunks;
};

/**
 * Walk a log's framing — header, every chunk header and CRC, trailer —
 * without decoding records (so no automaton is needed, even for
 * elided chunks: their bitset is counted, not replayed). Strict:
 * @throws FatalError on any framing or CRC defect. `teadbt log-info`
 * is built on this.
 */
TraceLogInfo inspectTraceLog(const uint8_t *data, size_t len);

} // namespace tea

#endif // TEA_SVC_TRACELOG_HH
