/**
 * @file
 * The streaming trace-log format: a recorded BlockTransition stream.
 *
 * This is the "record in one system, replay in another" transport: the
 * recording side hooks a TraceLogWriter behind its BlockTracker and
 * ships the resulting file; the replay side streams it back through a
 * TraceLogReader into a TeaReplayer — no guest program, VM, or even ISA
 * required on the replay host.
 *
 * On-disk layout (little endian; varints are LEB128, see
 * docs/FORMATS.md for the normative description):
 *
 *   u32 magic 'TEAL'   u32 version
 *   chunk*:  u32 record count (> 0)
 *            u32 payload bytes
 *            payload        ; `record count` encoded transitions
 *            u32 CRC-32 of payload
 *   trailer: u32 0          ; chunk with record count 0 = end marker
 *            u64 total record count
 *
 * Each record encodes one BlockTransition:
 *   varint from.start, varint from.end - from.start, varint icount,
 *   u8 edge kind, varint toStart (kNoAddr for the final halt record).
 *
 * The explicit trailer makes truncation detectable: a reader that hits
 * EOF before the end marker (or whose summed chunk counts disagree with
 * the trailer) reports FatalError instead of silently replaying a
 * partial stream. Per-chunk CRCs catch payload bit-rot without forcing
 * the reader to buffer the whole file.
 */

#ifndef TEA_SVC_TRACELOG_HH
#define TEA_SVC_TRACELOG_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "vm/block.hh"

namespace tea {

/** Trace-log container constants (shared by writer, reader, tests). */
struct TraceLogFormat
{
    static constexpr uint32_t kMagic = 0x5445414c; // "TEAL"
    static constexpr uint32_t kVersion = 1;
    /** Writer flushes a chunk at this many records. */
    static constexpr uint32_t kChunkRecords = 4096;
};

/**
 * The one transition record encoding, shared by every transport that
 * carries BlockTransitions — `.tlog` chunk payloads here and the wire
 * protocol's RECORD_CHUNK payload (net/frame.hh):
 *
 *   varint from.start, varint from.end - from.start, varint icount,
 *   u8 edge kind, varint toStart (kNoAddr for the final halt record)
 *
 * encodeTransition() appends one record to `out`; @throws FatalError
 * when the block bounds are inverted (end < start) — the only state a
 * live BlockTracker can never produce.
 */
void encodeTransition(std::vector<uint8_t> &out,
                      const BlockTransition &tr);

/**
 * Decode one encodeTransition() record from `data[cursor..len)`,
 * advancing `cursor` past it. Truncation, overlong varints,
 * out-of-range addresses, and bad edge kinds all throw FatalError —
 * a malformed record is never partially surfaced.
 */
BlockTransition decodeTransition(const uint8_t *data, size_t len,
                                 size_t &cursor);

/**
 * Appends BlockTransitions to a chunked log.
 *
 * Hook it behind a BlockTracker callback; call finish() (or let the
 * destructor do it) to emit the trailer. A log without its trailer is
 * deliberately unreadable — crash-truncated recordings must not replay
 * as if complete.
 */
class TraceLogWriter
{
  public:
    /** Write to a file. @throws FatalError when the file can't open. */
    explicit TraceLogWriter(const std::string &path);

    /** Write into a caller-owned buffer (tests, benches). */
    explicit TraceLogWriter(std::vector<uint8_t> *sink);

    /** Calls finish() if the caller has not. */
    ~TraceLogWriter();

    TraceLogWriter(const TraceLogWriter &) = delete;
    TraceLogWriter &operator=(const TraceLogWriter &) = delete;

    /** Append one record. @throws PanicError after finish(). */
    void append(const BlockTransition &tr);

    /** Flush the open chunk and write the trailer; idempotent. */
    void finish();

    /** Records appended so far. */
    uint64_t records() const { return total; }

  private:
    void emit(const uint8_t *data, size_t len);
    void flushChunk();

    std::ofstream file;
    std::vector<uint8_t> *mem = nullptr;
    std::string path; ///< for error messages; empty for memory sinks
    std::vector<uint8_t> payload; ///< open chunk
    uint32_t chunkRecords = 0;
    uint64_t total = 0;
    bool finished = false;
};

/**
 * Streams a trace log back, validating as it goes.
 *
 * Decodes one chunk at a time: the CRC of a chunk is checked before any
 * of its records are surfaced, and the trailer is checked when the last
 * chunk is consumed — next() never returns data from a corrupt or
 * truncated region. In the default Strict mode all corruption surfaces
 * as FatalError.
 *
 * Salvage mode recovers what a torn log still proves: the longest
 * prefix of complete, CRC-valid chunks. The first chunk that fails any
 * check (truncated header or payload, CRC mismatch, malformed record,
 * missing or inconsistent trailer) ends the stream instead of
 * throwing; next() then returns false and torn() reports what
 * happened. Records already surfaced are exactly the strict-mode
 * prefix — salvage never yields a byte strict mode would reject.
 * Because the tail beyond the tear is unframed, the number of *lost*
 * records is unknowable; bytesDiscarded() reports the raw byte count
 * instead. A file that is damaged before any content — bad magic or
 * version — still throws in either mode: there is nothing to salvage.
 */
class TraceLogReader
{
  public:
    enum class Mode
    {
        Strict, ///< any defect throws FatalError
        Salvage ///< recover the valid chunk prefix of a torn log
    };

    /** Take ownership of an in-memory log. @throws FatalError. */
    explicit TraceLogReader(std::vector<uint8_t> bytes,
                            Mode mode = Mode::Strict);

    /** Read a log file fully into memory and open it. */
    static TraceLogReader openFile(const std::string &path,
                                   Mode mode = Mode::Strict);

    /**
     * Fetch the next record.
     * @return false at the end of the log: validated end in Strict
     *         mode, validated end *or* the tear in Salvage mode
     * @throws FatalError on any corruption or truncation (Strict mode)
     */
    bool next(BlockTransition &out);

    /** Records surfaced so far. */
    uint64_t recordsRead() const { return surfaced; }

    /** Salvage mode only: did the stream end at a tear? */
    bool torn() const { return torn_; }

    /** Why the log tore (empty unless torn()). */
    const std::string &tornReason() const { return tornReason_; }

    /** Bytes after the last valid chunk, dropped by salvage. */
    uint64_t bytesDiscarded() const { return discarded; }

  private:
    void loadChunk();
    void loadChunkStrict();

    std::vector<uint8_t> bytes;
    size_t cursor = 0;
    std::vector<BlockTransition> chunk; ///< decoded records of one chunk
    size_t chunkPos = 0;
    uint64_t surfaced = 0; ///< records returned by next()
    uint64_t decoded = 0;  ///< records decoded from chunks (trailer check)
    bool done = false;
    Mode mode = Mode::Strict;
    bool torn_ = false;
    std::string tornReason_;
    uint64_t discarded = 0;
};

/** Convenience: decode an entire in-memory log. @throws FatalError. */
std::vector<BlockTransition> readTraceLog(std::vector<uint8_t> bytes);

} // namespace tea

#endif // TEA_SVC_TRACELOG_HH
