#include "svc/registry.hh"

#include <algorithm>
#include <functional>

#include "tea/serialize.hh"
#include "util/logging.hh"

namespace tea {

AutomatonRegistry::AutomatonRegistry(size_t shard_count)
    : shards(shard_count == 0 ? 1 : shard_count)
{
}

AutomatonRegistry::Shard &
AutomatonRegistry::shardFor(const std::string &name) const
{
    return shards[std::hash<std::string>{}(name) % shards.size()];
}

std::shared_ptr<const Tea>
AutomatonRegistry::put(const std::string &name, Tea tea)
{
    auto snapshot = std::make_shared<const Tea>(std::move(tea));
    // Compile outside the shard lock: one flat image per put, shared
    // by every replay that later pins this name.
    auto compiled = CompiledTea::compile(snapshot);
    Shard &shard = shardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[name] = AutomatonSnapshot{snapshot, std::move(compiled)};
    return snapshot;
}

AutomatonSnapshot
AutomatonRegistry::putCompiled(const std::string &name,
                               std::shared_ptr<const CompiledTea> compiled)
{
    TEA_ASSERT(compiled != nullptr, "registering a null compiled image");
    AutomatonSnapshot snap{compiled->sourceTea(), std::move(compiled)};
    Shard &shard = shardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[name] = snap;
    return snap;
}

AutomatonSnapshot
AutomatonRegistry::replace(const std::string &name,
                           std::shared_ptr<const CompiledTea> compiled)
{
    TEA_ASSERT(compiled != nullptr, "swapping in a null compiled image");
    AutomatonSnapshot next{compiled->sourceTea(), std::move(compiled)};
    Shard &shard = shardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    AutomatonSnapshot &slot = shard.map[name];
    AutomatonSnapshot prev = slot;
    slot = std::move(next);
    return prev;
}

std::shared_ptr<const Tea>
AutomatonRegistry::loadFile(const std::string &name,
                            const std::string &path)
{
    return put(name, loadTeaFile(path));
}

std::shared_ptr<const Tea>
AutomatonRegistry::get(const std::string &name) const
{
    return snapshot(name).tea;
}

AutomatonSnapshot
AutomatonRegistry::snapshot(const std::string &name) const
{
    Shard &shard = shardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(name);
    return it == shard.map.end() ? AutomatonSnapshot{} : it->second;
}

bool
AutomatonRegistry::evict(const std::string &name)
{
    Shard &shard = shardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.erase(name) != 0;
}

std::vector<std::string>
AutomatonRegistry::list() const
{
    std::vector<std::string> names;
    for (Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[name, tea] : shard.map)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

size_t
AutomatonRegistry::size() const
{
    size_t n = 0;
    for (Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        n += shard.map.size();
    }
    return n;
}

size_t
AutomatonRegistry::footprintBytes() const
{
    size_t bytes = 0;
    for (Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[name, snap] : shard.map)
            if (snap.compiled)
                bytes += snap.compiled->footprintBytes();
    }
    return bytes;
}

} // namespace tea
