/**
 * @file
 * A bimodal branch predictor for the cycle model.
 */

#ifndef TEA_SIM_PREDICTOR_HH
#define TEA_SIM_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "isa/types.hh"

namespace tea {

/**
 * Classic 2-bit saturating-counter bimodal predictor, indexed by branch
 * address. Used by the CycleModel to charge misprediction penalties —
 * the dominant timing effect trace selection interacts with.
 */
class BranchPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BranchPredictor(size_t entries = 4096);

    /** Predicted direction for the branch at addr. */
    bool predict(Addr addr) const;

    /**
     * Train with the actual outcome.
     * @return true when the prediction was correct.
     */
    bool update(Addr addr, bool taken);

    /** Accuracy so far (1.0 when nothing was predicted yet). */
    double accuracy() const;

    uint64_t predictions() const { return total; }
    uint64_t mispredictions() const { return wrong; }

    /** Reset the tables and counters. */
    void reset();

  private:
    size_t index(Addr addr) const { return (addr >> 2) & mask; }

    std::vector<uint8_t> counters; ///< 0..3; >= 2 predicts taken
    size_t mask;
    uint64_t total = 0;
    uint64_t wrong = 0;
};

} // namespace tea

#endif // TEA_SIM_PREDICTOR_HH
