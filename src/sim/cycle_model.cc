#include "sim/cycle_model.hh"

#include "util/logging.hh"

namespace tea {

CycleModel::CycleModel(const Program &program, CycleConfig config)
    : prog(program), cfg(config), bp(config.predictorEntries)
{
}

uint32_t
CycleModel::insnCost(const Insn &insn) const
{
    uint32_t cost;
    switch (insn.op) {
      case Opcode::Mul:
        cost = cfg.mulOp;
        break;
      case Opcode::Div:
      case Opcode::Mod:
        cost = cfg.divOp;
        break;
      case Opcode::Push:
      case Opcode::Pop:
        cost = cfg.stackOp;
        break;
      case Opcode::Call:
      case Opcode::Ret:
        cost = cfg.callRet;
        break;
      case Opcode::Cpuid:
        cost = cfg.cpuidOp;
        break;
      case Opcode::RepMovs:
      case Opcode::RepStos:
      case Opcode::RepScas:
        cost = cfg.simpleOp; // per-iteration cost is added dynamically
        break;
      default:
        cost = isControlFlow(insn.op) ? cfg.branchBase : cfg.simpleOp;
        break;
    }
    if (insn.dst.kind == OperandKind::Mem)
        cost += cfg.memSurcharge;
    if (insn.src.kind == OperandKind::Mem)
        cost += cfg.memSurcharge;
    return cost;
}

uint64_t
CycleModel::blockCost(Addr start, Addr end)
{
    uint64_t key = (static_cast<uint64_t>(start) << 32) | end;
    auto it = blockCosts.find(key);
    if (it != blockCosts.end())
        return it->second;

    size_t first = prog.indexAt(start);
    size_t last = prog.indexAt(end);
    if (first == Program::npos || last == Program::npos || last < first)
        fatal("cycle model: bad block [%u, %u]", start, end);
    uint64_t cost = 0;
    for (size_t i = first; i <= last; ++i)
        cost += insnCost(prog.at(i));
    blockCosts.emplace(key, cost);
    return cost;
}

uint64_t
CycleModel::feed(const BlockTransition &tr)
{
    uint64_t charged = blockCost(tr.from.start, tr.from.end);

    // Dynamic REP iterations beyond the first.
    uint64_t static_count = 0;
    {
        size_t first = prog.indexAt(tr.from.start);
        size_t last = prog.indexAt(tr.from.end);
        static_count = last - first + 1;
    }
    if (tr.from.icount > static_count)
        charged += (tr.from.icount - static_count) * cfg.repPerIteration;

    // Branch modelling at the block's terminator.
    if (tr.kind == EdgeKind::BranchTaken ||
        tr.kind == EdgeKind::BranchNotTaken) {
        bool taken = tr.kind == EdgeKind::BranchTaken;
        if (!bp.update(tr.from.end, taken))
            charged += cfg.mispredictPenalty;
    } else if (tr.kind == EdgeKind::Ret) {
        // Return-address stack hit assumed; calls/rets cost their base.
    }

    total += charged;
    insns += tr.from.icount;
    return charged;
}

double
CycleModel::cpi() const
{
    if (insns == 0)
        return 0.0;
    return static_cast<double>(total) / static_cast<double>(insns);
}

void
CycleModel::reset()
{
    total = 0;
    insns = 0;
    bp.reset();
}

} // namespace tea
