#include "sim/predictor.hh"

#include "util/logging.hh"

namespace tea {

BranchPredictor::BranchPredictor(size_t entries)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal("predictor size %zu is not a power of two", entries);
    counters.assign(entries, 1); // weakly not-taken
    mask = entries - 1;
}

bool
BranchPredictor::predict(Addr addr) const
{
    return counters[index(addr)] >= 2;
}

bool
BranchPredictor::update(Addr addr, bool taken)
{
    uint8_t &ctr = counters[index(addr)];
    bool predicted = ctr >= 2;
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    ++total;
    if (predicted != taken)
        ++wrong;
    return predicted == taken;
}

double
BranchPredictor::accuracy() const
{
    if (total == 0)
        return 1.0;
    return 1.0 - static_cast<double>(wrong) / static_cast<double>(total);
}

void
BranchPredictor::reset()
{
    counters.assign(counters.size(), 1);
    total = 0;
    wrong = 0;
}

} // namespace tea
