/**
 * @file
 * A block-granular timing model — the "second system" of the paper's
 * first use case: *"building traces in one system, e.g. by using a DBT,
 * and collecting statistics and profiling information for them on a
 * second system, e.g. by replaying the traces on a cycle accurate
 * simulator."*
 *
 * The model consumes the same block-transition stream as the TEA
 * replayer and charges:
 *   - static per-instruction costs (latency class per opcode, memory
 *     operand surcharges), precomputed per program block;
 *   - dynamic REP iteration costs;
 *   - branch-misprediction penalties from a bimodal predictor.
 *
 * Combined with TEA's state it yields per-trace cycle and CPI numbers
 * for code that was never compiled into a code cache.
 */

#ifndef TEA_SIM_CYCLE_MODEL_HH
#define TEA_SIM_CYCLE_MODEL_HH

#include <unordered_map>

#include "isa/program.hh"
#include "sim/predictor.hh"
#include "vm/block.hh"

namespace tea {

/** Timing parameters; defaults sketch a 2010-era out-of-order core. */
struct CycleConfig
{
    uint32_t simpleOp = 1;       ///< mov/add/logic/lea/...
    uint32_t mulOp = 3;
    uint32_t divOp = 20;
    uint32_t memSurcharge = 2;   ///< per memory operand (L1 hit)
    uint32_t stackOp = 2;        ///< push/pop
    uint32_t callRet = 2;
    uint32_t cpuidOp = 60;       ///< serializing instruction
    uint32_t repPerIteration = 1;
    uint32_t branchBase = 1;
    uint32_t mispredictPenalty = 14;
    size_t predictorEntries = 4096;
};

/**
 * Accumulates cycles over a run; feed every BlockTransition.
 */
class CycleModel
{
  public:
    CycleModel(const Program &prog, CycleConfig config = {});

    /**
     * Charge one completed block plus its terminating control transfer.
     * @return the cycles charged for this block instance.
     */
    uint64_t feed(const BlockTransition &tr);

    /** Total cycles so far. */
    uint64_t cycles() const { return total; }

    /** Cycles per instruction over everything fed so far. */
    double cpi() const;

    /** The predictor (for accuracy statistics). */
    const BranchPredictor &predictor() const { return bp; }

    /** Static cycle cost of one instruction under this config. */
    uint32_t insnCost(const Insn &insn) const;

    /** Reset all accumulation (the predictor included). */
    void reset();

  private:
    uint64_t blockCost(Addr start, Addr end);

    const Program &prog;
    CycleConfig cfg;
    BranchPredictor bp;
    uint64_t total = 0;
    uint64_t insns = 0;
    /** Memoized static block costs keyed by packed (start, end). */
    std::unordered_map<uint64_t, uint64_t> blockCosts;
};

} // namespace tea

#endif // TEA_SIM_CYCLE_MODEL_HH
