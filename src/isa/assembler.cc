#include "isa/assembler.hh"

#include <optional>
#include <sstream>

#include "isa/encoding.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

namespace {

/** Minimum address a label may resolve to (keeps imm widths stable). */
constexpr Addr kMinLabelAddr = 0x1000;

/** An operand as parsed, possibly with unresolved label references. */
struct PendingOperand
{
    Operand operand;          ///< concrete parts
    std::string immLabel;     ///< label used as an immediate, if any
    std::string dispLabel;    ///< label used as a memory displacement
    int64_t dispOffset = 0;   ///< numeric offset added to dispLabel
};

/** A parsed instruction statement awaiting label resolution. */
struct PendingInsn
{
    Opcode op;
    PendingOperand dst;
    PendingOperand src;
    int line;
};

/** One initialized data word, possibly a label reference. */
struct PendingData
{
    Addr addr;
    uint32_t value;
    std::string label;
    int line;
};

class Assembler
{
  public:
    explicit Assembler(const std::string &source) : text(source) {}

    Program run();

  private:
    [[noreturn]] void
    error(int line, const std::string &msg) const
    {
        fatal("asm line %d: %s", line, msg.c_str());
    }

    void parseLine(const std::string &line, int line_no);
    void parseDirective(const std::string &line, int line_no);
    void parseInstruction(const std::string &line, int line_no);
    PendingOperand parseOperand(const std::string &text, int line_no);
    PendingOperand parseMemOperand(const std::string &inner, int line_no);

    /** Placeholder immediate used before labels resolve (forces width 4). */
    static constexpr int32_t kPlaceholder = 0x7fffffff;

    Addr resolveLabel(const std::string &name, int line_no) const;
    Operand resolveOperand(const PendingOperand &pending, int line_no) const;

    const std::string &text;

    Addr codeBase = 0x1000;
    bool sawCode = false;
    bool dataMode = false;
    Addr dataCursor = 0;
    std::string entryLabel;

    Addr codeCursor = 0x1000;
    std::vector<PendingInsn> pendingInsns;
    std::vector<Addr> insnAddrs;
    std::vector<PendingData> pendingData;
    std::map<std::string, Addr> labels;
};

void
Assembler::parseDirective(const std::string &line, int line_no)
{
    auto fields = splitWhitespace(line);
    const std::string &dir = fields[0];
    auto need = [&](size_t n) {
        if (fields.size() < n + 1)
            error(line_no, dir + " needs an argument");
    };
    if (dir == ".org") {
        need(1);
        int64_t v;
        if (!parseInt(fields[1], v) || v < kMinLabelAddr)
            error(line_no, ".org needs an address >= 0x1000");
        if (sawCode)
            error(line_no, ".org after code was emitted");
        codeBase = static_cast<Addr>(v);
        codeCursor = codeBase;
    } else if (dir == ".entry") {
        need(1);
        entryLabel = fields[1];
    } else if (dir == ".data") {
        need(1);
        int64_t v;
        if (!parseInt(fields[1], v) || v < kMinLabelAddr)
            error(line_no, ".data needs an address >= 0x1000");
        dataMode = true;
        dataCursor = static_cast<Addr>(v);
    } else if (dir == ".word") {
        if (!dataMode)
            error(line_no, ".word outside a .data section");
        need(1);
        for (size_t i = 1; i < fields.size(); ++i) {
            int64_t v;
            PendingData d{dataCursor, 0, "", line_no};
            if (parseInt(fields[i], v))
                d.value = static_cast<uint32_t>(v);
            else
                d.label = fields[i];
            pendingData.push_back(d);
            dataCursor += 4;
        }
    } else if (dir == ".space") {
        if (!dataMode)
            error(line_no, ".space outside a .data section");
        need(1);
        int64_t v;
        if (!parseInt(fields[1], v) || v < 0)
            error(line_no, ".space needs a nonnegative size");
        dataCursor += static_cast<Addr>(v);
    } else {
        error(line_no, "unknown directive '" + dir + "'");
    }
}

PendingOperand
Assembler::parseMemOperand(const std::string &inner, int line_no)
{
    PendingOperand out;
    MemRef mem;
    int64_t disp_acc = 0;
    // Tokenize on +/- keeping the sign with each term.
    std::vector<std::pair<int, std::string>> terms; // sign, text
    int sign = 1;
    std::string cur;
    auto flush = [&]() {
        std::string t = trim(cur);
        if (!t.empty())
            terms.emplace_back(sign, t);
        cur.clear();
    };
    for (char c : inner) {
        if (c == '+') {
            flush();
            sign = 1;
        } else if (c == '-') {
            flush();
            sign = -1;
        } else {
            cur.push_back(c);
        }
    }
    flush();
    if (terms.empty())
        error(line_no, "empty memory operand");

    for (auto &[term_sign, term] : terms) {
        // reg*scale ?
        size_t star = term.find('*');
        if (star != std::string::npos) {
            Reg reg;
            if (!parseReg(trim(term.substr(0, star)), reg))
                error(line_no, "bad index register in '" + term + "'");
            int64_t scale;
            if (!parseInt(trim(term.substr(star + 1)), scale) ||
                (scale != 1 && scale != 2 && scale != 4 && scale != 8))
                error(line_no, "bad scale in '" + term + "'");
            if (term_sign < 0 || mem.hasIndex)
                error(line_no, "invalid index term '" + term + "'");
            mem.hasIndex = true;
            mem.index = reg;
            mem.scale = static_cast<uint8_t>(scale);
            continue;
        }
        Reg reg;
        if (parseReg(term, reg)) {
            if (term_sign < 0)
                error(line_no, "cannot subtract a register");
            if (!mem.hasBase) {
                mem.hasBase = true;
                mem.base = reg;
            } else if (!mem.hasIndex) {
                mem.hasIndex = true;
                mem.index = reg;
                mem.scale = 1;
            } else {
                error(line_no, "too many registers in memory operand");
            }
            continue;
        }
        int64_t value;
        if (parseInt(term, value)) {
            disp_acc += term_sign * value;
            continue;
        }
        // a label displacement
        if (term_sign < 0)
            error(line_no, "cannot subtract a label");
        if (!out.dispLabel.empty())
            error(line_no, "multiple labels in memory operand");
        out.dispLabel = term;
    }
    if (disp_acc < INT32_MIN || disp_acc > INT32_MAX)
        error(line_no, "displacement out of range");
    if (out.dispLabel.empty()) {
        mem.disp = static_cast<int32_t>(disp_acc);
    } else {
        // Numeric offsets ride along with the label and are added after
        // resolution; the placeholder forces the 4-byte encoding that
        // any label-relative displacement will need.
        out.dispOffset = disp_acc;
        mem.disp = kPlaceholder;
    }
    out.operand = Operand::makeMem(mem);
    return out;
}

PendingOperand
Assembler::parseOperand(const std::string &operand_text, int line_no)
{
    std::string t = trim(operand_text);
    if (t.empty())
        error(line_no, "empty operand");

    PendingOperand out;
    if (t.front() == '[') {
        if (t.back() != ']')
            error(line_no, "unterminated memory operand '" + t + "'");
        return parseMemOperand(t.substr(1, t.size() - 2), line_no);
    }
    Reg reg;
    if (parseReg(t, reg)) {
        out.operand = Operand::makeReg(reg);
        return out;
    }
    int64_t value;
    if (parseInt(t, value)) {
        out.operand = Operand::makeImm(static_cast<int32_t>(value));
        return out;
    }
    // must be a label immediate
    out.operand = Operand::makeImm(kPlaceholder);
    out.immLabel = t;
    return out;
}

void
Assembler::parseInstruction(const std::string &line, int line_no)
{
    // mnemonic [op1 [, op2]]
    size_t space = line.find_first_of(" \t");
    std::string mnemonic =
        space == std::string::npos ? line : line.substr(0, space);
    Opcode op;
    if (!parseOpcode(mnemonic, op))
        error(line_no, "unknown mnemonic '" + mnemonic + "'");

    PendingInsn pending;
    pending.op = op;
    pending.line = line_no;

    std::string rest =
        space == std::string::npos ? "" : trim(line.substr(space));
    std::vector<std::string> ops;
    if (!rest.empty()) {
        for (auto &piece : split(rest, ','))
            ops.push_back(trim(piece));
    }
    int expected = operandCount(op);
    if (static_cast<int>(ops.size()) != expected)
        error(line_no, strprintf("'%s' expects %d operand(s), got %zu",
                                 mnemonic.c_str(), expected, ops.size()));
    if (expected >= 1)
        pending.dst = parseOperand(ops[0], line_no);
    if (expected >= 2)
        pending.src = parseOperand(ops[1], line_no);

    // Layout: compute the encoded length with placeholder immediates; all
    // label addresses are >= 0x1000 so widths cannot shrink in pass 2.
    Insn probe;
    probe.op = pending.op;
    probe.dst = pending.dst.operand;
    probe.src = pending.src.operand;
    size_t len = encodedLength(probe);

    insnAddrs.push_back(codeCursor);
    codeCursor += static_cast<Addr>(len);
    pendingInsns.push_back(std::move(pending));
    sawCode = true;
}

void
Assembler::parseLine(const std::string &raw, int line_no)
{
    // strip comments
    std::string line = raw;
    size_t comment = line.find_first_of(";#");
    if (comment != std::string::npos)
        line = line.substr(0, comment);
    line = trim(line);
    if (line.empty())
        return;

    // labels (possibly several on one line)
    for (;;) {
        size_t colon = line.find(':');
        if (colon == std::string::npos)
            break;
        std::string name = trim(line.substr(0, colon));
        if (name.empty() || name.find_first_of(" \t[],") != std::string::npos)
            break; // ':' inside an operand, not a label
        Addr addr = dataMode ? dataCursor : codeCursor;
        if (labels.count(name))
            error(line_no, "label '" + name + "' redefined");
        labels[name] = addr;
        line = trim(line.substr(colon + 1));
        if (line.empty())
            return;
    }

    if (line[0] == '.') {
        parseDirective(line, line_no);
        return;
    }
    if (dataMode)
        error(line_no, "instruction inside a .data section "
                       "(missing .org to switch back?)");
    parseInstruction(line, line_no);
}

Addr
Assembler::resolveLabel(const std::string &name, int line_no) const
{
    auto it = labels.find(name);
    if (it == labels.end())
        error(line_no, "undefined label '" + name + "'");
    if (it->second < kMinLabelAddr)
        error(line_no, "label '" + name + "' below 0x1000");
    return it->second;
}

Operand
Assembler::resolveOperand(const PendingOperand &pending, int line_no) const
{
    Operand op = pending.operand;
    if (!pending.immLabel.empty())
        op.imm = static_cast<int32_t>(resolveLabel(pending.immLabel,
                                                   line_no));
    if (!pending.dispLabel.empty()) {
        int64_t disp = static_cast<int64_t>(
                           resolveLabel(pending.dispLabel, line_no)) +
                       pending.dispOffset;
        if (disp < INT32_MIN || disp > INT32_MAX)
            error(line_no, "label displacement out of range");
        op.mem.disp = static_cast<int32_t>(disp);
    }
    return op;
}

Program
Assembler::run()
{
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    while (std::getline(stream, line))
        parseLine(line, ++line_no);
    if (dataMode && pendingInsns.empty())
        fatal("program has no instructions");

    Program prog;
    prog.setBase(codeBase);
    for (const auto &[name, addr] : labels)
        prog.addLabel(name, addr);

    for (size_t i = 0; i < pendingInsns.size(); ++i) {
        const PendingInsn &pending = pendingInsns[i];
        Insn insn;
        insn.op = pending.op;
        insn.dst = resolveOperand(pending.dst, pending.line);
        insn.src = resolveOperand(pending.src, pending.line);
        prog.append(insn);
        if (prog.at(i).addr != insnAddrs[i])
            panic("assembler layout drift at line %d", pending.line);
    }
    if (prog.size() == 0)
        fatal("program has no instructions");

    for (const PendingData &d : pendingData) {
        uint32_t value = d.value;
        if (!d.label.empty())
            value = resolveLabel(d.label, d.line);
        prog.addData(d.addr, value);
    }

    if (!entryLabel.empty())
        prog.setEntry(resolveLabel(entryLabel, 0));
    return prog;
}

} // namespace

Program
assemble(const std::string &source)
{
    Assembler assembler(source);
    return assembler.run();
}

} // namespace tea
