#include "isa/program.hh"

#include "isa/encoding.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

void
Program::setBase(Addr new_base)
{
    if (!insns.empty())
        fatal("setBase after instructions were appended");
    base = new_base;
    cursor = new_base;
}

void
Program::append(Insn insn)
{
    insn.addr = cursor;
    insn.length = static_cast<uint8_t>(encodedLength(insn));
    byAddr[insn.addr] = insns.size();
    cursor += insn.length;
    insns.push_back(insn);
}

void
Program::addLabel(const std::string &name, Addr addr)
{
    auto [it, inserted] = labelMap.emplace(name, addr);
    if (!inserted && it->second != addr)
        fatal("label '%s' redefined (0x%x vs 0x%x)", name.c_str(),
              it->second, addr);
}

Addr
Program::label(const std::string &name) const
{
    auto it = labelMap.find(name);
    if (it == labelMap.end())
        fatal("unknown label '%s'", name.c_str());
    return it->second;
}

bool
Program::hasLabel(const std::string &name) const
{
    return labelMap.count(name) != 0;
}

std::string
Program::labelAt(Addr addr) const
{
    for (const auto &[name, label_addr] : labelMap)
        if (label_addr == addr)
            return name;
    return "";
}

void
Program::addData(Addr addr, uint32_t value)
{
    dataWords.push_back({addr, value});
}

size_t
Program::indexAt(Addr addr) const
{
    auto it = byAddr.find(addr);
    return it == byAddr.end() ? npos : it->second;
}

const Insn &
Program::insnAt(Addr addr) const
{
    size_t idx = indexAt(addr);
    if (idx == npos)
        fatal("no instruction at address %s", hex32(addr).c_str());
    return insns[idx];
}

void
Program::patch(size_t index, Insn insn)
{
    if (index >= insns.size())
        fatal("patch: index %zu out of range", index);
    Insn &old = insns[index];
    insn.addr = old.addr;
    insn.length = static_cast<uint8_t>(encodedLength(insn));
    if (insn.length != old.length)
        fatal("patch at %s changes length (%u -> %u)",
              hex32(old.addr).c_str(), old.length, insn.length);
    old = insn;
}

std::vector<uint8_t>
Program::encodeImage() const
{
    std::vector<uint8_t> bytes;
    bytes.reserve(codeBytes());
    for (const Insn &insn : insns) {
        size_t len = encode(insn, bytes);
        TEA_ASSERT(len == insn.length, "length drift at %s",
                   hex32(insn.addr).c_str());
    }
    return bytes;
}

Program
Program::decodeImage(const std::vector<uint8_t> &bytes, Addr image_base)
{
    Program prog;
    prog.setBase(image_base);
    size_t offset = 0;
    while (offset < bytes.size()) {
        Insn insn = decode(bytes, offset, image_base + offset);
        offset += insn.length;
        prog.append(insn);
    }
    return prog;
}

} // namespace tea
