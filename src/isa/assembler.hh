/**
 * @file
 * Two-pass textual assembler for TinyX86.
 *
 * Syntax (Intel-flavoured):
 * @code
 *   ; comment
 *   .org 0x1000          ; code base address (>= 0x1000)
 *   .entry main          ; entry label (default: first instruction)
 *   .data 0x100000       ; switch to data mode at the given address
 *   .word 1 2 head       ; emit 32-bit words (labels allowed)
 *   .space 64            ; reserve bytes without initializing them
 *   main:
 *       mov eax, 100
 *       mov ebx, [esi + ecx*4 + 8]
 *       cmp eax, ebx
 *       jne main
 *       out eax
 *       halt
 * @endcode
 *
 * Labels referenced as immediates or displacements must resolve to
 * addresses >= 0x1000 so that the encoder's immediate-width selection is
 * stable across the two passes.
 */

#ifndef TEA_ISA_ASSEMBLER_HH
#define TEA_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace tea {

/**
 * Assemble a program from source text.
 * @throws FatalError with a line-numbered message on any syntax error.
 */
Program assemble(const std::string &source);

} // namespace tea

#endif // TEA_ISA_ASSEMBLER_HH
