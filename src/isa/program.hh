/**
 * @file
 * A loaded TinyX86 program image: code, symbols, and initial data.
 */

#ifndef TEA_ISA_PROGRAM_HH
#define TEA_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/insn.hh"

namespace tea {

/** One word of initialized data at a guest address. */
struct DataWord
{
    Addr addr;
    uint32_t value;
};

/**
 * A program image ready for execution or translation.
 *
 * Instructions are stored decoded, each stamped with its guest address and
 * encoded length, so lookups by address are O(1). The image also carries
 * the label table (for diagnostics and the paper-figure examples) and the
 * initial data section contents.
 */
class Program
{
  public:
    Program() = default;

    /** Append an instruction laid out at the current code cursor. */
    void append(Insn insn);

    /** Set the code base address; only valid before any append. */
    void setBase(Addr base);

    /** Code base address (default 0x1000). */
    Addr baseAddr() const { return base; }

    /** Address one past the last code byte. */
    Addr endAddr() const { return cursor; }

    /** Entry point (defaults to the base address). */
    Addr entry() const { return entryAddr == kNoAddr ? base : entryAddr; }

    /** Set the entry point. */
    void setEntry(Addr addr) { entryAddr = addr; }

    /** Bind a label name to an address. */
    void addLabel(const std::string &name, Addr addr);

    /** Address of a label; throws FatalError when missing. */
    Addr label(const std::string &name) const;

    /** True when the label exists. */
    bool hasLabel(const std::string &name) const;

    /** Name of the label bound at addr, or "" when none. */
    std::string labelAt(Addr addr) const;

    /** All labels, name -> address. */
    const std::map<std::string, Addr> &labels() const { return labelMap; }

    /** Add one word of initialized data. */
    void addData(Addr addr, uint32_t value);

    /** All initialized data words. */
    const std::vector<DataWord> &data() const { return dataWords; }

    /** Number of instructions. */
    size_t size() const { return insns.size(); }

    /** Instruction by index. */
    const Insn &at(size_t index) const { return insns[index]; }

    /** All instructions in layout order. */
    const std::vector<Insn> &instructions() const { return insns; }

    /**
     * Index of the instruction whose first byte is at addr.
     * @return the index, or npos when addr is not an instruction start.
     */
    size_t indexAt(Addr addr) const;

    /** Sentinel returned by indexAt for misses. */
    static constexpr size_t npos = static_cast<size_t>(-1);

    /** True when addr is the first byte of some instruction. */
    bool isInsnStart(Addr addr) const { return indexAt(addr) != npos; }

    /** Instruction at a guest address; throws FatalError on a miss. */
    const Insn &insnAt(Addr addr) const;

    /**
     * Replace the instruction at an index in place (code patching, as a
     * DBT does when linking traces). The replacement must have the same
     * encoded length; throws FatalError otherwise.
     */
    void patch(size_t index, Insn insn);

    /** Total encoded code bytes. */
    size_t codeBytes() const { return cursor - base; }

    /**
     * Serialize the code section to raw bytes (the "binary" a DBT would
     * consume). Round-trips through decodeImage().
     */
    std::vector<uint8_t> encodeImage() const;

    /**
     * Rebuild a program from raw code bytes at the given base address.
     * Labels and data are not part of the raw image.
     */
    static Program decodeImage(const std::vector<uint8_t> &bytes, Addr base);

  private:
    Addr base = 0x1000;
    Addr cursor = 0x1000;
    Addr entryAddr = kNoAddr;
    std::vector<Insn> insns;
    std::unordered_map<Addr, size_t> byAddr;
    std::map<std::string, Addr> labelMap;
    std::vector<DataWord> dataWords;
};

} // namespace tea

#endif // TEA_ISA_PROGRAM_HH
