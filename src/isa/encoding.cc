#include "isa/encoding.hh"

#include "util/logging.hh"

namespace tea {

namespace {

bool
immFitsByte(int32_t v)
{
    return v >= -128 && v <= 127;
}

uint8_t
scaleCode(uint8_t scale)
{
    switch (scale) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      case 8: return 3;
      default:
        fatal("invalid memory operand scale %u", scale);
    }
}

uint8_t
scaleFromCode(uint8_t code)
{
    static const uint8_t scales[4] = {1, 2, 4, 8};
    return scales[code & 3];
}

/** Disp size code: 0 = none, 1 = byte, 2 = dword. */
uint8_t
dispSizeCode(int32_t disp)
{
    if (disp == 0)
        return 0;
    if (immFitsByte(disp))
        return 1;
    return 2;
}

size_t
memEncodedLength(const MemRef &mem)
{
    size_t disp_bytes[3] = {0, 1, 4};
    return 2 + disp_bytes[dispSizeCode(mem.disp)];
}

size_t
operandEncodedLength(const Operand &op, bool imm_long)
{
    switch (op.kind) {
      case OperandKind::None: return 0;
      case OperandKind::Reg: return 1;
      case OperandKind::Imm: return imm_long ? 4 : 1;
      case OperandKind::Mem: return memEncodedLength(op.mem);
    }
    panic("unreachable operand kind");
}

void
appendLe32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

void
encodeOperand(const Operand &op, bool imm_long, std::vector<uint8_t> &out)
{
    switch (op.kind) {
      case OperandKind::None:
        return;
      case OperandKind::Reg:
        out.push_back(static_cast<uint8_t>(op.reg));
        return;
      case OperandKind::Imm:
        if (imm_long)
            appendLe32(out, static_cast<uint32_t>(op.imm));
        else
            out.push_back(static_cast<uint8_t>(op.imm));
        return;
      case OperandKind::Mem: {
        const MemRef &m = op.mem;
        uint8_t mode = 0;
        if (m.hasBase)
            mode |= 0x01 | (static_cast<uint8_t>(m.base) << 1);
        if (m.hasIndex)
            mode |= 0x10 | (static_cast<uint8_t>(m.index) << 5);
        out.push_back(mode);
        uint8_t dcode = dispSizeCode(m.disp);
        out.push_back(static_cast<uint8_t>(scaleCode(m.scale) | (dcode << 2)));
        if (dcode == 1)
            out.push_back(static_cast<uint8_t>(m.disp));
        else if (dcode == 2)
            appendLe32(out, static_cast<uint32_t>(m.disp));
        return;
      }
    }
}

} // namespace

size_t
encodedLength(const Insn &insn)
{
    size_t len = 1; // opcode byte
    if (operandCount(insn.op) == 0)
        return len;
    len += 1; // descriptor
    bool dst_long = insn.dst.kind == OperandKind::Imm &&
                    !immFitsByte(insn.dst.imm);
    bool src_long = insn.src.kind == OperandKind::Imm &&
                    !immFitsByte(insn.src.imm);
    len += operandEncodedLength(insn.dst, dst_long);
    len += operandEncodedLength(insn.src, src_long);
    return len;
}

size_t
encode(const Insn &insn, std::vector<uint8_t> &out)
{
    size_t begin = out.size();
    out.push_back(static_cast<uint8_t>(insn.op));
    if (operandCount(insn.op) > 0) {
        bool dst_long = insn.dst.kind == OperandKind::Imm &&
                        !immFitsByte(insn.dst.imm);
        bool src_long = insn.src.kind == OperandKind::Imm &&
                        !immFitsByte(insn.src.imm);
        uint8_t desc = static_cast<uint8_t>(insn.dst.kind) |
                       (static_cast<uint8_t>(insn.src.kind) << 2);
        if (dst_long)
            desc |= 0x10;
        if (src_long)
            desc |= 0x20;
        out.push_back(desc);
        encodeOperand(insn.dst, dst_long, out);
        encodeOperand(insn.src, src_long, out);
    }
    size_t len = out.size() - begin;
    TEA_ASSERT(len <= kMaxInsnLength, "encoding overflow");
    return len;
}

namespace {

uint8_t
fetchByte(const std::vector<uint8_t> &bytes, size_t &offset)
{
    if (offset >= bytes.size())
        fatal("decode: truncated instruction at offset %zu", offset);
    return bytes[offset++];
}

uint32_t
fetchLe32(const std::vector<uint8_t> &bytes, size_t &offset)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(fetchByte(bytes, offset)) << (8 * i);
    return v;
}

Operand
decodeOperand(OperandKind kind, bool imm_long,
              const std::vector<uint8_t> &bytes, size_t &offset)
{
    switch (kind) {
      case OperandKind::None:
        return Operand::none();
      case OperandKind::Reg: {
        uint8_t r = fetchByte(bytes, offset);
        if (r >= kNumRegs)
            fatal("decode: bad register id %u", r);
        return Operand::makeReg(static_cast<Reg>(r));
      }
      case OperandKind::Imm: {
        int32_t v;
        if (imm_long)
            v = static_cast<int32_t>(fetchLe32(bytes, offset));
        else
            v = static_cast<int8_t>(fetchByte(bytes, offset));
        return Operand::makeImm(v);
      }
      case OperandKind::Mem: {
        uint8_t mode = fetchByte(bytes, offset);
        uint8_t sib = fetchByte(bytes, offset);
        MemRef m;
        m.hasBase = mode & 0x01;
        m.base = static_cast<Reg>((mode >> 1) & 0x07);
        m.hasIndex = mode & 0x10;
        m.index = static_cast<Reg>((mode >> 5) & 0x07);
        m.scale = scaleFromCode(sib & 3);
        uint8_t dcode = (sib >> 2) & 3;
        if (dcode == 1)
            m.disp = static_cast<int8_t>(fetchByte(bytes, offset));
        else if (dcode == 2)
            m.disp = static_cast<int32_t>(fetchLe32(bytes, offset));
        else if (dcode == 3)
            fatal("decode: bad displacement size code");
        return Operand::makeMem(m);
      }
    }
    panic("unreachable operand kind");
}

} // namespace

Insn
decode(const std::vector<uint8_t> &bytes, size_t offset, Addr addr)
{
    size_t cursor = offset;
    uint8_t opbyte = fetchByte(bytes, cursor);
    if (opbyte >= static_cast<uint8_t>(Opcode::NumOpcodes))
        fatal("decode: bad opcode byte 0x%02x at offset %zu", opbyte, offset);

    Insn insn;
    insn.op = static_cast<Opcode>(opbyte);
    insn.addr = addr;
    if (operandCount(insn.op) > 0) {
        uint8_t desc = fetchByte(bytes, cursor);
        auto dst_kind = static_cast<OperandKind>(desc & 3);
        auto src_kind = static_cast<OperandKind>((desc >> 2) & 3);
        insn.dst = decodeOperand(dst_kind, desc & 0x10, bytes, cursor);
        insn.src = decodeOperand(src_kind, desc & 0x20, bytes, cursor);
    }
    insn.length = static_cast<uint8_t>(cursor - offset);
    return insn;
}

} // namespace tea
