/**
 * @file
 * Byte-accurate binary encoding of TinyX86 instructions.
 *
 * The encoding is variable length (1 to 14 bytes) like IA-32, which is what
 * makes the DBT code-replication baseline's memory accounting (paper
 * Table 1) meaningful: replicating a trace costs the sum of its
 * instructions' encoded lengths plus stub overhead, while TEA only stores
 * automaton state.
 *
 * Layout:
 *   byte 0          opcode
 *   byte 1          operand descriptor (only when the opcode has operands):
 *                     bits 0-1  dst kind, bits 2-3  src kind,
 *                     bit 4     dst imm is 4 bytes (else 1),
 *                     bit 5     src imm is 4 bytes (else 1)
 *   per operand     Reg: 1 byte
 *                   Imm: 1 or 4 bytes, little endian, sign-extended
 *                   Mem: mode byte {hasBase, base[3], hasIndex, index[3]},
 *                        sib byte  {scale code[2], disp size code[2]},
 *                        then 0/1/4 disp bytes
 */

#ifndef TEA_ISA_ENCODING_HH
#define TEA_ISA_ENCODING_HH

#include <cstdint>
#include <vector>

#include "isa/insn.hh"

namespace tea {

/** Maximum encoded instruction length in bytes. */
constexpr size_t kMaxInsnLength = 14;

/**
 * Append the encoding of insn to out.
 * @return the number of bytes appended.
 */
size_t encode(const Insn &insn, std::vector<uint8_t> &out);

/** Encoded length of insn in bytes without materializing the bytes. */
size_t encodedLength(const Insn &insn);

/**
 * Decode one instruction from bytes at offset.
 *
 * @param bytes  the code image
 * @param offset position of the instruction's first byte
 * @param addr   guest address to stamp into the decoded instruction
 * @return the decoded instruction with addr/length filled in.
 * @throws FatalError on a malformed encoding.
 */
Insn decode(const std::vector<uint8_t> &bytes, size_t offset, Addr addr);

} // namespace tea

#endif // TEA_ISA_ENCODING_HH
