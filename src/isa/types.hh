/**
 * @file
 * Basic guest-architecture types for the TinyX86 ISA.
 *
 * TinyX86 is the synthetic 32-bit x86-like guest ISA this repository uses
 * in place of IA-32 (see DESIGN.md, "Substitutions"). It keeps the
 * properties TEA depends on: variable-length encodings, conditional and
 * indirect control flow, CPUID-style "unexpected" instructions and
 * REP-prefixed string operations.
 */

#ifndef TEA_ISA_TYPES_HH
#define TEA_ISA_TYPES_HH

#include <cstdint>
#include <string>

namespace tea {

/** A guest virtual address. TinyX86 is a 32-bit architecture. */
using Addr = uint32_t;

/** An invalid / "no address" marker. */
constexpr Addr kNoAddr = 0xffffffffu;

/** General-purpose registers, numbered as IA-32 does. */
enum class Reg : uint8_t
{
    Eax = 0,
    Ecx = 1,
    Edx = 2,
    Ebx = 3,
    Esp = 4,
    Ebp = 5,
    Esi = 6,
    Edi = 7,
};

/** Number of general purpose registers. */
constexpr size_t kNumRegs = 8;

/** Register name ("eax", ...). */
const char *regName(Reg reg);

/** Parse a register name; returns false when the name is unknown. */
bool parseReg(const std::string &name, Reg &out);

/** Condition flags (subset of EFLAGS). */
struct Flags
{
    bool zf = false; ///< zero
    bool sf = false; ///< sign
    bool cf = false; ///< carry (unsigned overflow)
    bool of = false; ///< signed overflow

    bool operator==(const Flags &) const = default;
};

} // namespace tea

#endif // TEA_ISA_TYPES_HH
