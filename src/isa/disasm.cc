#include "isa/disasm.hh"

#include <sstream>

#include "util/strutil.hh"

namespace tea {

std::string
formatOperand(const Operand &op)
{
    switch (op.kind) {
      case OperandKind::None:
        return "";
      case OperandKind::Reg:
        return regName(op.reg);
      case OperandKind::Imm:
        return std::to_string(op.imm);
      case OperandKind::Mem: {
        std::ostringstream os;
        os << "[";
        bool first = true;
        if (op.mem.hasBase) {
            os << regName(op.mem.base);
            first = false;
        }
        if (op.mem.hasIndex) {
            if (!first)
                os << " + ";
            os << regName(op.mem.index);
            if (op.mem.scale != 1)
                os << "*" << static_cast<int>(op.mem.scale);
            first = false;
        }
        if (op.mem.disp != 0 || first) {
            if (!first)
                os << (op.mem.disp < 0 ? " - " : " + ");
            int64_t d = op.mem.disp;
            if (!first && d < 0)
                d = -d;
            os << d;
        }
        os << "]";
        return os.str();
      }
    }
    return "?";
}

std::string
formatInsn(const Insn &insn)
{
    std::string out = opcodeName(insn.op);
    int count = operandCount(insn.op);
    if (count >= 1) {
        out += " ";
        // Direct branch targets read better in hex.
        if (isControlFlow(insn.op) && insn.dst.kind == OperandKind::Imm)
            out += hex32(static_cast<Addr>(insn.dst.imm));
        else
            out += formatOperand(insn.dst);
    }
    if (count >= 2) {
        out += ", ";
        out += formatOperand(insn.src);
    }
    return out;
}

std::string
formatInsnWithAddr(const Insn &insn)
{
    return hex32(insn.addr) + ": " + formatInsn(insn);
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    for (const Insn &insn : prog.instructions()) {
        std::string label = prog.labelAt(insn.addr);
        if (!label.empty())
            os << label << ":\n";
        os << "    " << formatInsnWithAddr(insn) << "\n";
    }
    return os.str();
}

} // namespace tea
