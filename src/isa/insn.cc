#include "isa/insn.hh"

#include <unordered_map>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

namespace {

struct OpcodeInfo
{
    const char *name;
    int operands;
};

// Indexed by Opcode value; keep in sync with the enum.
const OpcodeInfo kOpcodeInfo[] = {
    {"mov", 2},   {"lea", 2},   {"push", 1},  {"pop", 1},   {"xchg", 2},
    {"add", 2},   {"sub", 2},   {"adc", 2},   {"mul", 2},   {"div", 2},
    {"mod", 2},   {"and", 2},   {"or", 2},    {"xor", 2},   {"shl", 2},
    {"shr", 2},   {"sar", 2},   {"not", 1},   {"neg", 1},   {"inc", 1},
    {"dec", 1},   {"cmp", 2},   {"test", 2},  {"jmp", 1},   {"je", 1},
    {"jne", 1},   {"jl", 1},    {"jle", 1},   {"jg", 1},    {"jge", 1},
    {"jb", 1},    {"jbe", 1},   {"ja", 1},    {"jae", 1},   {"js", 1},
    {"jns", 1},   {"call", 1},  {"ret", 0},   {"repmovs", 0},
    {"repstos", 0}, {"repscas", 0}, {"cpuid", 0}, {"out", 1}, {"nop", 0},
    {"halt", 0},
};

static_assert(sizeof(kOpcodeInfo) / sizeof(kOpcodeInfo[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "kOpcodeInfo out of sync with Opcode enum");

const char *kRegNames[kNumRegs] = {"eax", "ecx", "edx", "ebx",
                                   "esp", "ebp", "esi", "edi"};

} // namespace

const char *
regName(Reg reg)
{
    auto idx = static_cast<size_t>(reg);
    TEA_ASSERT(idx < kNumRegs, "bad register id %zu", idx);
    return kRegNames[idx];
}

bool
parseReg(const std::string &name, Reg &out)
{
    std::string lower = toLower(name);
    for (size_t i = 0; i < kNumRegs; ++i) {
        if (lower == kRegNames[i]) {
            out = static_cast<Reg>(i);
            return true;
        }
    }
    return false;
}

const char *
opcodeName(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    TEA_ASSERT(idx < static_cast<size_t>(Opcode::NumOpcodes),
               "bad opcode %zu", idx);
    return kOpcodeInfo[idx].name;
}

bool
parseOpcode(const std::string &name, Opcode &out)
{
    static const std::unordered_map<std::string, Opcode> table = [] {
        std::unordered_map<std::string, Opcode> t;
        for (size_t i = 0; i < static_cast<size_t>(Opcode::NumOpcodes); ++i)
            t[kOpcodeInfo[i].name] = static_cast<Opcode>(i);
        return t;
    }();
    auto it = table.find(toLower(name));
    if (it == table.end())
        return false;
    out = it->second;
    return true;
}

bool
isControlFlow(Opcode op)
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
        return true;
      default:
        return isConditionalJump(op);
    }
}

bool
isConditionalJump(Opcode op)
{
    auto v = static_cast<uint8_t>(op);
    return v >= static_cast<uint8_t>(Opcode::Je) &&
           v <= static_cast<uint8_t>(Opcode::Jns);
}

bool
isBlockTerminator(Opcode op)
{
    return isControlFlow(op) || op == Opcode::Halt;
}

bool
isRepString(Opcode op)
{
    return op == Opcode::RepMovs || op == Opcode::RepStos ||
           op == Opcode::RepScas;
}

bool
isPinBlockSplitter(Opcode op)
{
    return op == Opcode::Cpuid || isRepString(op);
}

int
operandCount(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    TEA_ASSERT(idx < static_cast<size_t>(Opcode::NumOpcodes),
               "bad opcode %zu", idx);
    return kOpcodeInfo[idx].operands;
}

Addr
Insn::directTarget() const
{
    if (!isControlFlow(op) || op == Opcode::Ret)
        return kNoAddr;
    if (dst.kind == OperandKind::Imm)
        return static_cast<Addr>(dst.imm);
    return kNoAddr;
}

} // namespace tea
