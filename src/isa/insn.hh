/**
 * @file
 * TinyX86 instruction and operand model.
 */

#ifndef TEA_ISA_INSN_HH
#define TEA_ISA_INSN_HH

#include <cstdint>
#include <string>

#include "isa/types.hh"

namespace tea {

/** Every TinyX86 opcode. */
enum class Opcode : uint8_t
{
    // data movement
    Mov,     ///< mov dst, src
    Lea,     ///< lea reg, mem — compute effective address
    Push,    ///< push src
    Pop,     ///< pop reg
    Xchg,    ///< xchg reg, reg

    // integer arithmetic / logic (dst op= src; sets flags)
    Add,
    Sub,
    Adc,     ///< add with carry
    Mul,     ///< two-operand signed multiply (imul)
    Div,     ///< signed divide dst /= src; traps on 0 and INT_MIN/-1
    Mod,     ///< signed remainder dst %= src (traps like Div)
    And,
    Or,
    Xor,
    Shl,
    Shr,     ///< logical shift right
    Sar,     ///< arithmetic shift right
    Not,     ///< one-operand bitwise not (flags unchanged)
    Neg,     ///< one-operand negate (sets flags)
    Inc,     ///< one-operand increment (sets ZF/SF/OF, preserves CF)
    Dec,     ///< one-operand decrement (sets ZF/SF/OF, preserves CF)

    // comparison (flags only)
    Cmp,     ///< flags of dst - src
    Test,    ///< flags of dst & src

    // control flow
    Jmp,     ///< unconditional; direct (imm target) or indirect (reg/mem)
    Je,
    Jne,
    Jl,      ///< signed less
    Jle,
    Jg,
    Jge,
    Jb,      ///< unsigned below
    Jbe,
    Ja,
    Jae,
    Js,      ///< sign set
    Jns,
    Call,    ///< direct or indirect call; pushes return address
    Ret,     ///< pops return address

    // string operations with an implicit REP prefix (word granularity)
    RepMovs, ///< copy ecx words from [esi] to [edi]
    RepStos, ///< store eax into ecx words at [edi]
    RepScas, ///< scan words at [edi] for eax while ecx != 0; sets ZF

    // misc
    Cpuid,   ///< writes model constants to eax..edx; Pin-like block splitter
    Out,     ///< append src to the machine's output port (observable state)
    Nop,
    Halt,    ///< stop the machine

    NumOpcodes
};

/** Kinds of instruction operands. */
enum class OperandKind : uint8_t
{
    None = 0,
    Reg = 1,
    Imm = 2,
    Mem = 3,
};

/** A memory reference: [base + index*scale + disp]. */
struct MemRef
{
    bool hasBase = false;
    Reg base = Reg::Eax;
    bool hasIndex = false;
    Reg index = Reg::Eax;
    uint8_t scale = 1; ///< 1, 2, 4 or 8
    int32_t disp = 0;

    bool operator==(const MemRef &) const = default;
};

/** A single instruction operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    Reg reg = Reg::Eax; ///< valid when kind == Reg
    int32_t imm = 0;    ///< valid when kind == Imm
    MemRef mem;         ///< valid when kind == Mem

    static Operand none() { return {}; }
    static Operand
    makeReg(Reg r)
    {
        Operand o;
        o.kind = OperandKind::Reg;
        o.reg = r;
        return o;
    }
    static Operand
    makeImm(int32_t v)
    {
        Operand o;
        o.kind = OperandKind::Imm;
        o.imm = v;
        return o;
    }
    static Operand
    makeMem(MemRef m)
    {
        Operand o;
        o.kind = OperandKind::Mem;
        o.mem = m;
        return o;
    }

    bool operator==(const Operand &) const = default;
};

/**
 * A decoded TinyX86 instruction.
 *
 * The instruction knows its own guest address and encoded length so that
 * higher layers (dynamic block discovery, trace recording, DBT code
 * replication) can reason about the address space without re-encoding.
 */
struct Insn
{
    Opcode op = Opcode::Nop;
    Operand dst;
    Operand src;
    Addr addr = 0;     ///< guest address of the first byte
    uint8_t length = 1; ///< encoded length in bytes

    /** Guest address of the next sequential instruction. */
    Addr nextAddr() const { return addr + length; }

    /**
     * Direct control-transfer target, when the instruction is a direct
     * branch/call (dst is an immediate); kNoAddr otherwise.
     */
    Addr directTarget() const;

    bool operator==(const Insn &) const = default;
};

/** Mnemonic string for an opcode ("mov", "jne", ...). */
const char *opcodeName(Opcode op);

/** Parse a mnemonic; returns false when unknown. */
bool parseOpcode(const std::string &name, Opcode &out);

/** True for any control-transfer instruction (jumps, calls, ret). */
bool isControlFlow(Opcode op);

/** True for conditional jumps (Je..Jns). */
bool isConditionalJump(Opcode op);

/** True for Jmp/Call/Ret/conditional jumps that end a basic block. */
bool isBlockTerminator(Opcode op);

/** True for the REP-prefixed string operations. */
bool isRepString(Opcode op);

/**
 * True for instructions at which a Pin-like runtime starts a new dynamic
 * basic block even though they are not branches (CPUID, REP strings) —
 * the §4.1 implementation challenge.
 */
bool isPinBlockSplitter(Opcode op);

/** Number of explicit operands an opcode takes (0, 1 or 2). */
int operandCount(Opcode op);

} // namespace tea

#endif // TEA_ISA_INSN_HH
