/**
 * @file
 * TinyX86 disassembler: instruction -> assembler-compatible text.
 */

#ifndef TEA_ISA_DISASM_HH
#define TEA_ISA_DISASM_HH

#include <string>

#include "isa/insn.hh"
#include "isa/program.hh"

namespace tea {

/** Render one operand ("eax", "42", "[esi + ecx*4 + 8]"). */
std::string formatOperand(const Operand &op);

/** Render one instruction without its address ("mov eax, 100"). */
std::string formatInsn(const Insn &insn);

/** Render one instruction with a leading address ("0x1000: mov ..."). */
std::string formatInsnWithAddr(const Insn &insn);

/** Disassemble a whole program, with labels interleaved. */
std::string disassemble(const Program &prog);

} // namespace tea

#endif // TEA_ISA_DISASM_HH
