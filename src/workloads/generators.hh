/**
 * @file
 * Internal: the 26 workload generator functions.
 *
 * Each returns TinyX86 assembly text. The scale parameter multiplies the
 * dynamic instruction count (Test = 1, Train = 6, Ref = 30); static code
 * shape (function counts, loop structure) is scale-independent so trace
 * sets stay comparable across input sizes, as with SPEC inputs.
 */

#ifndef TEA_WORKLOADS_GENERATORS_HH
#define TEA_WORKLOADS_GENERATORS_HH

#include <cstdint>
#include <string>

namespace tea {
namespace workloads {

// CFP2000 analogues
std::string genWupwise(uint32_t scale);
std::string genSwim(uint32_t scale);
std::string genMgrid(uint32_t scale);
std::string genApplu(uint32_t scale);
std::string genMesa(uint32_t scale);
std::string genGalgel(uint32_t scale);
std::string genArt(uint32_t scale);
std::string genEquake(uint32_t scale);
std::string genFacerec(uint32_t scale);
std::string genAmmp(uint32_t scale);
std::string genLucas(uint32_t scale);
std::string genFma3d(uint32_t scale);
std::string genSixtrack(uint32_t scale);
std::string genApsi(uint32_t scale);

// CINT2000 analogues
std::string genGzip(uint32_t scale);
std::string genVpr(uint32_t scale);
std::string genGcc(uint32_t scale);
std::string genMcf(uint32_t scale);
std::string genCrafty(uint32_t scale);
std::string genParser(uint32_t scale);
std::string genEon(uint32_t scale);
std::string genPerlbmk(uint32_t scale);
std::string genGap(uint32_t scale);
std::string genVortex(uint32_t scale);
std::string genBzip2(uint32_t scale);
std::string genTwolf(uint32_t scale);

} // namespace workloads
} // namespace tea

#endif // TEA_WORKLOADS_GENERATORS_HH
