/**
 * @file
 * The synthetic SPEC CPU2000 workload suite.
 *
 * The paper evaluates on 26 SPEC CPU2000 benchmarks (14 CFP2000 +
 * 12 CINT2000). SPEC binaries and inputs are not redistributable, so the
 * suite is substituted by 26 synthetic TinyX86 programs, one per SPEC
 * row, each engineered to reproduce its namesake's *control-flow
 * character* — which is the only property Tables 1-4 depend on:
 *
 * - FP analogues are dominated by regular loop nests (high coverage,
 *   few traces);
 * - syn.gcc has the largest static code footprint and the most traces;
 * - syn.gzip / syn.bzip2 have data-dependent inner loops that make
 *   trace trees (TT) explode while CTT stays compact;
 * - syn.perlbmk / syn.gap are interpreter dispatch loops over indirect
 *   jumps (low trace coverage);
 * - syn.eon is deeply call-heavy with many tiny functions;
 * - syn.mcf chases pointers through a linked structure, etc.
 *
 * Programs are deterministic (guest-side LCG for "random" data), always
 * halt, and their dynamic length scales with InputSize.
 */

#ifndef TEA_WORKLOADS_WORKLOAD_HH
#define TEA_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace tea {

/** Input scale, analogous to SPEC's test/train/ref inputs. */
enum class InputSize
{
    Test,  ///< ~10^5 dynamic instructions; unit tests
    Train, ///< ~10^6; quick experiments
    Ref,   ///< ~5x10^6; the numbers reported in EXPERIMENTS.md
};

/** Parse "test"/"train"/"ref". @throws FatalError on other input. */
InputSize parseInputSize(const std::string &name);

/** One benchmark of the suite. */
struct Workload
{
    std::string name;     ///< suite name, e.g. "syn.gzip"
    std::string specName; ///< the SPEC row it substitutes, "164.gzip"
    bool fp;              ///< CFP2000 analogue (vs CINT2000)
    Program program;
};

/**
 * The workload registry.
 */
class Workloads
{
  public:
    /** All workload names in the paper's Table 1 row order. */
    static std::vector<std::string> names();

    /**
     * Build one workload at the given scale.
     * @throws FatalError for unknown names.
     */
    static Workload build(const std::string &name, InputSize size);

    /** Build the whole suite in table order. */
    static std::vector<Workload> buildAll(InputSize size);
};

} // namespace tea

#endif // TEA_WORKLOADS_WORKLOAD_HH
