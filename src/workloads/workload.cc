#include "workloads/workload.hh"

#include "isa/assembler.hh"
#include "util/logging.hh"
#include "workloads/generators.hh"

namespace tea {

namespace {

using Generator = std::string (*)(uint32_t);

struct Entry
{
    const char *name;
    const char *specName;
    bool fp;
    Generator generate;
};

using namespace workloads;

/** Table 1 row order: CFP2000 first, then CINT2000. */
const Entry kSuite[] = {
    {"syn.wupwise", "168.wupwise", true, genWupwise},
    {"syn.swim", "171.swim", true, genSwim},
    {"syn.mgrid", "172.mgrid", true, genMgrid},
    {"syn.applu", "173.applu", true, genApplu},
    {"syn.mesa", "177.mesa", true, genMesa},
    {"syn.galgel", "178.galgel", true, genGalgel},
    {"syn.art", "179.art", true, genArt},
    {"syn.equake", "183.equake", true, genEquake},
    {"syn.facerec", "187.facerec", true, genFacerec},
    {"syn.ammp", "188.ammp", true, genAmmp},
    {"syn.lucas", "189.lucas", true, genLucas},
    {"syn.fma3d", "191.fma3d", true, genFma3d},
    {"syn.sixtrack", "200.sixtrack", true, genSixtrack},
    {"syn.apsi", "301.apsi", true, genApsi},
    {"syn.gzip", "164.gzip", false, genGzip},
    {"syn.vpr", "175.vpr", false, genVpr},
    {"syn.gcc", "176.gcc", false, genGcc},
    {"syn.mcf", "181.mcf", false, genMcf},
    {"syn.crafty", "186.crafty", false, genCrafty},
    {"syn.parser", "197.parser", false, genParser},
    {"syn.eon", "252.eon", false, genEon},
    {"syn.perlbmk", "253.perlbmk", false, genPerlbmk},
    {"syn.gap", "254.gap", false, genGap},
    {"syn.vortex", "255.vortex", false, genVortex},
    {"syn.bzip2", "256.bzip2", false, genBzip2},
    {"syn.twolf", "300.twolf", false, genTwolf},
};

uint32_t
scaleOf(InputSize size)
{
    switch (size) {
      case InputSize::Test: return 1;
      case InputSize::Train: return 6;
      case InputSize::Ref: return 30;
    }
    return 1;
}

} // namespace

InputSize
parseInputSize(const std::string &name)
{
    if (name == "test")
        return InputSize::Test;
    if (name == "train")
        return InputSize::Train;
    if (name == "ref")
        return InputSize::Ref;
    fatal("unknown input size '%s' (test/train/ref)", name.c_str());
}

std::vector<std::string>
Workloads::names()
{
    std::vector<std::string> out;
    for (const Entry &e : kSuite)
        out.emplace_back(e.name);
    return out;
}

Workload
Workloads::build(const std::string &name, InputSize size)
{
    for (const Entry &e : kSuite) {
        if (name == e.name) {
            Workload w;
            w.name = e.name;
            w.specName = e.specName;
            w.fp = e.fp;
            w.program = assemble(e.generate(scaleOf(size)));
            return w;
        }
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<Workload>
Workloads::buildAll(InputSize size)
{
    std::vector<Workload> out;
    out.reserve(std::size(kSuite));
    for (const Entry &e : kSuite)
        out.push_back(build(e.name, size));
    return out;
}

} // namespace tea
