#include "workloads/builder.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace tea {

void
AsmBuilder::line(const std::string &text_line)
{
    text += text_line;
    text += '\n';
}

void
AsmBuilder::ins(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    text += "    ";
    text += buf;
    text += '\n';
}

void
AsmBuilder::label(const std::string &name)
{
    text += name;
    text += ":\n";
}

std::string
AsmBuilder::fresh(const std::string &stem)
{
    return strprintf("%s_%d", stem.c_str(), counter++);
}

void
AsmBuilder::dataAt(Addr addr)
{
    line(strprintf(".data 0x%x", addr));
}

void
AsmBuilder::word(uint32_t value)
{
    line(strprintf(".word %u", value));
}

void
AsmBuilder::lcg(const char *state, const char *out)
{
    ins("mul %s, 1103515245", state);
    ins("add %s, 12345", state);
    ins("mov %s, %s", out, state);
    ins("shr %s, 16", out);
}

} // namespace tea
