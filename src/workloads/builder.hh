/**
 * @file
 * Assembly-source builder used by the workload generators.
 */

#ifndef TEA_WORKLOADS_BUILDER_HH
#define TEA_WORKLOADS_BUILDER_HH

#include <cstdarg>
#include <string>

#include "isa/types.hh"

namespace tea {

/**
 * Accumulates TinyX86 assembly text with printf-style convenience and
 * fresh-label generation, so workload generators stay readable.
 */
class AsmBuilder
{
  public:
    /** Append one raw line. */
    void line(const std::string &text);

    /** Append a printf-formatted line (indented as an instruction). */
    void ins(const char *fmt, ...) __attribute__((format(printf, 2, 3)));

    /** Append a label definition line. */
    void label(const std::string &name);

    /** Make a unique label with the given stem ("loop" -> "loop_17"). */
    std::string fresh(const std::string &stem);

    /** Append a ".data ADDR" directive. */
    void dataAt(Addr addr);

    /** Append one or more ".word" values. */
    void word(uint32_t value);

    /**
     * Emit a guest-side LCG step: state = state * 1103515245 + 12345
     * (mod 2^32), then out = state >> 16 (the usable pseudo-random
     * bits). state and out must be different registers.
     */
    void lcg(const char *state, const char *out);

    /** The accumulated source. */
    const std::string &source() const { return text; }

  private:
    std::string text;
    int counter = 0;
};

} // namespace tea

#endif // TEA_WORKLOADS_BUILDER_HH
