/**
 * @file
 * CFP2000 analogues: loop-nest dominated programs with high trace
 * coverage and comparatively few traces (see workload.hh).
 */

#include "workloads/generators.hh"

#include "workloads/builder.hh"

namespace tea {
namespace workloads {

namespace {

constexpr uint32_t kArrayA = 0x100000;
constexpr uint32_t kArrayB = 0x140000;
constexpr uint32_t kArrayC = 0x180000;
constexpr uint32_t kArrayD = 0x1c0000;

/** Standard prologue. */
void
prologue(AsmBuilder &b)
{
    b.line(".org 0x1000");
    b.line(".entry main");
    b.label("main");
}

/** Standard epilogue: print a checksum and stop. */
void
epilogue(AsmBuilder &b, const char *checksum_reg)
{
    b.ins("out %s", checksum_reg);
    b.ins("halt");
}

/**
 * Emit an array-fill loop: for (i = 0; i < count; ++i) base[i] = seed
 * pattern. Clobbers esi, ecx, ebx, edx.
 */
void
fillArray(AsmBuilder &b, uint32_t base, uint32_t count, uint32_t seed)
{
    std::string loop = b.fresh("fill");
    b.ins("mov esi, %u", base);
    b.ins("mov ecx, %u", count);
    b.ins("mov ebx, %u", seed);
    b.label(loop);
    b.lcg("ebx", "edx");
    b.ins("mov [esi], edx");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne %s", loop.c_str());
}

} // namespace

std::string
genWupwise(uint32_t scale)
{
    // Dense 2-level nest: complex multiply-accumulate over two arrays.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 256, 7);
    fillArray(b, kArrayB, 256, 11);
    b.ins("mov ebp, %u", 90 * scale); // outer trips
    b.label("outer");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov edi, %u", kArrayB);
    b.ins("mov ecx, 128"); // inner trips
    b.label("inner");
    b.ins("mov eax, [esi]");
    b.ins("mov edx, [edi]");
    b.ins("mul eax, edx");
    b.ins("add eax, [esi + 4]");
    b.ins("mul edx, 3");
    b.ins("sub eax, edx");
    b.ins("mov [esi], eax");
    b.ins("add esi, 8");
    b.ins("add edi, 8");
    b.ins("dec ecx");
    b.ins("jne inner");
    b.ins("dec ebp");
    b.ins("jne outer");
    epilogue(b, "eax");
    return b.source();
}

std::string
genSwim(uint32_t scale)
{
    // Shallow-water stencil: three long streaming loops per step plus a
    // REP block copy (exercises the §4.1 REP instruction-count quirk).
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 512, 3);
    fillArray(b, kArrayB, 512, 5);
    b.ins("mov ebp, %u", 28 * scale);
    b.label("step");
    // u[i] = (a[i] + a[i+1]) - b[i]
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov edi, %u", kArrayC);
    b.ins("mov ecx, 500");
    b.label("l1");
    b.ins("mov eax, [esi]");
    b.ins("add eax, [esi + 4]");
    b.ins("sub eax, [esi + %u]", kArrayB - kArrayA);
    b.ins("mov [edi], eax");
    b.ins("add esi, 4");
    b.ins("add edi, 4");
    b.ins("dec ecx");
    b.ins("jne l1");
    // b[i] += c[i] >> 2
    b.ins("mov esi, %u", kArrayC);
    b.ins("mov edi, %u", kArrayB);
    b.ins("mov ecx, 500");
    b.label("l2");
    b.ins("mov eax, [esi]");
    b.ins("sar eax, 2");
    b.ins("add [edi], eax");
    b.ins("add esi, 4");
    b.ins("add edi, 4");
    b.ins("dec ecx");
    b.ins("jne l2");
    // block copy c -> a with the REP string unit
    b.ins("mov esi, %u", kArrayC);
    b.ins("mov edi, %u", kArrayA);
    b.ins("mov ecx, 500");
    b.ins("repmovs");
    b.ins("dec ebp");
    b.ins("jne step");
    b.ins("mov eax, [%u]", kArrayA + 64);
    epilogue(b, "eax");
    return b.source();
}

std::string
genMgrid(uint32_t scale)
{
    // 3-level grid relaxation: tiny inner body, deep nest.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 1024, 13);
    b.ins("mov ebp, %u", 5 * scale);
    b.label("sweep");
    b.ins("mov ebx, 16"); // planes
    b.label("plane");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov edx, 8"); // rows
    b.label("row");
    b.ins("mov ecx, 60"); // cells
    b.label("cell");
    b.ins("mov eax, [esi]");
    b.ins("add eax, [esi + 4]");
    b.ins("shr eax, 1");
    b.ins("mov [esi], eax");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne cell");
    b.ins("dec edx");
    b.ins("jne row");
    b.ins("dec ebx");
    b.ins("jne plane");
    b.ins("dec ebp");
    b.ins("jne sweep");
    epilogue(b, "eax");
    return b.source();
}

std::string
genApplu(uint32_t scale)
{
    // Two sequential inner loops per outer step (lower/upper sweeps).
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 400, 17);
    fillArray(b, kArrayB, 400, 19);
    b.ins("mov ebp, %u", 42 * scale);
    b.label("iter");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov ecx, 200");
    b.label("lower");
    b.ins("mov eax, [esi]");
    b.ins("mul eax, 5");
    b.ins("add eax, [esi + %u]", kArrayB - kArrayA);
    b.ins("mov [esi], eax");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne lower");
    b.ins("mov esi, %u", kArrayA + 4 * 399);
    b.ins("mov ecx, 200");
    b.label("upper");
    b.ins("mov eax, [esi]");
    b.ins("sub eax, [esi - 4]");
    b.ins("sar eax, 1");
    b.ins("mov [esi], eax");
    b.ins("sub esi, 4");
    b.ins("dec ecx");
    b.ins("jne upper");
    b.ins("dec ebp");
    b.ins("jne iter");
    epilogue(b, "eax");
    return b.source();
}

std::string
genMesa(uint32_t scale)
{
    // Rasterizer-ish: per-"pixel" clip test with two paths, plus an
    // occasional CPUID (the unexpected-instruction block splitter of
    // §4.1, which perturbs Pin-vs-StarDBT block boundaries).
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 512, 23);
    b.ins("mov ebp, %u", 26 * scale);
    b.label("frame");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov ecx, 512");
    b.label("pixel");
    b.ins("mov eax, [esi]");
    b.ins("test eax, 1");
    b.ins("je clipped");
    b.ins("mul eax, 3");
    b.ins("add eax, 7");
    b.ins("jmp store");
    b.label("clipped");
    b.ins("shr eax, 1");
    b.label("store");
    b.ins("mov [esi], eax");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne pixel");
    // Query the "hardware" once per frame.
    b.ins("cpuid");
    b.ins("dec ebp");
    b.ins("jne frame");
    epilogue(b, "eax");
    return b.source();
}

std::string
genGalgel(uint32_t scale)
{
    // Long straight-line inner body (Galerkin kernel).
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 300, 29);
    fillArray(b, kArrayB, 300, 31);
    b.ins("mov ebp, %u", 50 * scale);
    b.label("outer");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov edi, %u", kArrayB);
    b.ins("mov ecx, 100");
    b.label("inner");
    b.ins("mov eax, [esi]");
    b.ins("mov edx, [edi]");
    b.ins("mul eax, edx");
    b.ins("add eax, [esi + 4]");
    b.ins("mov edx, [edi + 4]");
    b.ins("mul edx, 7");
    b.ins("sub eax, edx");
    b.ins("mov edx, [esi + 8]");
    b.ins("add eax, edx");
    b.ins("shr edx, 3");
    b.ins("xor eax, edx");
    b.ins("mov edx, [edi + 8]");
    b.ins("add eax, edx");
    b.ins("mov [esi], eax");
    b.ins("add esi, 12");
    b.ins("add edi, 12");
    b.ins("dec ecx");
    b.ins("jne inner");
    b.ins("dec ebp");
    b.ins("jne outer");
    epilogue(b, "eax");
    return b.source();
}

std::string
genArt(uint32_t scale)
{
    // Two passes with data-dependent (but heavily biased) select.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 256, 37);
    b.ins("mov ebp, %u", 40 * scale);
    b.label("epoch");
    // pass 1: find "winner" (max scan)
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov ecx, 256");
    b.ins("mov ebx, 0");
    b.label("scan");
    b.ins("mov eax, [esi]");
    b.ins("cmp eax, ebx");
    b.ins("jle noswap");
    b.ins("mov ebx, eax");
    b.label("noswap");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne scan");
    // pass 2: normalize by the winner
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov ecx, 256");
    b.ins("or ebx, 1");
    b.label("norm");
    b.ins("mov eax, [esi]");
    b.ins("mod eax, ebx");
    b.ins("mov [esi], eax");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne norm");
    b.ins("dec ebp");
    b.ins("jne epoch");
    epilogue(b, "ebx");
    return b.source();
}

std::string
genEquake(uint32_t scale)
{
    // Sparse matrix-vector product: indirection through an index array.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 256, 41); // values
    // index array: idx[i] = lcg % 256
    b.ins("mov esi, %u", kArrayB);
    b.ins("mov ecx, 256");
    b.ins("mov ebx, 43");
    b.label("mkidx");
    b.lcg("ebx", "edx");
    b.ins("and edx, 255");
    b.ins("mov [esi], edx");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne mkidx");
    b.ins("mov ebp, %u", 55 * scale);
    b.label("smvp");
    b.ins("mov esi, %u", kArrayB);
    b.ins("mov ecx, 256");
    b.ins("mov ebx, 0");
    b.label("row");
    b.ins("mov edx, [esi]");        // column index
    b.ins("mov eax, [edx*4 + %u]", kArrayA);
    b.ins("add ebx, eax");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne row");
    b.ins("dec ebp");
    b.ins("jne smvp");
    epilogue(b, "ebx");
    return b.source();
}

std::string
genFacerec(uint32_t scale)
{
    // Inner loop calls a leaf "distance" function.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 256, 47);
    fillArray(b, kArrayB, 256, 53);
    b.ins("mov ebp, %u", 60 * scale);
    b.label("probe");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov edi, %u", kArrayB);
    b.ins("mov ecx, 128");
    b.label("pairs");
    b.ins("call dist");
    b.ins("add esi, 8");
    b.ins("add edi, 8");
    b.ins("dec ecx");
    b.ins("jne pairs");
    b.ins("dec ebp");
    b.ins("jne probe");
    epilogue(b, "ebx");
    b.label("dist");
    b.ins("mov eax, [esi]");
    b.ins("sub eax, [edi]");
    b.ins("mov edx, eax");
    b.ins("mul edx, eax");
    b.ins("add ebx, edx");
    b.ins("ret");
    return b.source();
}

std::string
genAmmp(uint32_t scale)
{
    // Molecular dynamics-ish: cutoff test skips the expensive path.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 384, 59);
    b.ins("mov ebp, %u", 30 * scale);
    b.label("tstep");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov ecx, 384");
    b.label("atom");
    b.ins("mov eax, [esi]");
    b.ins("and eax, 4095");
    b.ins("cmp eax, 512");
    b.ins("jl near_");
    // far: cheap update
    b.ins("add [esi], 1");
    b.ins("jmp next");
    b.label("near_");
    // near: expensive force computation
    b.ins("mov edx, eax");
    b.ins("mul edx, eax");
    b.ins("shr edx, 4");
    b.ins("add edx, 3");
    b.ins("mod eax, edx");
    b.ins("add [esi], eax");
    b.label("next");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne atom");
    b.ins("dec ebp");
    b.ins("jne tstep");
    b.ins("mov eax, [%u]", kArrayA);
    epilogue(b, "eax");
    return b.source();
}

std::string
genLucas(uint32_t scale)
{
    // Multiword arithmetic with ADC chains; a large sub-threshold setup
    // phase keeps replay coverage visibly below 100% (paper: 90.4%).
    AsmBuilder b;
    prologue(b);
    // Setup: many *distinct* short loops, each too cold to become a
    // trace (30 trips < hot threshold 50).
    for (int i = 0; i < 24; ++i) {
        std::string lab = b.fresh("setup");
        b.ins("mov esi, %u", kArrayA + 0x400u * i);
        b.ins("mov ecx, 30");
        b.ins("mov ebx, %u", 61u + i);
        b.label(lab);
        b.lcg("ebx", "edx");
        b.ins("mov [esi], edx");
        b.ins("add esi, 4");
        b.ins("dec ecx");
        b.ins("jne %s", lab.c_str());
    }
    b.ins("mov ebp, %u", 120 * scale);
    b.label("mersenne");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov edi, %u", kArrayB);
    b.ins("mov ecx, 96");
    b.ins("cmp ecx, ecx"); // clear carry (ZF set, CF cleared)
    b.label("limb");
    b.ins("mov eax, [esi]");
    b.ins("adc eax, [edi]");
    b.ins("mov [edi], eax");
    // lea/dec keep the carry chain alive across iterations (as real
    // multiprecision loops do on x86).
    b.ins("lea esi, [esi + 4]");
    b.ins("lea edi, [edi + 4]");
    b.ins("dec ecx");
    b.ins("jne limb");
    b.ins("dec ebp");
    b.ins("jne mersenne");
    b.ins("mov eax, [%u]", kArrayB);
    epilogue(b, "eax");
    return b.source();
}

std::string
genFma3d(uint32_t scale)
{
    // Finite elements: per-element call fan-out to three kernels.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 256, 67);
    // modest cold phase (paper coverage ~94%)
    for (int i = 0; i < 10; ++i) {
        std::string lab = b.fresh("mesh");
        b.ins("mov esi, %u", kArrayB + 0x200u * i);
        b.ins("mov ecx, 35");
        b.label(lab);
        b.ins("mov [esi], ecx");
        b.ins("add esi, 4");
        b.ins("dec ecx");
        b.ins("jne %s", lab.c_str());
    }
    b.ins("mov ebp, %u", 60 * scale);
    b.label("solve");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov ecx, 64");
    b.label("elem");
    b.ins("call stiff");
    b.ins("call mass");
    b.ins("call forces");
    b.ins("add esi, 12");
    b.ins("dec ecx");
    b.ins("jne elem");
    b.ins("dec ebp");
    b.ins("jne solve");
    b.ins("mov eax, [%u]", kArrayA);
    epilogue(b, "eax");
    b.label("stiff");
    b.ins("mov eax, [esi]");
    b.ins("mul eax, 9");
    b.ins("mov [esi], eax");
    b.ins("ret");
    b.label("mass");
    b.ins("mov eax, [esi + 4]");
    b.ins("add eax, 17");
    b.ins("mov [esi + 4], eax");
    b.ins("ret");
    b.label("forces");
    b.ins("mov eax, [esi]");
    b.ins("add eax, [esi + 4]");
    b.ins("sar eax, 1");
    b.ins("mov [esi + 8], eax");
    b.ins("ret");
    return b.source();
}

std::string
genSixtrack(uint32_t scale)
{
    // Particle tracking with divide in the hot loop.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 320, 71);
    b.ins("mov ebp, %u", 60 * scale);
    b.label("turn");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov ecx, 160");
    b.label("part");
    b.ins("mov eax, [esi]");
    b.ins("or eax, 1");
    b.ins("mov edx, 982451653");
    b.ins("div edx, eax");
    b.ins("add edx, [esi + 4]");
    b.ins("mov [esi], edx");
    b.ins("add esi, 8");
    b.ins("dec ecx");
    b.ins("jne part");
    b.ins("dec ebp");
    b.ins("jne turn");
    epilogue(b, "edx");
    return b.source();
}

std::string
genApsi(uint32_t scale)
{
    // Pollutant transport: 3-level nest with mixed ops.
    AsmBuilder b;
    prologue(b);
    fillArray(b, kArrayA, 768, 73);
    b.ins("mov ebp, %u", 6 * scale);
    b.label("hour");
    b.ins("mov ebx, 12"); // layers
    b.label("layer");
    b.ins("mov esi, %u", kArrayA);
    b.ins("mov edx, 6"); // rows
    b.label("lat");
    b.ins("mov ecx, 64");
    b.label("lon");
    b.ins("mov eax, [esi]");
    b.ins("mul eax, 3");
    b.ins("add eax, [esi + 4]");
    b.ins("shr eax, 2");
    b.ins("xor eax, ecx");
    b.ins("mov [esi], eax");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne lon");
    b.ins("dec edx");
    b.ins("jne lat");
    b.ins("dec ebx");
    b.ins("jne layer");
    b.ins("dec ebp");
    b.ins("jne hour");
    epilogue(b, "eax");
    return b.source();
}

} // namespace workloads
} // namespace tea
