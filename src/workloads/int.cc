/**
 * @file
 * CINT2000 analogues: branchy, call-heavy, and interpreter-style
 * programs (see workload.hh for the per-benchmark rationale).
 */

#include "workloads/generators.hh"

#include "util/logging.hh"
#include "workloads/builder.hh"

namespace tea {
namespace workloads {

namespace {

constexpr uint32_t kHeap = 0x100000;
constexpr uint32_t kHeap2 = 0x180000;
constexpr uint32_t kTable = 0x1f0000;

void
prologue(AsmBuilder &b)
{
    b.line(".org 0x1000");
    b.line(".entry main");
    b.label("main");
}

void
epilogue(AsmBuilder &b, const char *checksum_reg)
{
    b.ins("out %s", checksum_reg);
    b.ins("halt");
}

} // namespace

std::string
genGzip(uint32_t scale)
{
    // LZ-style compressor sketch: per input symbol, a data-dependent
    // match loop (0..15 iterations) then a literal/match diamond. The
    // varying inner trip counts unroll into many distinct trace-tree
    // paths (the Table 1 TT blowup), while CTT closes them at the inner
    // header.
    AsmBuilder b;
    prologue(b);
    b.ins("mov ebp, %u", 3400 * scale); // symbols
    b.ins("mov ebx, 79");               // lcg state
    b.ins("mov edi, 0");                // checksum
    b.label("symbol");
    b.lcg("ebx", "edx");
    b.ins("test edx, 1"); // half the symbols are literals
    b.ins("je literal");
    b.ins("mov ecx, edx");
    b.ins("shr ecx, 1");
    b.ins("and ecx, 7"); // match length 0..7
    b.ins("je literal");
    b.label("match");
    b.ins("add edi, ecx");
    b.ins("shl edi, 1");
    b.ins("shr edi, 1");
    b.ins("dec ecx");
    b.ins("jne match");
    b.ins("test edx, 16");
    b.ins("je emit");
    b.ins("add edi, 3");
    b.ins("jmp emit");
    b.label("literal");
    b.ins("add edi, 1");
    b.ins("xor edi, edx");
    b.label("emit");
    b.ins("dec ebp");
    b.ins("jne symbol");
    epilogue(b, "edi");
    return b.source();
}

std::string
genVpr(uint32_t scale)
{
    // Placement loop: propose a swap, evaluate a small cost loop,
    // accept/reject on the (pseudo-random) delta.
    AsmBuilder b;
    prologue(b);
    // grid init
    b.ins("mov esi, %u", kHeap);
    b.ins("mov ecx, 256");
    b.ins("mov ebx, 83");
    b.label("grid");
    b.lcg("ebx", "edx");
    b.ins("mov [esi], edx");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne grid");
    b.ins("mov ebp, %u", 1200 * scale); // moves
    b.label("move");
    b.lcg("ebx", "edx");
    b.ins("mov eax, edx");
    b.ins("and eax, 255");
    // cost of the neighbourhood (fixed 12-cell loop)
    b.ins("mov esi, %u", kHeap);
    b.ins("mov ecx, 12");
    b.ins("mov edi, 0");
    b.label("cost");
    b.ins("add edi, [esi + eax*4]");
    b.ins("add eax, 1");
    b.ins("and eax, 255");
    b.ins("dec ecx");
    b.ins("jne cost");
    b.ins("test edi, 64");
    b.ins("je reject");
    b.ins("mov [esi + eax*4], edi"); // accept: commit the swap
    b.label("reject");
    b.ins("dec ebp");
    b.ins("jne move");
    epilogue(b, "edi");
    return b.source();
}

std::string
genGcc(uint32_t scale)
{
    // Compiler-ish: the largest static footprint of the suite. Many
    // small "pass" functions, each with its own loop and branches,
    // driven through an indirect-call dispatch table -> the most traces
    // (and the Table 4 linear-list pathology).
    constexpr int kFuncs = 256;
    AsmBuilder b;
    prologue(b);
    b.ins("mov ebp, %u", 700 * scale); // compilation units
    b.ins("mov ebx, 89");
    b.ins("mov edi, 0");
    b.label("unit");
    b.lcg("ebx", "edx");
    b.ins("and edx, %u", kFuncs - 1);
    b.ins("call [edx*4 + %u]", kTable);
    b.ins("dec ebp");
    b.ins("jne unit");
    epilogue(b, "edi");

    for (int f = 0; f < kFuncs; ++f) {
        std::string loop = strprintf("p%d_loop", f);
        std::string skip = strprintf("p%d_skip", f);
        b.label(strprintf("pass%d", f));
        b.ins("mov esi, %u", kHeap + 0x100u * f);
        b.ins("mov ecx, %u", 20 + (f % 7) * 8);
        b.label(loop);
        b.ins("mov eax, [esi]");
        b.ins("add eax, %d", f + 1);
        if (f % 3 == 0) {
            b.ins("test eax, 8");
            b.ins("je %s", skip.c_str());
            b.ins("mul eax, 3");
            b.label(skip);
        } else if (f % 3 == 1) {
            b.ins("shr eax, %d", 1 + f % 4);
        } else {
            b.ins("xor eax, %d", 0x5a5a + f);
        }
        b.ins("mov [esi], eax");
        b.ins("add edi, eax");
        b.ins("add esi, 4");
        b.ins("dec ecx");
        b.ins("jne %s", loop.c_str());
        b.ins("ret");
    }

    b.dataAt(kTable);
    std::string words = ".word";
    for (int f = 0; f < kFuncs; ++f) {
        words += strprintf(" pass%d", f);
        if (f % 8 == 7) {
            b.line(words);
            words = ".word";
        }
    }
    return b.source();
}

std::string
genMcf(uint32_t scale)
{
    // Network simplex sketch: pointer chasing over a linked structure
    // (the Figure 2 list-scan pattern, writ large).
    AsmBuilder b;
    prologue(b);
    // Build a 512-node singly linked list with payload. Node layout:
    // [value][next]. Nodes are placed with a stride so chasing is not
    // a simple array walk.
    b.ins("mov esi, %u", kHeap);
    b.ins("mov ecx, 511");
    b.ins("mov ebx, 97");
    b.label("mknode");
    b.lcg("ebx", "edx");
    b.ins("mov [esi], edx");
    b.ins("lea eax, [esi + 24]");
    b.ins("mov [esi + 4], eax");
    b.ins("mov esi, eax");
    b.ins("dec ecx");
    b.ins("jne mknode");
    b.ins("mov [esi], 1");
    b.ins("mov [esi + 4], 0"); // terminator
    b.ins("mov ebp, %u", 60 * scale);
    b.label("pass");
    b.ins("mov edx, %u", kHeap); // head
    b.ins("mov edi, 0");
    b.label("chase");
    b.ins("mov eax, [edx]");
    b.ins("test eax, 1");
    b.ins("je even");
    b.ins("add edi, eax");
    b.ins("jmp adv");
    b.label("even");
    b.ins("sub edi, eax");
    b.label("adv");
    b.ins("mov edx, [edx + 4]");
    b.ins("test edx, edx");
    b.ins("jne chase");
    b.ins("dec ebp");
    b.ins("jne pass");
    epilogue(b, "edi");
    return b.source();
}

std::string
genCrafty(uint32_t scale)
{
    // Bitboard move generation: shifts/masks with a 4-deep conditional
    // ladder -> many distinct paths (CTT grows large here).
    AsmBuilder b;
    prologue(b);
    b.ins("mov ebp, %u", 4000 * scale);
    b.ins("mov ebx, 101");
    b.ins("mov edi, 0");
    b.label("ply");
    b.lcg("ebx", "edx");
    b.ins("mov eax, edx");
    b.ins("and eax, 63"); // square
    b.ins("mov ecx, edx");
    b.ins("shr ecx, 6");
    b.ins("test ecx, 1");
    b.ins("je nrook");
    b.ins("shl eax, 2");
    b.ins("add edi, eax");
    b.label("nrook");
    b.ins("test ecx, 2");
    b.ins("je nbishop");
    b.ins("shr eax, 1");
    b.ins("xor edi, eax");
    b.label("nbishop");
    b.ins("test ecx, 4");
    b.ins("je nknight");
    b.ins("add eax, 17");
    b.ins("add edi, eax");
    b.label("nknight");
    b.ins("test ecx, 8");
    b.ins("je nqueen");
    b.ins("mul eax, 3");
    b.ins("sub edi, eax");
    b.label("nqueen");
    b.ins("and edi, 16777215");
    b.ins("dec ebp");
    b.ins("jne ply");
    epilogue(b, "edi");
    return b.source();
}

std::string
genParser(uint32_t scale)
{
    // Recursive-descent parser: parse() recurses to a data-dependent
    // depth, consuming "tokens" from the LCG.
    AsmBuilder b;
    prologue(b);
    b.ins("mov ebp, %u", 230 * scale); // sentences
    b.ins("mov ebx, 103");
    b.ins("mov edi, 0");
    b.label("sentence");
    b.ins("mov eax, 5"); // max depth
    b.ins("call parse");
    b.ins("dec ebp");
    b.ins("jne sentence");
    epilogue(b, "edi");

    b.label("parse");
    b.ins("test eax, eax");
    b.ins("je leaf");
    b.lcg("ebx", "edx");
    b.ins("test edx, 3"); // 75%: recurse twice
    b.ins("je leaf");
    b.ins("push eax");
    b.ins("dec eax");
    b.ins("call parse");
    b.ins("pop eax");
    b.ins("dec eax");
    b.ins("call parse");
    b.ins("inc eax");
    b.ins("ret");
    b.label("leaf");
    // dictionary scan (short loop)
    b.ins("mov ecx, 6");
    b.label("dict");
    b.ins("add edi, ecx");
    b.ins("dec ecx");
    b.ins("jne dict");
    b.ins("ret");
    return b.source();
}

std::string
genEon(uint32_t scale)
{
    // Ray tracer sketch in a C++-ish style: deep chains of small
    // functions; a fat cold setup keeps coverage near the paper's 91%.
    AsmBuilder b;
    prologue(b);
    // cold scene setup: distinct sub-threshold loops
    for (int i = 0; i < 30; ++i) {
        std::string lab = b.fresh("scene");
        b.ins("mov esi, %u", kHeap + 0x200u * i);
        b.ins("mov ecx, 32");
        b.ins("mov ebx, %u", 107u + i);
        b.label(lab);
        b.lcg("ebx", "edx");
        b.ins("mov [esi], edx");
        b.ins("add esi, 4");
        b.ins("dec ecx");
        b.ins("jne %s", lab.c_str());
    }
    b.ins("mov ebp, %u", 2500 * scale); // rays
    b.ins("mov ebx, 109");
    b.ins("mov edi, 0");
    b.label("ray");
    b.lcg("ebx", "edx");
    b.ins("mov eax, edx");
    b.ins("call shade");
    b.ins("add edi, eax");
    b.ins("dec ebp");
    b.ins("jne ray");
    epilogue(b, "edi");

    b.label("shade");
    b.ins("call intersect");
    b.ins("call brdf");
    b.ins("call attenuate");
    b.ins("ret");
    b.label("intersect");
    b.ins("and eax, 1023");
    b.ins("mov ecx, [eax*4 + %u]", kHeap);
    b.ins("mov edx, ecx");
    b.ins("shr edx, 5");
    b.ins("xor ecx, edx");
    b.ins("add eax, ecx");
    b.ins("and eax, 1048575");
    b.ins("ret");
    b.label("brdf");
    b.ins("mov ecx, eax");
    b.ins("mul ecx, ecx");
    b.ins("shr ecx, 7");
    b.ins("mov edx, eax");
    b.ins("shl edx, 2");
    b.ins("add ecx, edx");
    b.ins("add eax, ecx");
    b.ins("ret");
    b.label("attenuate");
    b.ins("test eax, 7");
    b.ins("je dark");
    b.ins("shr eax, 1");
    b.ins("ret");
    b.label("dark");
    b.ins("mov eax, 1");
    b.ins("ret");
    return b.source();
}

std::string
genPerlbmk(uint32_t scale)
{
    // Bytecode interpreter: indirect threaded dispatch. Indirect jumps
    // end every handler, so traces keep breaking (paper coverage 83%).
    constexpr int kOps = 8;
    AsmBuilder b;
    prologue(b);
    // bytecode program: 256 ops from the LCG
    b.ins("mov esi, %u", kHeap);
    b.ins("mov ecx, 256");
    b.ins("mov ebx, 113");
    b.label("mkprog");
    b.lcg("ebx", "edx");
    b.ins("and edx, %u", kOps - 1);
    b.ins("mov [esi], edx");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne mkprog");
    b.ins("mov ebp, %u", 40 * scale); // interpreter passes
    b.label("run");
    b.ins("mov esi, %u", kHeap); // pc
    b.ins("mov ecx, 256");       // remaining ops
    b.ins("mov edi, 0");         // accumulator
    b.label("fetch");
    b.ins("mov edx, [esi]");
    b.ins("add esi, 4");
    b.ins("jmp [edx*4 + %u]", kTable);
    for (int op = 0; op < kOps; ++op) {
        b.label(strprintf("op%d", op));
        switch (op) {
          case 0: b.ins("add edi, 1"); break;
          case 1: b.ins("sub edi, 3"); break;
          case 2: b.ins("shl edi, 1"); break;
          case 3: b.ins("shr edi, 2"); break;
          case 4: b.ins("xor edi, 255"); break;
          case 5: b.ins("add edi, edx"); break;
          case 6: b.ins("mul edi, 3"); b.ins("and edi, 65535"); break;
          default: b.ins("neg edi"); break;
        }
        b.ins("dec ecx");
        b.ins("jne fetch");
        b.ins("jmp done");
    }
    b.label("done");
    b.ins("dec ebp");
    b.ins("jne run");
    epilogue(b, "edi");

    b.dataAt(kTable);
    for (int op = 0; op < kOps; ++op)
        b.line(strprintf(".word op%d", op));
    return b.source();
}

std::string
genGap(uint32_t scale)
{
    // Computer-algebra kernel: a small stack machine with arithmetic
    // handlers that contain their own loops.
    AsmBuilder b;
    prologue(b);
    b.ins("mov ebp, %u", 3500 * scale);
    b.ins("mov ebx, 127");
    b.ins("mov edi, 1");
    b.label("expr");
    b.lcg("ebx", "edx");
    b.ins("mov eax, edx");
    b.ins("and eax, 3");
    b.ins("cmp eax, 1");
    b.ins("jl do_add");
    b.ins("je do_mul");
    b.ins("cmp eax, 3");
    b.ins("je do_gcd");
    // do_pow: square repeatedly
    b.ins("mov ecx, 5");
    b.label("pow");
    b.ins("mul edi, edi");
    b.ins("and edi, 1048575");
    b.ins("or edi, 3");
    b.ins("dec ecx");
    b.ins("jne pow");
    b.ins("jmp next");
    b.label("do_add");
    b.ins("add edi, edx");
    b.ins("jmp next");
    b.label("do_mul");
    b.ins("mul edi, 7");
    b.ins("and edi, 16777215");
    b.ins("jmp next");
    b.label("do_gcd");
    // few rounds of a gcd-ish remainder loop
    b.ins("mov eax, edx");
    b.ins("or eax, 5");
    b.ins("mov ecx, 4");
    b.label("gcd");
    b.ins("or edi, 1");
    b.ins("mod eax, edi");
    b.ins("add eax, 7");
    b.ins("xchg eax, edi");
    b.ins("dec ecx");
    b.ins("jne gcd");
    b.label("next");
    b.ins("dec ebp");
    b.ins("jne expr");
    epilogue(b, "edi");
    return b.source();
}

std::string
genVortex(uint32_t scale)
{
    // Object database: hashed inserts and lookups through a probe loop,
    // split across several small routines -> many medium traces with
    // heavy inter-trace linking.
    AsmBuilder b;
    prologue(b);
    b.ins("mov ebp, %u", 4200 * scale); // transactions
    b.ins("mov ebx, 131");
    b.ins("mov edi, 0");
    b.label("txn");
    b.lcg("ebx", "edx");
    b.ins("mov eax, edx");
    b.ins("and eax, 31"); // object class selects its method table
    b.ins("call [eax*4 + %u]", kTable);
    b.ins("dec ebp");
    b.ins("jne txn");
    epilogue(b, "edi");

    // 32 object classes, each with its own insert/lookup method pair
    // over a private bucket region (many distinct medium traces, like
    // vortex's per-object-type code paths).
    for (int klass = 0; klass < 32; ++klass) {
        uint32_t region = kHeap2 + 0x1000u * static_cast<uint32_t>(klass);
        std::string probe = strprintf("v%d_probe", klass);
        std::string miss = strprintf("v%d_miss", klass);
        std::string hit = strprintf("v%d_hit", klass);
        std::string ins = strprintf("v%d_ins", klass);
        b.label(strprintf("vclass%d", klass));
        b.ins("mov ecx, edx");
        b.ins("mul ecx, %u", 2654435761u + static_cast<uint32_t>(klass));
        b.ins("shr ecx, 22");
        b.ins("and ecx, 255"); // bucket within the class region
        b.ins("test edx, 3");
        b.ins("je %s", ins.c_str());
        b.ins("mov esi, 6"); // probe budget
        b.label(probe);
        b.ins("mov eax, [ecx*4 + %u]", region);
        b.ins("test eax, eax");
        b.ins("je %s", miss.c_str());
        b.ins("cmp eax, edx");
        b.ins("je %s", hit.c_str());
        b.ins("add ecx, 1");
        b.ins("and ecx, 255");
        b.ins("dec esi");
        b.ins("jne %s", probe.c_str());
        b.label(miss);
        b.ins("add edi, 1");
        b.ins("ret");
        b.label(hit);
        b.ins("add edi, eax");
        b.ins("ret");
        b.label(ins);
        b.ins("mov [ecx*4 + %u], edx", region);
        b.ins("add edi, 2");
        b.ins("ret");
    }

    b.dataAt(kTable);
    for (int klass = 0; klass < 32; klass += 8)
        b.line(strprintf(".word vclass%d vclass%d vclass%d vclass%d "
                         "vclass%d vclass%d vclass%d vclass%d",
                         klass, klass + 1, klass + 2, klass + 3,
                         klass + 4, klass + 5, klass + 6, klass + 7));
    return b.source();
}

std::string
genBzip2(uint32_t scale)
{
    // Block sorting sketch: two nesting levels whose inner trip counts
    // are data dependent -> the worst trace-tree explosion of Table 1.
    AsmBuilder b;
    prologue(b);
    b.ins("mov ebp, %u", 520 * scale); // blocks
    b.ins("mov ebx, 137");
    b.ins("mov edi, 0");
    b.label("block");
    b.lcg("ebx", "edx");
    b.ins("mov esi, edx");
    b.ins("and esi, 7"); // bucket count 0..7
    b.ins("je rle");
    b.label("bucket");
    b.lcg("ebx", "edx");
    b.ins("mov ecx, edx");
    b.ins("and ecx, 3"); // elements 0..3; empty buckets are common
    b.ins("je bdone");
    b.label("sortel");
    b.ins("mov eax, ecx");
    b.ins("xor eax, edx");
    b.ins("and eax, 1");
    b.ins("je keep");
    b.ins("add edi, ecx");
    b.ins("jmp swapped");
    b.label("keep");
    b.ins("sub edi, 1");
    b.label("swapped");
    b.ins("dec ecx");
    b.ins("jne sortel");
    b.label("bdone");
    b.ins("dec esi");
    b.ins("jne bucket");
    b.ins("jmp bnext");
    b.label("rle");
    b.ins("add edi, 13");
    b.label("bnext");
    b.ins("and edi, 33554431");
    b.ins("dec ebp");
    b.ins("jne block");
    epilogue(b, "edi");
    return b.source();
}

std::string
genTwolf(uint32_t scale)
{
    // Simulated annealing: accept/reject with a cooling-dependent bias
    // plus two cost loops of different lengths.
    AsmBuilder b;
    prologue(b);
    b.ins("mov esi, %u", kHeap);
    b.ins("mov ecx, 128");
    b.ins("mov ebx, 139");
    b.label("cells");
    b.lcg("ebx", "edx");
    b.ins("mov [esi], edx");
    b.ins("add esi, 4");
    b.ins("dec ecx");
    b.ins("jne cells");
    b.ins("mov ebp, %u", 1200 * scale); // moves
    b.ins("mov edi, 0");
    b.label("anneal");
    b.lcg("ebx", "edx");
    b.ins("mov eax, edx");
    b.ins("and eax, 127");
    // wire-length cost (long loop)
    b.ins("mov ecx, 10");
    b.label("wire");
    b.ins("add edi, [eax*4 + %u]", kHeap);
    b.ins("add eax, 1");
    b.ins("and eax, 127");
    b.ins("dec ecx");
    b.ins("jne wire");
    b.ins("test edx, 96");
    b.ins("je rejectm");
    // accept: overlap cost (short loop) and commit
    b.ins("mov ecx, 4");
    b.label("overlap");
    b.ins("sub edi, [eax*4 + %u]", kHeap);
    b.ins("add eax, 2");
    b.ins("and eax, 127");
    b.ins("dec ecx");
    b.ins("jne overlap");
    b.ins("mov [eax*4 + %u], edi", kHeap);
    b.label("rejectm");
    b.ins("and edi, 67108863");
    b.ins("dec ebp");
    b.ins("jne anneal");
    epilogue(b, "edi");
    return b.source();
}

} // namespace workloads
} // namespace tea
