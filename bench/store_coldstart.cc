/**
 * @file
 * Store cold-start: restart cost with and without the `.teac` tier.
 *
 * Simulates a serving fleet restart over N automatons two ways:
 *
 *   recompile —  the pre-store path: AutomatonRegistry::loadFile()
 *                per automaton (parse the `.tea`, rebuild the Tea,
 *                compile the CSR/hash arenas)
 *   mmap      —  the store path: CompiledTea::fromFile() per
 *                automaton (map the `.teac`, validate the header CRC
 *                and run the full structural audit, adopt pointers —
 *                zero deserialization, zero compiles), with the
 *                optional payload-CRC tier off, exactly as the
 *                store's serving fault-in runs it
 *                (StoreConfig::verifyPayload)
 *
 * Reports ns/automaton for both, the speedup, and the resident bytes
 * the mapped fleet charges against the store budget; asserts replay
 * bit-identity between one mapped and one recompiled automaton so the
 * fast path cannot win by serving different answers. --min-speedup X
 * turns the comparison into a CI gate (perf-smoke pins it at 10), and
 * --json dumps everything machine-readably.
 *
 * Usage: store_coldstart [--fleet N] [--json FILE] [--min-speedup X]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "svc/registry.hh"
#include "tea/builder.hh"
#include "tea/compiled.hh"
#include "tea/replayer.hh"
#include "tea/serialize.hh"
#include "tea/teac.hh"
#include "trace/factory.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace tea;

namespace {

/** A synthetic automaton: `traces` two-block cyclic loops. */
Tea
makeSyntheticTea(size_t traces)
{
    TraceSet set;
    for (size_t t = 0; t < traces; ++t) {
        Trace trace;
        Addr base = 0x1000 + static_cast<Addr>(t) * 64;
        trace.blocks.push_back({base, base + 12, true});
        trace.blocks.push_back({base + 16, base + 28, false});
        trace.edges.push_back({0, 1});
        trace.edges.push_back({1, 0});
        set.add(std::move(trace));
    }
    return buildTea(set);
}

/** Feed a short synthetic stream; returns the stats for comparison. */
ReplayStats
replaySample(TeaReplayer &replayer)
{
    BlockTransition tr{};
    tr.kind = EdgeKind::BranchTaken;
    tr.from.icount = 3;
    tr.from.start = 0x500;
    tr.from.end = 0x50c;
    tr.toStart = 0x1000;
    replayer.feed(tr);
    for (int i = 0; i < 2000; ++i) {
        bool atHead = (i % 2) == 0;
        tr.from.start = atHead ? 0x1000 : 0x1010;
        tr.from.end = atHead ? 0x100c : 0x101c;
        tr.toStart = atHead ? 0x1010 : 0x1000;
        replayer.feed(tr);
    }
    return replayer.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    size_t fleet = 100;
    std::string json_path;
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--fleet") && i + 1 < argc)
            fleet = static_cast<size_t>(std::atoi(argv[i + 1]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
            min_speedup = std::atof(argv[i + 1]);
    }
    if (fleet == 0)
        fleet = 1;

    // Build the fleet once and persist both encodings: the `.tea`
    // sources (what a store-less server reloads) and the `.teac`
    // images (what the store maps). Sizes vary so neither path is
    // tuned to one arena shape, and sit in the hundreds of traces per
    // automaton — the scale the paper reports for SPEC workloads —
    // so the fixed per-file mmap cost is amortized the way a real
    // fleet amortizes it.
    std::string dir = std::filesystem::temp_directory_path().string() +
                      "/store_coldstart_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    uint64_t teac_bytes = 0, resident_bytes = 0;
    size_t states_total = 0;
    for (size_t i = 0; i < fleet; ++i) {
        Tea tea = makeSyntheticTea(150 + (i % 40) * 15);
        states_total += tea.numStates();
        std::string stem = dir + "/fleet-" + std::to_string(i);
        saveTeaFile(tea, stem + ".tea");
        CompiledTea compiled(tea);
        saveTeacFile(compiled, stem + ".teac");
        teac_bytes += std::filesystem::file_size(stem + ".teac");
        resident_bytes += compiled.footprintBytes();
    }

    // Restart path A: parse + rebuild + recompile every automaton into
    // a fresh registry — what `teadbt serve name=tea ...` pays today.
    constexpr int kReps = 5;
    double compile_ms = 1e300;
    for (int r = 0; r < kReps; ++r) {
        AutomatonRegistry reg;
        Stopwatch timer;
        for (size_t i = 0; i < fleet; ++i) {
            std::string name = "fleet-" + std::to_string(i);
            reg.loadFile(name, dir + "/" + name + ".tea");
        }
        compile_ms = std::min(compile_ms, timer.elapsedMillis());
    }

    // Restart path B: map + validate every image — what a store-backed
    // server pays on first GET of each cold name. The header CRC and
    // the complete structural audit run; the optional payload-CRC tier
    // is off, matching the store's serving default
    // (StoreConfig::verifyPayload), so this times the real fault-in.
    double mmap_ms = 1e300;
    uint64_t before = CompiledTea::compileCount();
    for (int r = 0; r < kReps; ++r) {
        std::vector<std::shared_ptr<const CompiledTea>> mapped;
        mapped.reserve(fleet);
        Stopwatch timer;
        for (size_t i = 0; i < fleet; ++i)
            mapped.push_back(CompiledTea::fromFile(
                dir + "/fleet-" + std::to_string(i) + ".teac",
                /*verifyPayload=*/false));
        mmap_ms = std::min(mmap_ms, timer.elapsedMillis());
    }
    if (CompiledTea::compileCount() != before) {
        std::fprintf(stderr,
                     "FAIL: the mmap path compiled something\n");
        return 1;
    }

    // Bit-identity guard: the fast path must serve the same answers.
    {
        auto mapped = CompiledTea::fromFile(dir + "/fleet-0.teac");
        Tea fresh = loadTeaFile(dir + "/fleet-0.tea");
        LookupConfig cfg;
        TeaReplayer viaMmap(mapped, cfg);
        TeaReplayer viaCompile(fresh, cfg);
        ReplayStats a = replaySample(viaMmap);
        ReplayStats b = replaySample(viaCompile);
        if (!(a == b)) {
            std::fprintf(stderr,
                         "FAIL: mapped replay diverged from compiled\n");
            return 1;
        }
    }

    double compile_ns =
        compile_ms * 1e6 / static_cast<double>(fleet);
    double mmap_ns = mmap_ms * 1e6 / static_cast<double>(fleet);
    double speedup = mmap_ns > 0 ? compile_ns / mmap_ns : 0.0;

    std::printf("store_coldstart: %zu automatons (%zu states, %.1f MiB "
                "of .teac images)\n",
                fleet, states_total,
                static_cast<double>(teac_bytes) / (1 << 20));
    TextTable table({"path", "fleet ms", "ns/automaton"});
    table.addRow({"recompile (.tea)", TextTable::num(compile_ms, 2),
                  TextTable::num(compile_ns, 0)});
    table.addRow({"mmap (.teac)", TextTable::num(mmap_ms, 2),
                  TextTable::num(mmap_ns, 0)});
    std::fputs(table.render().c_str(), stdout);
    std::printf("mmap load is %.1fx faster than recompile; fleet "
                "resident footprint %.1f MiB\n",
                speedup, static_cast<double>(resident_bytes) / (1 << 20));

    if (!json_path.empty()) {
        FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"store_coldstart\",\n");
        std::fprintf(f, "  \"fleet\": %zu,\n", fleet);
        std::fprintf(f, "  \"statesTotal\": %zu,\n", states_total);
        std::fprintf(f, "  \"teacBytesOnDisk\": %llu,\n",
                     static_cast<unsigned long long>(teac_bytes));
        std::fprintf(f, "  \"residentBytes\": %llu,\n",
                     static_cast<unsigned long long>(resident_bytes));
        std::fprintf(f, "  \"nsPerAutomatonRecompile\": %.1f,\n",
                     compile_ns);
        std::fprintf(f, "  \"nsPerAutomatonMmap\": %.1f,\n", mmap_ns);
        std::fprintf(f, "  \"mmapSpeedup\": %.4f\n", speedup);
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    std::filesystem::remove_all(dir);

    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: mmap load speedup %.2fx below the required "
                     "%.2fx\n",
                     speedup, min_speedup);
        return 1;
    }
    return 0;
}
