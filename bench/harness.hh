/**
 * @file
 * Shared experiment drivers for the Table 1-4 benchmark binaries.
 *
 * Every driver reproduces one paper measurement per (workload, selector):
 *
 * - recordWithDbt(): the StarDBT-side recording run (blocks end at
 *   branches, REP counts as one instruction).
 * - memoryExperiment(): Table 1 — bytes to represent the recorded
 *   traces by code replication (DBT) vs as an automaton (TEA).
 * - replayExperiment(): Table 2 — replay the DBT-recorded traces under
 *   the Pin-analogue on the unmodified program; coverage and time.
 * - teaRecordExperiment(): Table 3 — record TEA online under the
 *   Pin-analogue (Algorithm 2); coverage and time.
 * - overheadExperiment(): Table 4 — normalized cost of Native /
 *   Without-tool / Empty / the three lookup configurations.
 */

#ifndef TEA_BENCH_HARNESS_HH
#define TEA_BENCH_HARNESS_HH

#include <string>

#include "tea/replayer.hh"
#include "trace/selector.hh"
#include "workloads/workload.hh"

namespace tea {
namespace bench {

/**
 * Timing model for Tables 2-4.
 *
 * The substrate is an interpreter, so its wall-clock cannot stand in for
 * native hardware: interpretation costs ~50 ns/guest-instruction, which
 * would hide the per-edge analysis costs the paper measures. Instead:
 *
 *   reported time = guest icount x kNativeNsPerInsn        (modeled)
 *                 + max(0, host run time - bare interpreter time)
 *                                                          (measured)
 *
 * The second term is the *real, measured* cost of the instrumentation
 * and of TEA's transition function — the same C-level work the paper's
 * pintool did. Only the scale of the native term is modeled; the
 * *relative* ordering of configurations is entirely measurement-driven.
 *
 * The constant models the paper's testbed, a Core i7 EE 975 (3.33 GHz,
 * ~1.2 sustained IPC on SPEC-like code => ~4 G guest instrs/second).
 */
constexpr double kNativeNsPerInsn = 0.25;

/** Per-workload native reference used by the timing model. */
struct Baseline
{
    uint64_t icount = 0;   ///< dynamic instructions (REP per iteration)
    double interpMs = 0.0; ///< bare interpreter wall-clock
    double modeledNativeMs() const { return icount * kNativeNsPerInsn * 1e-6; }
};

/** Run the workload natively and capture the timing baseline. */
Baseline measureBaseline(const Workload &w);

/** Apply the timing model to one measured run. */
double modeledMillis(const Baseline &base, double host_ms);

/** Record traces the StarDBT way. */
TraceSet recordWithDbt(const Workload &w, const std::string &selector,
                       SelectorConfig config = {});

/** Table 1 cell: memory to represent one workload's traces. */
struct MemoryCell
{
    size_t traces = 0;
    size_t tbbs = 0;
    size_t dbtBytes = 0;
    size_t teaBytes = 0;

    double
    savings() const
    {
        return dbtBytes == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(teaBytes) /
                               static_cast<double>(dbtBytes);
    }
};

/** Account one workload under one selector (records, then measures). */
MemoryCell memoryExperiment(const Workload &w, const std::string &selector,
                            SelectorConfig config = {});

/** Timing + coverage outcome of a replay or recording run. */
struct RunOutcome
{
    double coverage = 0.0; ///< fraction of dynamic instrs inside traces
    double millis = 0.0;   ///< timing-model milliseconds (see above)
    double hostMillis = 0.0; ///< raw host wall-clock of the run
    size_t traces = 0;
    ReplayStats stats;
};

/**
 * Table 2, TEA side: replay `traces` (recorded elsewhere) on the
 * unmodified program under the Pin-analogue. Edge instrumentation (§4.1)
 * means the replayer sees the same transitions StarDBT saw; only the
 * instruction counting differs (REP per iteration).
 */
RunOutcome replayExperiment(const Workload &w, const Baseline &base,
                            const TraceSet &traces, LookupConfig config);

/**
 * Table 3, TEA side: record online with Algorithm 2 under the
 * Pin-analogue (its native block discovery: splits at CPUID/REP).
 */
RunOutcome teaRecordExperiment(const Workload &w, const Baseline &base,
                               const std::string &selector,
                               LookupConfig lookup,
                               SelectorConfig config = {});

/**
 * Tables 2/3, DBT side: StarDBT's coverage comes from its recording run;
 * its reported time is the translated-execution proxy (see
 * dbt/runtime.hh) under the same timing model.
 */
RunOutcome dbtExperiment(const Workload &w, const Baseline &base,
                         const std::string &selector,
                         SelectorConfig config = {});

/** Table 4 row: timing-model milliseconds of each configuration. */
struct OverheadRow
{
    double nativeMs = 0.0;
    double withoutToolMs = 0.0;
    double emptyMs = 0.0;
    /**
     * The paper's three ablation points run on the reference kernel
     * (node B+ tree / linked list), so the Table 4 reproduction keeps
     * measuring exactly the structures the paper did.
     */
    double noGlobalLocalMs = 0.0;
    double globalNoLocalMs = 0.0;
    double globalLocalMs = 0.0;
    /** Global/Local on the compiled flat kernel (ours, not paper's). */
    double compiledMs = 0.0;
};

/** Run all Table 4 configurations (plus the compiled kernel) once. */
OverheadRow overheadExperiment(const Workload &w,
                               const std::string &selector,
                               SelectorConfig config = {});

/** Parse a --size=test/train/ref argv override (default Train). */
InputSize sizeFromArgs(int argc, char **argv,
                       InputSize fallback = InputSize::Train);

} // namespace bench
} // namespace tea

#endif // TEA_BENCH_HARNESS_HH
