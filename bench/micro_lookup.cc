/**
 * @file
 * §4.2 ablation at the data-structure level (google-benchmark).
 *
 * TEA's overhead is dominated by the transition function's lookups.
 * These microbenchmarks isolate each layer the paper stacked up:
 * linear trace list vs global B+ tree vs per-state local cache, plus
 * the end-to-end transition function under each LookupConfig on a
 * synthetic automaton.
 *
 * Beyond the paper's structures, the compiled flat kernel gets the
 * same treatment: BM_FlatHashFind isolates CompiledTea's open-addressed
 * entry hash against the node B+ tree, and the BM_Transition_Compiled_*
 * variants run the end-to-end transition function on the CSR kernel so
 * the compiled-vs-reference speedup is measurable per configuration.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "btree/bptree.hh"
#include "btree/local_cache.hh"
#include "tea/builder.hh"
#include "tea/compiled.hh"
#include "tea/replayer.hh"
#include "util/random.hh"

namespace {

using namespace tea;

/** Evenly spread synthetic trace-entry addresses. */
std::vector<uint32_t>
makeKeys(size_t n)
{
    std::vector<uint32_t> keys;
    keys.reserve(n);
    for (size_t i = 0; i < n; ++i)
        keys.push_back(0x1000 + static_cast<uint32_t>(i) * 24);
    return keys;
}

void
BM_LinearListFind(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto keys = makeKeys(n);
    std::vector<std::pair<uint32_t, uint32_t>> list;
    for (size_t i = 0; i < n; ++i)
        list.emplace_back(keys[i], static_cast<uint32_t>(i));
    Xorshift64Star rng(42);
    for (auto _ : state) {
        uint32_t probe = keys[rng.nextBelow(n)];
        uint32_t found = 0;
        for (const auto &[k, v] : list) {
            if (k == probe) {
                found = v;
                break;
            }
        }
        benchmark::DoNotOptimize(found);
    }
}
BENCHMARK(BM_LinearListFind)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void
BM_BPlusTreeFind(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto keys = makeKeys(n);
    BPlusTree tree;
    for (size_t i = 0; i < n; ++i)
        tree.insert(keys[i], static_cast<uint32_t>(i));
    Xorshift64Star rng(42);
    for (auto _ : state) {
        uint32_t out = 0;
        tree.find(keys[rng.nextBelow(n)], out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_BPlusTreeFind)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void
BM_StdMapFind(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto keys = makeKeys(n);
    std::map<uint32_t, uint32_t> map;
    for (size_t i = 0; i < n; ++i)
        map[keys[i]] = static_cast<uint32_t>(i);
    Xorshift64Star rng(42);
    for (auto _ : state) {
        auto it = map.find(keys[rng.nextBelow(n)]);
        benchmark::DoNotOptimize(it);
    }
}
BENCHMARK(BM_StdMapFind)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

/**
 * CompiledTea's flat open-addressed hash over the same key set the
 * B+ tree indexes. Built through a real automaton (one single-block
 * trace per key) so the measured probe is the production code path.
 */
void
BM_FlatHashFind(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto keys = makeKeys(n);
    TraceSet set;
    for (uint32_t key : keys) {
        Trace trace;
        trace.blocks.push_back({key, key + 12, true});
        set.add(std::move(trace));
    }
    Tea tea = buildTea(set);
    CompiledTea compiled(tea);
    Xorshift64Star rng(42);
    for (auto _ : state) {
        StateId out = compiled.entryAt(keys[rng.nextBelow(n)]);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_FlatHashFind)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void
BM_LocalCacheHit(benchmark::State &state)
{
    LocalCache cache;
    cache.fill(0x2000, 7);
    for (auto _ : state) {
        uint32_t out = 0;
        cache.lookup(0x2000, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_LocalCacheHit);

/** A synthetic automaton: `traces` two-block cyclic loops. */
Tea
makeTea(size_t traces)
{
    TraceSet set;
    for (size_t t = 0; t < traces; ++t) {
        Trace trace;
        Addr base = 0x1000 + static_cast<Addr>(t) * 64;
        trace.blocks.push_back({base, base + 12, true});
        trace.blocks.push_back({base + 16, base + 28, false});
        trace.edges.push_back({0, 1});
        trace.edges.push_back({1, 0});
        set.add(std::move(trace));
    }
    return buildTea(set);
}

/**
 * The stimulus stream: a loop that mostly stays inside one trace but
 * hops to a different trace every 16th transition (exercising the
 * exit path). Pre-generated so the measured loop below is *only* the
 * transition function — no RNG or struct assembly on the clock.
 */
std::vector<BlockTransition>
makeStream(size_t traces, size_t length)
{
    Xorshift64Star rng(7);
    std::vector<BlockTransition> stream;
    stream.reserve(length);
    BlockTransition tr{};
    tr.kind = EdgeKind::BranchTaken;
    Addr cur_base = 0x1000;
    int phase = 0;
    for (size_t i = 0; i < length; ++i) {
        tr.from.start = cur_base + (phase ? 16 : 0);
        tr.from.end = tr.from.start + 12;
        tr.from.icount = 4;
        if (phase == 1 && rng.nextBelow(16) == 0) {
            cur_base = 0x1000 +
                       static_cast<Addr>(rng.nextBelow(traces)) * 64;
            tr.toStart = cur_base; // hop to another trace entry
            phase = 0;
        } else {
            phase ^= 1;
            tr.toStart = cur_base + (phase ? 16 : 0);
        }
        stream.push_back(tr);
    }
    return stream;
}

void
transitionBench(benchmark::State &state, bool global, bool local,
                bool compiled)
{
    size_t traces = static_cast<size_t>(state.range(0));
    Tea tea = makeTea(traces);
    LookupConfig cfg;
    cfg.useGlobalBTree = global;
    cfg.useLocalCache = local;
    cfg.useCompiled = compiled;
    TeaReplayer replayer(tea, cfg);

    std::vector<BlockTransition> stream = makeStream(traces, 65536);
    for (auto _ : state)
        replayer.feedAll(stream.data(), stream.data() + stream.size());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(stream.size()));
    state.counters["intra_hit_rate"] = benchmark::Counter(
        static_cast<double>(replayer.stats().intraTraceHits) /
        static_cast<double>(replayer.stats().transitions));
}

void
BM_Transition_GlobalLocal(benchmark::State &state)
{
    transitionBench(state, true, true, false);
}
void
BM_Transition_GlobalNoLocal(benchmark::State &state)
{
    transitionBench(state, true, false, false);
}
void
BM_Transition_NoGlobalLocal(benchmark::State &state)
{
    transitionBench(state, false, true, false);
}
// Same configurations on the compiled flat kernel (bit-identical
// stats; compare ns/iter against the reference variant above).
void
BM_Transition_Compiled_GlobalLocal(benchmark::State &state)
{
    transitionBench(state, true, true, true);
}
void
BM_Transition_Compiled_GlobalNoLocal(benchmark::State &state)
{
    transitionBench(state, true, false, true);
}
void
BM_Transition_Compiled_NoGlobalLocal(benchmark::State &state)
{
    transitionBench(state, false, true, true);
}
BENCHMARK(BM_Transition_GlobalLocal)->Arg(16)->Arg(256)->Arg(2048);
BENCHMARK(BM_Transition_GlobalNoLocal)->Arg(16)->Arg(256)->Arg(2048);
BENCHMARK(BM_Transition_NoGlobalLocal)->Arg(16)->Arg(256)->Arg(2048);
BENCHMARK(BM_Transition_Compiled_GlobalLocal)
    ->Arg(16)
    ->Arg(256)
    ->Arg(2048);
BENCHMARK(BM_Transition_Compiled_GlobalNoLocal)
    ->Arg(16)
    ->Arg(256)
    ->Arg(2048);
BENCHMARK(BM_Transition_Compiled_NoGlobalLocal)
    ->Arg(16)
    ->Arg(256)
    ->Arg(2048);

} // namespace

BENCHMARK_MAIN();
