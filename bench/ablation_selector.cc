/**
 * @file
 * Ablation: the four trace-selection strategies side by side.
 *
 * Extends Table 1 with MFET (the related-work strategy the paper cites
 * but does not evaluate) and adds the replay-coverage dimension: how
 * much of execution each strategy's traces capture, at what memory
 * cost, and what TEA saves on each.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "trace/factory.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::bench;

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);

    std::printf("Ablation: selection strategies across the suite "
                "(coverage via TEA replay)\n");
    for (const std::string &selector : selectorNames()) {
        TextTable table({"benchmark", "traces", "TBBs", "coverage",
                         "DBT bytes", "TEA bytes", "savings"});
        std::vector<double> savings, coverage;
        for (const std::string &name : Workloads::names()) {
            Workload w = Workloads::build(name, size);
            Baseline base = measureBaseline(w);
            MemoryCell cell = memoryExperiment(w, selector);
            TraceSet traces = recordWithDbt(w, selector);
            RunOutcome replay =
                replayExperiment(w, base, traces, LookupConfig{});

            table.addRow({w.specName,
                          TextTable::num(uint64_t{cell.traces}),
                          TextTable::num(uint64_t{cell.tbbs}),
                          TextTable::pct(replay.coverage, 1),
                          TextTable::num(uint64_t{cell.dbtBytes}),
                          TextTable::num(uint64_t{cell.teaBytes}),
                          TextTable::pct(cell.savings())});
            savings.push_back(cell.savings());
            coverage.push_back(replay.coverage);
        }
        table.addSeparator();
        table.addRow({"GeoMean", "", "",
                      TextTable::pct(geomean(coverage), 1), "", "",
                      TextTable::pct(geomean(savings))});
        std::printf("\nselector: %s\n%s", selector.c_str(),
                    table.render().c_str());
    }
    return 0;
}
