/**
 * @file
 * Table 3 — "TEA Runtime Aspects - Recording".
 *
 * TEA records traces *online* (Algorithm 2, MRET policy) under the
 * Pin-analogue, with Pin's own dynamic-block discovery (CPUID/REP
 * splitting, per-iteration REP counts). The paper's invariants: coverage
 * close to — and on several rows slightly different from — the
 * StarDBT-side numbers (block identification and instruction counting
 * differ, §4.1), and recording time of the same order as replay time,
 * an order of magnitude above the DBT.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::bench;

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);

    TextTable table({"benchmark", "TEA cover", "TEA ms", "TEA traces",
                     "DBT cover", "DBT ms"});
    std::vector<double> tea_cov, dbt_cov, tea_ms, dbt_ms;

    std::printf("Table 3: recording traces online with TEA "
                "(selector: mret)\n");
    for (const std::string &name : Workloads::names()) {
        Workload w = Workloads::build(name, size);

        Baseline base = measureBaseline(w);
        RunOutcome dbt = dbtExperiment(w, base, "mret");
        RunOutcome tea =
            teaRecordExperiment(w, base, "mret", LookupConfig{});

        table.addRow({w.specName,
                      TextTable::pct(tea.coverage, 1),
                      TextTable::num(tea.millis, 1),
                      TextTable::num(static_cast<uint64_t>(tea.traces)),
                      TextTable::pct(dbt.coverage, 1),
                      TextTable::num(dbt.millis, 1)});
        tea_cov.push_back(tea.coverage);
        dbt_cov.push_back(dbt.coverage);
        tea_ms.push_back(tea.millis);
        dbt_ms.push_back(dbt.millis);
    }
    table.addSeparator();
    table.addRow({"GeoMean", TextTable::pct(geomean(tea_cov), 1),
                  TextTable::num(geomean(tea_ms), 1), "",
                  TextTable::pct(geomean(dbt_cov), 1),
                  TextTable::num(geomean(dbt_ms), 1)});
    std::fputs(table.render().c_str(), stdout);

    std::printf("\npaper: geomean coverage TEA 99.6%% vs DBT 97.4%%; "
                "TEA time ~13x DBT time\n");
    return 0;
}
