/**
 * @file
 * Ablation: the hot-threshold knob of the selection strategies.
 *
 * Dynamo's "less is more" insight is that very small thresholds work;
 * this sweep shows why on our suite: lowering the threshold brings
 * coverage up (traces form before the warm-up ends) at the cost of more
 * traces — and therefore more memory on both the DBT and the TEA side,
 * with the savings ratio staying flat. Not a paper table; it ablates a
 * design choice DESIGN.md calls out.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "tea/builder.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::bench;

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);
    const uint32_t thresholds[] = {10, 25, 50, 100, 200, 400};
    const char *workloads[] = {"syn.gzip", "syn.gcc", "syn.mcf",
                               "syn.crafty"};

    std::printf("Ablation: MRET hot threshold sweep\n");
    for (const char *name : workloads) {
        Workload w = Workloads::build(name, size);
        Baseline base = measureBaseline(w);

        TextTable table({"threshold", "traces", "TBBs", "coverage",
                         "DBT bytes", "TEA bytes", "savings"});
        for (uint32_t threshold : thresholds) {
            SelectorConfig cfg;
            cfg.hotThreshold = threshold;
            cfg.extensionThreshold = threshold;

            MemoryCell cell = memoryExperiment(w, "mret", cfg);
            TraceSet traces = recordWithDbt(w, "mret", cfg);
            RunOutcome replay =
                replayExperiment(w, base, traces, LookupConfig{});

            table.addRow({TextTable::num(uint64_t{threshold}),
                          TextTable::num(uint64_t{cell.traces}),
                          TextTable::num(uint64_t{cell.tbbs}),
                          TextTable::pct(replay.coverage, 1),
                          TextTable::num(uint64_t{cell.dbtBytes}),
                          TextTable::num(uint64_t{cell.teaBytes}),
                          TextTable::pct(cell.savings())});
        }
        std::printf("\n%s:\n%s", name, table.render().c_str());
    }
    std::printf("\ninvariant: the TEA savings ratio is insensitive to "
                "the threshold; coverage falls once the threshold "
                "approaches the loop trip counts.\n");
    return 0;
}
