/**
 * @file
 * Table 2 — "TEA Runtime Aspects - Replaying".
 *
 * Traces are recorded by the DBT (StarDBT policy), then replayed by TEA
 * under the Pin-analogue against the unmodified program. The paper's
 * invariants: TEA coverage is equal or slightly *higher* than the
 * DBT-side coverage (the replayer never executes the recording warm-up
 * cold), absolute coverage is high (geomean 97.5% vs 97.4%), and TEA
 * replay time is roughly an order of magnitude above the DBT's
 * translated-execution time (geomean 1559 vs 129 in the paper).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::bench;

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);

    TextTable table({"benchmark", "TEA cover", "TEA ms", "DBT cover",
                     "DBT ms", "TEA/DBT time"});
    std::vector<double> tea_cov, dbt_cov, tea_ms, dbt_ms, ratio;

    std::printf("Table 2: replaying DBT-recorded traces with TEA "
                "(selector: mret)\n");
    for (const std::string &name : Workloads::names()) {
        Workload w = Workloads::build(name, size);

        Baseline base = measureBaseline(w);
        RunOutcome dbt = dbtExperiment(w, base, "mret");
        TraceSet traces = recordWithDbt(w, "mret");
        RunOutcome tea = replayExperiment(w, base, traces, LookupConfig{});

        table.addRow({w.specName,
                      TextTable::pct(tea.coverage, 1),
                      TextTable::num(tea.millis, 1),
                      TextTable::pct(dbt.coverage, 1),
                      TextTable::num(dbt.millis, 1),
                      TextTable::num(dbt.millis > 0
                                         ? tea.millis / dbt.millis
                                         : 0.0, 1)});
        tea_cov.push_back(tea.coverage);
        dbt_cov.push_back(dbt.coverage);
        tea_ms.push_back(tea.millis);
        dbt_ms.push_back(dbt.millis);
        if (dbt.millis > 0)
            ratio.push_back(tea.millis / dbt.millis);
    }
    table.addSeparator();
    table.addRow({"GeoMean", TextTable::pct(geomean(tea_cov), 1),
                  TextTable::num(geomean(tea_ms), 1),
                  TextTable::pct(geomean(dbt_cov), 1),
                  TextTable::num(geomean(dbt_ms), 1),
                  TextTable::num(geomean(ratio), 1)});
    std::fputs(table.render().c_str(), stdout);

    std::printf("\npaper: geomean coverage TEA 97.5%% vs DBT 97.4%%; "
                "time ratio ~12x\n");
    return 0;
}
