/**
 * @file
 * Online recording throughput and the incremental-recompile payoff.
 *
 * Two measurements, matching the rec/ subsystem's two promises:
 *
 *   ingest    —  transitions/sec through a RecordingSession doing the
 *                full online loop: Algorithm 2 growth, periodic
 *                incremental recompile, atomic registry hot-swap. This
 *                is the rate a live RECORD stream can sustain.
 *   recompile —  one publish step at fleet scale: an automaton of N
 *                traces grows by a few, and the snapshot is rebuilt
 *                either from scratch (CompiledTea::compile) or through
 *                the delta path (CompiledTea::recompile). The ratio is
 *                the whole point of the delta path: publish cost must
 *                track the *growth*, not the automaton size.
 *
 * Asserts bit identity between the delta and full images so the fast
 * path cannot win by publishing different bytes. --min-ratio X turns
 * the comparison into a CI gate (perf-smoke pins it at 3 with
 * --traces 400, growth well under the churn ceiling), and --json
 * dumps everything machine-readably.
 *
 * Usage: rec_throughput [--traces N] [--json FILE] [--min-ratio X]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "rec/recording.hh"
#include "svc/registry.hh"
#include "tea/builder.hh"
#include "tea/compiled.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace tea;

namespace {

/** A synthetic automaton: `traces` two-block cyclic loops. */
Tea
makeSyntheticTea(size_t traces)
{
    TraceSet set;
    for (size_t t = 0; t < traces; ++t) {
        Trace trace;
        Addr base = 0x1000 + static_cast<Addr>(t) * 64;
        trace.blocks.push_back({base, base + 12, true});
        trace.blocks.push_back({base + 16, base + 28, false});
        trace.edges.push_back({0, 1});
        trace.edges.push_back({1, 0});
        set.add(std::move(trace));
    }
    return buildTea(set);
}

/**
 * A recording workload: per region, enter cold, ping-pong past the
 * selector's hot threshold so a trace installs, then exit. Appended
 * to `out`; returns the record count added.
 */
size_t
appendRegionStream(std::vector<BlockTransition> &out, size_t region,
                   int rounds)
{
    size_t before = out.size();
    Addr base = 0x1000 + static_cast<Addr>(region) * 64;
    BlockTransition tr{};
    tr.kind = EdgeKind::BranchTaken;
    tr.from.icount = 3;
    tr.from.start = 0x500;
    tr.from.end = 0x50c;
    tr.toStart = base;
    out.push_back(tr);
    for (int i = 0; i < rounds; ++i) {
        bool atHead = (i % 2) == 0;
        tr.from.start = atHead ? base : base + 16;
        tr.from.end = atHead ? base + 12 : base + 28;
        tr.toStart = atHead ? base + 16 : base;
        out.push_back(tr);
    }
    tr.from.start = base + 16;
    tr.from.end = base + 28;
    tr.toStart = 0x500;
    out.push_back(tr);
    return out.size() - before;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t traces = 400;
    std::string json_path;
    double min_ratio = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--traces") && i + 1 < argc)
            traces = static_cast<size_t>(std::atoi(argv[i + 1]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--min-ratio") && i + 1 < argc)
            min_ratio = std::atof(argv[i + 1]);
    }
    if (traces < 100)
        traces = 100; // the ratio below is only meaningful at scale

    // ------------------------------------------------ ingest throughput
    // One stream visiting 64 regions, hot enough that each installs a
    // trace: the session pays growth, recompiles, and hot-swaps along
    // the way, exactly like a live RECORD stream.
    std::vector<BlockTransition> stream;
    constexpr size_t kRegions = 64;
    for (size_t r = 0; r < kRegions; ++r)
        appendRegionStream(stream, r, 150);

    constexpr int kReps = 5;
    double ingest_ms = 1e300;
    uint64_t swaps = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        AutomatonRegistry registry;
        rec::RecordingConfig cfg;
        cfg.swapInterval = 1024;
        rec::RecordingSession session("bench", registry, nullptr, cfg);
        Stopwatch timer;
        for (const BlockTransition &tr : stream)
            session.feed(tr);
        rec::RecordingResultSummary sum = session.finish();
        ingest_ms = std::min(ingest_ms, timer.elapsedMillis());
        swaps = sum.swaps;
    }
    double per_sec =
        static_cast<double>(stream.size()) / (ingest_ms / 1e3);

    // ------------------------------------------- recompile: full vs delta
    // An automaton of `traces` traces grows by 2%: the publish step a
    // mid-recording swap pays once the automaton is already large.
    size_t growth = traces / 50 != 0 ? traces / 50 : 1;
    auto prevTea = std::make_shared<const Tea>(makeSyntheticTea(traces));
    auto grownTea =
        std::make_shared<const Tea>(makeSyntheticTea(traces + growth));
    auto prev = CompiledTea::compile(prevTea);

    double full_ms = 1e300, delta_ms = 1e300;
    std::shared_ptr<const CompiledTea> full, delta;
    for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch timer;
        full = CompiledTea::compile(grownTea);
        full_ms = std::min(full_ms, timer.elapsedMillis());
    }
    for (int rep = 0; rep < kReps; ++rep) {
        CompiledTea::RecompileInfo info;
        Stopwatch timer;
        delta = CompiledTea::recompile(grownTea, prev,
                                       /*appendOnly=*/true, 0.5, &info);
        delta_ms = std::min(delta_ms, timer.elapsedMillis());
        if (!info.incremental) {
            std::fprintf(stderr, "FAIL: delta path fell back (%s)\n",
                         info.fallbackReason ? info.fallbackReason
                                             : "unknown");
            return 1;
        }
    }

    // Bit-identity guard: the fast path must publish the same bytes.
    if (delta->serialize() != full->serialize()) {
        std::fprintf(stderr,
                     "FAIL: delta image diverged from full compile\n");
        return 1;
    }

    double ratio = delta_ms > 0 ? full_ms / delta_ms : 0.0;

    std::printf("rec_throughput: %zu-transition stream over %zu "
                "regions; recompile at %zu(+%zu) traces\n",
                stream.size(), kRegions, traces, growth);
    TextTable table({"measurement", "best ms", "rate"});
    table.addRow({"online ingest", TextTable::num(ingest_ms, 2),
                  TextTable::num(per_sec / 1e6, 2) + " M trans/s"});
    table.addRow({"full recompile", TextTable::num(full_ms, 3), ""});
    table.addRow({"incremental recompile", TextTable::num(delta_ms, 3),
                  TextTable::num(ratio, 1) + "x faster"});
    std::fputs(table.render().c_str(), stdout);
    std::printf("session published %llu hot-swaps while ingesting\n",
                static_cast<unsigned long long>(swaps));

    if (!json_path.empty()) {
        FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"rec_throughput\",\n");
        std::fprintf(f, "  \"streamTransitions\": %zu,\n", stream.size());
        std::fprintf(f, "  \"ingestMs\": %.3f,\n", ingest_ms);
        std::fprintf(f, "  \"transitionsPerSec\": %.0f,\n", per_sec);
        std::fprintf(f, "  \"swaps\": %llu,\n",
                     static_cast<unsigned long long>(swaps));
        std::fprintf(f, "  \"recompileTraces\": %zu,\n", traces);
        std::fprintf(f, "  \"recompileGrowth\": %zu,\n", growth);
        std::fprintf(f, "  \"fullRecompileMs\": %.4f,\n", full_ms);
        std::fprintf(f, "  \"incrementalRecompileMs\": %.4f,\n",
                     delta_ms);
        std::fprintf(f, "  \"incrementalSpeedup\": %.2f\n", ratio);
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (min_ratio > 0.0 && ratio < min_ratio) {
        std::fprintf(stderr,
                     "FAIL: incremental recompile only %.2fx faster "
                     "than full (gate %.2fx)\n",
                     ratio, min_ratio);
        return 1;
    }
    return 0;
}
