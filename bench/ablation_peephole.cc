/**
 * @file
 * Ablation: the intra-TBB peephole pass on replicated trace code.
 *
 * Quantifies how much the baseline trace optimizer (opt/peephole.hh)
 * does across the suite — transforms applied, replicated code bytes
 * before/after, and proof-by-execution that outputs stay identical.
 * TEA is unaffected by construction (it stores no code), which is the
 * §2 point: the automaton keeps profiling validity while the code it
 * describes gets optimized.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "dbt/runtime.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "vm/machine.hh"

using namespace tea;
using namespace tea::bench;

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);

    TextTable table({"benchmark", "transforms", "dead movs", "folds",
                     "code before", "code after", "output"});
    std::vector<double> per_kb;

    std::printf("Ablation: peephole optimization of replicated trace "
                "code (selector: mret)\n");
    for (const std::string &name : Workloads::names()) {
        Workload w = Workloads::build(name, size);
        TraceSet traces = recordWithDbt(w, "mret");

        TranslatedImage plain = translate(w.program, traces, false);
        TranslatedImage opt = translate(w.program, traces, true);

        size_t code_before = 0, code_after = 0;
        for (const EmittedTrace &t : plain.traces)
            code_before += t.memory.codeBytes;
        for (const EmittedTrace &t : opt.traces)
            code_after += t.memory.codeBytes;

        Machine native(w.program);
        native.run();
        auto run = DbtRuntime::runTranslated(opt);
        bool ok = run.halted && run.output == native.output();

        table.addRow({w.specName,
                      TextTable::num(opt.optStats.total()),
                      TextTable::num(opt.optStats.deadMovs),
                      TextTable::num(opt.optStats.constOperands +
                                     opt.optStats.memFolds),
                      TextTable::num(uint64_t{code_before}),
                      TextTable::num(uint64_t{code_after}),
                      ok ? "match" : "DIVERGED"});
        if (code_before > 0)
            per_kb.push_back(1000.0 *
                             static_cast<double>(opt.optStats.total()) /
                             static_cast<double>(code_before));
        if (!ok)
            return 1;
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\ngeomean transforms per KB of replicated code: %.1f\n",
                geomean(per_kb));
    return 0;
}
