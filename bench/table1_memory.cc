/**
 * @file
 * Table 1 — "Size Savings with TEA".
 *
 * For every workload and each of the paper's three selection strategies
 * (MRET, CTT, TT), record traces with the DBT and report the bytes
 * needed to represent them by code replication (DBT) versus as a TEA.
 * The paper reports KB and a ~77-79% geomean saving for all three
 * strategies; the invariant under test is the savings band, not the
 * absolute sizes.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::bench;

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);
    const std::vector<std::string> selectors = {"mret", "ctt", "tt"};

    TextTable table({"benchmark", "MRET DBT", "MRET TEA", "MRET sav",
                     "CTT DBT", "CTT TEA", "CTT sav", "TT DBT", "TT TEA",
                     "TT sav"});
    std::vector<std::vector<double>> savings(selectors.size());

    std::printf("Table 1: trace representation size, DBT (replication) "
                "vs TEA [bytes]\n");
    for (const std::string &name : Workloads::names()) {
        Workload w = Workloads::build(name, size);
        std::vector<std::string> row = {w.specName + " (" + w.name + ")"};
        for (size_t s = 0; s < selectors.size(); ++s) {
            MemoryCell cell = memoryExperiment(w, selectors[s]);
            row.push_back(TextTable::num(
                static_cast<uint64_t>(cell.dbtBytes)));
            row.push_back(TextTable::num(
                static_cast<uint64_t>(cell.teaBytes)));
            row.push_back(TextTable::pct(cell.savings()));
            savings[s].push_back(cell.savings());
        }
        table.addRow(row);
    }
    table.addSeparator();
    table.addRow({"GeoMean", "", "", TextTable::pct(geomean(savings[0])),
                  "", "", TextTable::pct(geomean(savings[1])), "", "",
                  TextTable::pct(geomean(savings[2]))});
    std::fputs(table.render().c_str(), stdout);

    std::printf("\npaper: geomean savings MRET 77%%, CTT 79%%, TT 79%% "
                "(all rows 73-86%%)\n");
    return 0;
}
