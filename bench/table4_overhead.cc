/**
 * @file
 * Table 4 — "TEA Overhead for Various Configurations".
 *
 * Six runs per workload, all normalized to native execution:
 *
 *   Native            the interpreter with no instrumentation (1.00)
 *   Without Pintool   edge dispatch with an empty tool
 *   Empty             TEA loaded with no traces (B+ tree, no caches)
 *   No Global/Local   linear trace list + per-state local caches
 *   Global/No Local   B+ tree, no local caches
 *   Global/Local      both accelerators (the paper's configuration)
 *
 * Plus one extra column past the paper: Compiled, the Global/Local
 * lookup function on the frozen CSR + flat-hash kernel. It answers the
 * same queries bit-identically, so normalizing it against the same
 * native baseline is apples-to-apples with the paper's columns.
 *
 * Paper invariants: Global/Local is the fastest TEA configuration
 * (geomean 13.53x vs 18.52x / 20.33x / 25.27x); the local cache matters
 * more than the B+ tree; and dropping the global index is pathological
 * on the many-trace workloads (gcc 278x, vortex 224x).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::bench;

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);

    TextTable table({"benchmark", "Native", "Without tool", "Empty",
                     "NoGlob/Loc", "Glob/NoLoc", "Glob/Loc",
                     "Compiled"});
    std::vector<double> no_tool, empty, ngl, gnl, gl, comp;

    std::printf("Table 4: normalized slowdown of each configuration "
                "(selector: mret)\n");
    for (const std::string &name : Workloads::names()) {
        Workload w = Workloads::build(name, size);
        OverheadRow row = overheadExperiment(w, "mret");
        double native = row.nativeMs > 0 ? row.nativeMs : 1e-9;
        auto norm = [&](double ms) { return ms / native; };

        table.addRow({w.specName, "1.00",
                      TextTable::num(norm(row.withoutToolMs)),
                      TextTable::num(norm(row.emptyMs)),
                      TextTable::num(norm(row.noGlobalLocalMs)),
                      TextTable::num(norm(row.globalNoLocalMs)),
                      TextTable::num(norm(row.globalLocalMs)),
                      TextTable::num(norm(row.compiledMs))});
        no_tool.push_back(norm(row.withoutToolMs));
        empty.push_back(norm(row.emptyMs));
        ngl.push_back(norm(row.noGlobalLocalMs));
        gnl.push_back(norm(row.globalNoLocalMs));
        gl.push_back(norm(row.globalLocalMs));
        comp.push_back(norm(row.compiledMs));
    }
    table.addSeparator();
    table.addRow({"GeoMean", "1.00", TextTable::num(geomean(no_tool)),
                  TextTable::num(geomean(empty)),
                  TextTable::num(geomean(ngl)),
                  TextTable::num(geomean(gnl)),
                  TextTable::num(geomean(gl)),
                  TextTable::num(geomean(comp))});
    std::fputs(table.render().c_str(), stdout);

    std::printf("\npaper: geomeans 1.50 / 25.27 / 18.52 / 20.33 / 13.53;"
                " gcc and vortex blow up without the global index\n");
    return 0;
}
