/**
 * @file
 * Networked replay throughput: loopback streams/sec at 1, 2, 4, ...
 * concurrent clients against a TeaServer, on both connection engines.
 *
 * Records one `syn.gzip` trace log, uploads the automaton once, then
 * replays a fixed batch of streams through N client threads (server
 * sized to N workers). Every configuration is run twice — once on the
 * blocking thread-per-connection core and once on the epoll event-loop
 * core — and at every scale the client-side results are checked
 * bit-identical to a local ReplayService::runBatch over the same jobs:
 * per-stream stats, per-stream profiles, and the merged per-TBB
 * profile — the wire adds framing, never drift.
 *
 * The `held` column is the event-loop core's headline: that many extra
 * connections are opened and parked idle on the server for the whole
 * batch. On the loop core an idle connection costs a few hundred bytes
 * and no thread, so the batch runs at full speed with 512+ spectators;
 * the blocking core would park one pool worker per held connection and
 * deadlock the batch, so held rows are loop-only by construction.
 *
 * Note the speedup column measures the *host*: on a single-core
 * container every client count necessarily lands near 1.0x, and the
 * delta between net and local streams/sec is the protocol cost.
 *
 * `--min-loop-ratio X` turns the core comparison into a CI gate: the
 * event-loop core's streams/sec at 8 clients must be at least X times
 * the blocking core's, so the readiness loop can never quietly become
 * slower than the engine it replaces.
 *
 * The wire KB/req column counts both directions of every client's
 * socket, divided by the number of replay requests. A final section
 * replays the identical stream from a v1-encoded and a v2-encoded log
 * and reports the wire bytes each request costs; `--min-wire-compression
 * X` turns the v1/v2 ratio into a CI gate, failing the run when the v2
 * upload stops being at least X times smaller on the wire.
 *
 * The scrape row re-runs the 8-client event-loop configuration with a
 * concurrent HTTP scraper hammering GET /metrics on the same listener
 * at 1 Hz — the Prometheus-shaped workload the exposition endpoint
 * invites. `--min-scrape-ratio X` gates scraped replay throughput at X
 * times the unscraped 8-client run (CI pins it at 0.95), so a scrape
 * can never quietly tax the replay path.
 *
 * Usage: net_throughput [--size test|train|ref] [--streams N]
 *                       [--held-open N] [--min-loop-ratio X]
 *                       [--min-wire-compression X]
 *                       [--min-scrape-ratio X]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "bench/harness.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "net/socket.hh"
#include "svc/replay_service.hh"
#include "svc/tracelog.hh"
#include "tea/builder.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "vm/machine.hh"

using namespace tea;
using namespace tea::bench;

namespace {

/** Record a workload's transition stream into an in-memory log. */
std::vector<uint8_t>
recordLog(const Program &prog,
          uint32_t version = TraceLogFormat::kVersion)
{
    std::vector<uint8_t> bytes;
    TraceLogOptions opts;
    opts.version = version;
    TraceLogWriter writer(&bytes, opts);
    Machine m(prog);
    BlockTracker tracker(
        prog, [&](const BlockTransition &tr) { writer.append(tr); },
        /*rep_per_iteration=*/false, /*collect_blocks=*/false);
    m.runHooked([&](const EdgeEvent &ev) { tracker.onEdge(ev); }, false);
    writer.finish();
    return bytes;
}

const char *
coreName(ServerCore core)
{
    return core == ServerCore::Blocking ? "blocking" : "event-loop";
}

/** One blocking GET against the wire listener; returns the response. */
std::string
httpGet(const std::string &endpoint, const std::string &target)
{
    Socket s = Socket::connectTo(Endpoint::parse(endpoint));
    std::string req = "GET " + target + " HTTP/1.1\r\n"
                      "Host: tead\r\nConnection: close\r\n\r\n";
    s.sendAll(req.data(), req.size());
    std::string resp;
    char buf[4096];
    for (;;) {
        size_t n = s.recvSome(buf, sizeof(buf));
        if (n == 0)
            break;
        resp.append(buf, n);
    }
    return resp;
}

} // namespace

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);
    size_t streams = 32;
    size_t held_open = 512;
    double min_wire_compression = 0.0;
    double min_loop_ratio = 0.0;
    double min_scrape_ratio = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--streams") && i + 1 < argc)
            streams = static_cast<size_t>(std::atoi(argv[i + 1]));
        if (!std::strcmp(argv[i], "--held-open") && i + 1 < argc)
            held_open = static_cast<size_t>(std::atoi(argv[i + 1]));
        if (!std::strcmp(argv[i], "--min-loop-ratio") && i + 1 < argc)
            min_loop_ratio = std::atof(argv[i + 1]);
        if (!std::strcmp(argv[i], "--min-wire-compression") &&
            i + 1 < argc)
            min_wire_compression = std::atof(argv[i + 1]);
        if (!std::strcmp(argv[i], "--min-scrape-ratio") && i + 1 < argc)
            min_scrape_ratio = std::atof(argv[i + 1]);
    }
    if (streams == 0)
        streams = 1;

    // One workload so the merged per-TBB profile is populated (the
    // batch merge is only defined when every stream shares a TEA).
    Workload w = Workloads::build("syn.gzip", size);
    auto tea = std::make_shared<const Tea>(
        buildTea(recordWithDbt(w, "mret")));
    std::vector<uint8_t> log = recordLog(w.program);

    // Local reference: the same batch through ReplayService.
    std::vector<ReplayJob> jobs(streams, ReplayJob{tea, "", &log});
    ReplayService local(1);
    BatchResult reference = local.runBatch(jobs);
    if (reference.failures != 0) {
        std::fprintf(stderr, "local reference batch failed\n");
        return 1;
    }
    Stopwatch localTimer;
    local.runBatch(jobs);
    double localMs = localTimer.elapsedMillis();

    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::printf("net_throughput: %zu streams of %.1f MiB over loopback "
                "TCP, host has %u hardware threads "
                "(local 1-worker batch: %.1f ms)\n",
                streams, static_cast<double>(log.size()) / (1 << 20),
                hw, localMs);

    TextTable table({"core", "clients", "held", "batch ms", "streams/s",
                     "speedup", "wire KB/req"});
    // Speedup baselines and the 8-client gate inputs, per core.
    double base_sps[2] = {0.0, 0.0};
    std::map<unsigned, double> sps_by_clients[2];

    // One measured configuration: `clients` threads splitting the
    // batch round-robin against a `core` server, with `heldOpen` extra
    // idle connections parked on it and (when `scrape` is set) a
    // concurrent 1 Hz HTTP /metrics scraper on the same listener for
    // the duration. Returns streams/sec, or a negative value after
    // printing the failure.
    auto runScale = [&](ServerCore core, unsigned clients,
                        size_t heldOpen, bool scrape) -> double {
        ServerConfig cfg;
        cfg.endpoint = "tcp:127.0.0.1:0";
        cfg.workers = clients;
        cfg.core = core;
        TeaServer server(cfg);
        server.start();
        std::string ep = server.endpoint();
        {
            TeaClient admin = TeaClient::connect(ep);
            admin.putAutomaton("gzip", *tea);
        }

        // The idle pile goes up before the clock starts; pacing keeps
        // the connect burst inside the listener backlog.
        std::vector<Socket> held;
        held.reserve(heldOpen);
        for (size_t i = 0; i < heldOpen; ++i) {
            held.push_back(Socket::connectTo(Endpoint::parse(ep)));
            if ((i & 0xff) == 0xff)
                while (server.activeSessions() + 256 < held.size())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
        }

        // The scraper starts before the clock and runs for the whole
        // batch: one GET /metrics immediately and then once per
        // second, so even a sub-second batch is scraped at least once.
        std::atomic<bool> scrapeStop{false};
        std::atomic<uint64_t> scrapes{0};
        std::atomic<int> scrapeFailed{0};
        std::thread scraper;
        if (scrape)
            scraper = std::thread([&] {
                try {
                    do {
                        std::string resp = httpGet(ep, "/metrics");
                        if (resp.find("HTTP/1.1 200") ==
                                std::string::npos ||
                            resp.find("# EOF") == std::string::npos) {
                            scrapeFailed.store(1);
                            return;
                        }
                        scrapes.fetch_add(1);
                        for (int tick = 0;
                             tick < 100 && !scrapeStop.load(); ++tick)
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(10));
                    } while (!scrapeStop.load());
                } catch (const FatalError &e) {
                    std::fprintf(stderr, "scraper: %s\n", e.what());
                    scrapeFailed.store(1);
                }
            });

        // Streams round-robined over the clients; every client keeps
        // its connection for its whole share of the batch.
        std::vector<StreamResult> results(streams);
        std::vector<int> failed(clients, 0);
        std::vector<uint64_t> wire(clients, 0);
        Stopwatch timer;
        std::vector<std::thread> threads;
        for (unsigned c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                try {
                    TeaClient client = TeaClient::connect(ep);
                    RemoteReplayOptions opt;
                    opt.wantProfile = true;
                    for (size_t s = c; s < streams; s += clients) {
                        RemoteReplayResult r =
                            client.replay("gzip", log, opt);
                        results[s].stats = r.stats;
                        results[s].execCounts = std::move(r.execCounts);
                    }
                    wire[c] =
                        client.bytesSent() + client.bytesReceived();
                } catch (const FatalError &e) {
                    std::fprintf(stderr, "client %u: %s\n", c, e.what());
                    failed[c] = 1;
                }
            });
        }
        for (auto &t : threads)
            t.join();
        double ms = timer.elapsedMillis();
        if (scraper.joinable()) {
            scrapeStop.store(true);
            scraper.join();
            if (scrapeFailed.load() != 0 || scrapes.load() == 0) {
                std::fprintf(stderr,
                             "scraper failed or never completed a "
                             "scrape (%llu ok)\n",
                             static_cast<unsigned long long>(
                                 scrapes.load()));
                return -1.0;
            }
        }
        for (unsigned c = 0; c < clients; ++c)
            if (failed[c])
                return -1.0;
        held.clear();
        server.stop();

        // Bit-identical to the local batch: per-stream and merged.
        std::vector<uint64_t> merged(tea->numStates(), 0);
        for (size_t s = 0; s < streams; ++s) {
            if (!(results[s].stats == reference.streams[s].stats) ||
                results[s].execCounts !=
                    reference.streams[s].execCounts) {
                std::fprintf(stderr,
                             "stream %zu diverges from the local batch "
                             "(%s core, %u clients)\n",
                             s, coreName(core), clients);
                return -1.0;
            }
            for (size_t i = 0; i < results[s].execCounts.size(); ++i)
                merged[i] += results[s].execCounts[i];
        }
        if (merged != reference.mergedExecCounts) {
            std::fprintf(stderr,
                         "merged profile diverges (%s core, %u "
                         "clients)\n",
                         coreName(core), clients);
            return -1.0;
        }

        double sps = ms > 0 ? 1e3 * static_cast<double>(streams) / ms : 0;
        int ci = core == ServerCore::Blocking ? 0 : 1;
        if (clients == 1 && heldOpen == 0 && !scrape)
            base_sps[ci] = sps;
        uint64_t wire_total = 0;
        for (uint64_t b : wire)
            wire_total += b;
        table.addRow({scrape ? "loop+scrape" : coreName(core),
                      std::to_string(clients),
                      std::to_string(heldOpen), TextTable::num(ms, 1),
                      TextTable::num(sps, 1),
                      TextTable::num(
                          base_sps[ci] > 0 ? sps / base_sps[ci] : 0.0,
                          2),
                      TextTable::num(static_cast<double>(wire_total) /
                                         static_cast<double>(streams) /
                                         1024.0,
                                     1)});
        return sps;
    };

    // The scaling sweep runs to at least 8 clients on both cores so
    // the --min-loop-ratio gate always has its comparison point.
    for (int ci = 0; ci < 2; ++ci) {
        ServerCore core =
            ci == 0 ? ServerCore::Blocking : ServerCore::EventLoop;
        for (unsigned clients = 1; clients <= std::max(8u, hw);
             clients *= 2) {
            double sps = runScale(core, clients, 0, false);
            if (sps < 0)
                return 1;
            sps_by_clients[ci][clients] = sps;
        }
    }

    // The held-open pile: loop core only — the blocking core would
    // park one worker per idle connection and starve the batch.
    if (held_open > 0 &&
        runScale(ServerCore::EventLoop, 8, held_open, false) < 0)
        return 1;

    // The scraped row: same 8-client event-loop batch with the 1 Hz
    // /metrics scraper sharing the listener (loop core only — the
    // blocking core has no HTTP path).
    double scraped_sps = runScale(ServerCore::EventLoop, 8, 0, true);
    if (scraped_sps < 0)
        return 1;

    std::fputs(table.render().c_str(), stdout);
    std::printf("(remote results bit-identical to the local batch in "
                "every configuration; held = idle connections parked "
                "on the server for the whole batch)\n");

    double ratio8 = sps_by_clients[0][8] > 0
                        ? sps_by_clients[1][8] / sps_by_clients[0][8]
                        : 0.0;
    std::printf("event-loop vs blocking at 8 clients: %.1f vs %.1f "
                "streams/s (%.2fx)\n",
                sps_by_clients[1][8], sps_by_clients[0][8], ratio8);
    if (min_loop_ratio > 0 && ratio8 < min_loop_ratio) {
        std::printf("FAIL: event-loop core only %.2fx of the blocking "
                    "core at 8 clients, gate requires %.2fx\n",
                    ratio8, min_loop_ratio);
        return 1;
    }
    if (min_loop_ratio > 0)
        std::printf("PASS: event-loop/blocking ratio %.2fx >= %.2fx\n",
                    ratio8, min_loop_ratio);

    double scrape_ratio = sps_by_clients[1][8] > 0
                              ? scraped_sps / sps_by_clients[1][8]
                              : 0.0;
    std::printf("scraped vs unscraped at 8 clients: %.1f vs %.1f "
                "streams/s (%.2fx under a 1 Hz /metrics scraper)\n",
                scraped_sps, sps_by_clients[1][8], scrape_ratio);
    if (min_scrape_ratio > 0 && scrape_ratio < min_scrape_ratio) {
        std::printf("FAIL: scraped throughput only %.2fx of unscraped, "
                    "gate requires %.2fx\n",
                    scrape_ratio, min_scrape_ratio);
        return 1;
    }
    if (min_scrape_ratio > 0)
        std::printf("PASS: scrape ratio %.2fx >= %.2fx\n", scrape_ratio,
                    min_scrape_ratio);

    // Wire cost of the log encoding: the same stream uploaded from a
    // v1 and a v2 container, one request each over a fresh connection,
    // counting both directions so the (identical) replies are charged
    // equally to both.
    std::vector<uint8_t> log_v1 =
        recordLog(w.program, TraceLogFormat::kVersionV1);
    uint64_t wire_req[2] = {0, 0};
    ReplayStats wire_stats[2];
    {
        ServerConfig cfg;
        cfg.endpoint = "tcp:127.0.0.1:0";
        cfg.workers = 1;
        TeaServer server(cfg);
        server.start();
        std::string ep = server.endpoint();
        {
            TeaClient admin = TeaClient::connect(ep);
            admin.putAutomaton("gzip", *tea);
        }
        const std::vector<uint8_t> *logs[2] = {&log_v1, &log};
        for (int v = 0; v < 2; ++v) {
            TeaClient client = TeaClient::connect(ep);
            RemoteReplayOptions opt;
            opt.wantProfile = true;
            RemoteReplayResult r = client.replay("gzip", *logs[v], opt);
            wire_stats[v] = r.stats;
            wire_req[v] = client.bytesSent() + client.bytesReceived();
        }
        server.stop();
    }
    if (!(wire_stats[0] == wire_stats[1])) {
        std::fprintf(stderr,
                     "v1 and v2 uploads disagree on replay stats\n");
        return 1;
    }
    double wire_ratio =
        wire_req[1] > 0
            ? static_cast<double>(wire_req[0]) /
                  static_cast<double>(wire_req[1])
            : 0.0;
    std::printf("wire bytes/request: v1 %llu, v2 %llu (v2 %.2fx "
                "smaller on the wire, same replay result)\n",
                static_cast<unsigned long long>(wire_req[0]),
                static_cast<unsigned long long>(wire_req[1]),
                wire_ratio);
    if (min_wire_compression > 0 && wire_ratio < min_wire_compression) {
        std::printf("FAIL: v2 wire bytes only %.2fx below v1, "
                    "gate requires %.2fx\n",
                    wire_ratio, min_wire_compression);
        return 1;
    }
    if (min_wire_compression > 0)
        std::printf("PASS: wire compression %.2fx >= %.2fx\n",
                    wire_ratio, min_wire_compression);
    return 0;
}
