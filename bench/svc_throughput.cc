/**
 * @file
 * Replay-service throughput: streams/sec of batch replay at 1, 2, 4,
 * ... hardware_concurrency workers.
 *
 * Records one trace log per workload in a small `syn.gzip`-class set,
 * replicates the logs into a batch of streams, and replays the batch at
 * each worker count. Reports streams/sec, speedup over one worker, and
 * verifies at every scale that the merged profile is bit-identical to
 * the single-worker merge (the svc determinism contract) AND to a
 * reference-kernel (non-compiled) batch at the same worker count — the
 * compiled CSR kernel must not change a single counter.
 *
 * Also times the two replay kernels single-threaded over the recorded
 * logs and reports ns/transition; --min-speedup turns that comparison
 * into a CI gate, and --json dumps everything machine-readably.
 *
 * The trace-log codec section encodes every recorded stream in all
 * three containers (v1 raw, v2 delta, v2 elided), verifies each one
 * decodes back bit-identically, and reports bytes/record plus decode
 * ns/transition per encoding. --min-compression X gates the v1/v2
 * size ratio (CI pins it at 2); --max-decode-ratio Y gates v2 decode
 * time against v1 (CI pins it at 1.0 — the batch kernel must not be
 * slower than the raw parse).
 *
 * The observability guard: a third single-threaded timing runs the
 * compiled kernel under the exact instrumentation runReplayJob()
 * applies (kFeedBatch-sliced feeds, clock stamps at slice boundaries,
 * per-batch counter bumps, and the per-automaton labeled series the
 * session resolves once per stream) and reports the ns/transition
 * delta against the bare kernel. --max-overhead X fails the run when
 * metrics add more than X percent — CI pins it at 3.
 *
 * Note the speedup column measures the *host*: on a single-core
 * container every worker count necessarily lands near 1.0x.
 *
 * Usage: svc_throughput [--size test|train|ref] [--streams N]
 *                       [--json FILE] [--min-speedup X]
 *                       [--max-overhead X] [--min-compression X]
 *                       [--max-decode-ratio X]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench/harness.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "svc/replay_service.hh"
#include "svc/tracelog.hh"
#include "tea/builder.hh"
#include "tea/compiled.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "vm/machine.hh"

using namespace tea;
using namespace tea::bench;

namespace {

/** Record a workload's transition stream into an in-memory log. */
std::vector<uint8_t>
recordLog(const Program &prog)
{
    std::vector<uint8_t> bytes;
    TraceLogWriter writer(&bytes);
    Machine m(prog);
    BlockTracker tracker(
        prog, [&](const BlockTransition &tr) { writer.append(tr); },
        /*rep_per_iteration=*/false, /*collect_blocks=*/false);
    m.runHooked([&](const EdgeEvent &ev) { tracker.onEdge(ev); }, false);
    writer.finish();
    return bytes;
}

/** One pre-decoded stream paired with its automaton. */
struct DecodedStream
{
    std::shared_ptr<const Tea> tea;
    std::shared_ptr<const CompiledTea> compiled;
    std::vector<BlockTransition> transitions;
};

/**
 * Single-threaded ns/transition of one replay kernel over every
 * pre-decoded stream, minimum of `reps` identical runs. The logs are
 * decoded up front so the measurement isolates the transition function
 * — the quantity the two kernels actually differ in — rather than the
 * trace-log parser both share.
 */
double
kernelNsPerTransition(const std::vector<DecodedStream> &streams,
                      LookupConfig cfg, int reps = 5)
{
    double best = 1e300;
    uint64_t transitions = 0;
    for (int r = 0; r < reps; ++r) {
        Stopwatch timer;
        uint64_t total = 0;
        for (const DecodedStream &s : streams) {
            TeaReplayer replayer(*s.tea, cfg,
                                 cfg.useCompiled ? s.compiled : nullptr);
            replayer.feedAll(s.transitions.data(),
                             s.transitions.data() + s.transitions.size());
            total += replayer.stats().transitions;
        }
        double ms = timer.elapsedMillis();
        if (ms < best) {
            best = ms;
            transitions = total;
        }
    }
    return transitions ? best * 1e6 / static_cast<double>(transitions)
                       : 0.0;
}

/**
 * The same measurement under the service's instrumentation: the
 * transitions go through feedAll() in kFeedBatch-sized slices with a
 * monotonic clock stamp on each side of every slice and the per-batch
 * counters bumped per stream — exactly the shape runReplayJob() and
 * ReplayService::setMetrics() impose, plus the per-automaton labeled
 * attribution the network session adds (one at() intern per stream,
 * one labeled counter add and one labeled histogram observe per
 * stream). The delta against kernelNsPerTransition() is therefore the
 * whole price the replay hot path pays for observability.
 */
double
instrumentedNsPerTransition(const std::vector<DecodedStream> &streams,
                            LookupConfig cfg, int reps = 5)
{
    constexpr size_t kFeedBatch = 1024; // mirrors svc/replay_service.cc
    obs::MetricsRegistry reg;
    obs::Counter &batches = reg.counter("svc.batches");
    obs::Counter &fed = reg.counter("svc.transitions");
    obs::LabeledCounter &transitionsBy =
        reg.labeledCounter("svc.transitions_by_automaton");
    obs::LabeledHistogram &replayMsBy =
        reg.labeledHistogram("svc.replay_ms_by_automaton");
    double best = 1e300;
    uint64_t transitions = 0;
    for (int r = 0; r < reps; ++r) {
        Stopwatch timer;
        uint64_t total = 0;
        size_t streamIdx = 0;
        for (const DecodedStream &s : streams) {
            TeaReplayer replayer(*s.tea, cfg,
                                 cfg.useCompiled ? s.compiled : nullptr);
            // The session resolves labeled handles once per stream
            // (net/session.cc ReplayBegin); the intern mutex is paid
            // here, never per transition.
            std::string name =
                "wl-" + std::to_string(streamIdx++ % 2);
            obs::Counter &labTransitions = transitionsBy.at(name);
            obs::Histogram &labReplayMs = replayMsBy.at(name);
            const BlockTransition *p = s.transitions.data();
            const BlockTransition *end = p + s.transitions.size();
            uint64_t replayNs = 0, nbatches = 0;
            while (p < end) {
                size_t n = static_cast<size_t>(end - p);
                const BlockTransition *stop =
                    p + (n < kFeedBatch ? n : kFeedBatch);
                uint64_t t0 = obs::monotonicNanos();
                replayer.feedAll(p, stop);
                replayNs += obs::monotonicNanos() - t0;
                ++nbatches;
                p = stop;
            }
            batches.inc(nbatches);
            fed.inc(replayer.stats().transitions);
            labTransitions.inc(replayer.stats().transitions);
            labReplayMs.observe(static_cast<double>(replayNs) / 1e6);
            total += replayer.stats().transitions;
        }
        double ms = timer.elapsedMillis();
        if (ms < best) {
            best = ms;
            transitions = total;
        }
    }
    return transitions ? best * 1e6 / static_cast<double>(transitions)
                       : 0.0;
}

/**
 * Decode ns/transition of one encoded container through
 * TraceLogReader (headers, CRCs, and the batch kernel included),
 * minimum of `reps` full drains.
 */
double
decodeNsPerTransition(const std::vector<uint8_t> &bytes,
                      const CompiledTea *automaton, int reps = 5)
{
    double best = 1e300;
    uint64_t records = 0;
    for (int r = 0; r < reps; ++r) {
        Stopwatch timer;
        TraceLogReader reader(bytes.data(), bytes.size(),
                              TraceLogReader::Mode::Strict, automaton);
        BlockTransition tr;
        uint64_t n = 0;
        while (reader.next(tr))
            ++n;
        double ms = timer.elapsedMillis();
        if (ms < best) {
            best = ms;
            records = n;
        }
    }
    return records ? best * 1e6 / static_cast<double>(records) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);
    size_t streams = 32;
    std::string json_path;
    double min_speedup = 0.0;
    double max_overhead = 0.0;
    double min_compression = 0.0;
    double max_decode_ratio = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--streams") && i + 1 < argc)
            streams = static_cast<size_t>(std::atoi(argv[i + 1]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
            min_speedup = std::atof(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--max-overhead") && i + 1 < argc)
            max_overhead = std::atof(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--min-compression") &&
                 i + 1 < argc)
            min_compression = std::atof(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--max-decode-ratio") &&
                 i + 1 < argc)
            max_decode_ratio = std::atof(argv[i + 1]);
    }

    // The syn.gzip-class set: data-dependent compression-loop CFGs.
    const std::vector<std::string> names{"syn.gzip", "syn.bzip2"};
    std::vector<std::shared_ptr<const Tea>> teas;
    std::vector<std::vector<uint8_t>> logs;
    uint64_t log_bytes = 0, log_records = 0;
    for (const std::string &name : names) {
        Workload w = Workloads::build(name, size);
        teas.push_back(std::make_shared<const Tea>(
            buildTea(recordWithDbt(w, "mret"))));
        logs.push_back(recordLog(w.program));
        log_bytes += logs.back().size();
        {
            TraceLogReader probe(logs.back());
            BlockTransition tr;
            while (probe.next(tr))
                ;
            log_records += probe.recordsRead();
        }
    }

    // One batch = `streams` jobs round-robined over the workload logs.
    // Jobs alternate automata, so the merge check below uses per-stream
    // profiles (cross-automaton merged profiles are deliberately empty).
    // The compiled snapshot is shared per automaton, as the registry
    // would share it — kernel timings measure replay, not compilation.
    std::vector<std::shared_ptr<const CompiledTea>> compiled;
    for (const auto &tea : teas)
        compiled.push_back(CompiledTea::compile(tea));
    std::vector<ReplayJob> jobs;
    for (size_t i = 0; i < streams; ++i) {
        size_t k = i % names.size();
        jobs.push_back(ReplayJob{teas[k], "", &logs[k], compiled[k]});
    }
    // Pre-decoded streams for the single-threaded kernel timing.
    std::vector<DecodedStream> decoded;
    for (size_t k = 0; k < names.size(); ++k) {
        DecodedStream s{teas[k], compiled[k], {}};
        TraceLogReader reader(logs[k]);
        BlockTransition tr;
        while (reader.next(tr))
            s.transitions.push_back(tr);
        decoded.push_back(std::move(s));
    }

    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::printf("svc_throughput: %zu streams (%llu records, %.1f MiB of "
                "logs), host has %u hardware threads\n",
                streams, static_cast<unsigned long long>(
                             log_records * (streams / names.size())),
                static_cast<double>(log_bytes) / (1 << 20), hw);

    // Kernel-vs-kernel: same logs, same stats, different inner loop.
    LookupConfig compiled_cfg; // defaults: compiled CSR + flat hash
    LookupConfig reference_cfg;
    reference_cfg.useCompiled = false;
    double compiled_ns = kernelNsPerTransition(decoded, compiled_cfg);
    double reference_ns = kernelNsPerTransition(decoded, reference_cfg);
    double kernel_speedup =
        compiled_ns > 0 ? reference_ns / compiled_ns : 0.0;
    std::printf("kernel ns/transition: compiled %.2f, reference %.2f "
                "(speedup %.2fx)\n",
                compiled_ns, reference_ns, kernel_speedup);

    // Observability guard: the compiled kernel with the service's
    // metrics/timing instrumentation applied, against the bare kernel.
    double instrumented_ns =
        instrumentedNsPerTransition(decoded, compiled_cfg);
    double overhead_pct =
        compiled_ns > 0 ? (instrumented_ns / compiled_ns - 1.0) * 100.0
                        : 0.0;
    std::printf("instrumented ns/transition: %.2f (metrics overhead "
                "%+.2f%%)\n",
                instrumented_ns, overhead_pct);

    // Trace-log codec: the same streams in all three containers, each
    // verified to decode back bit-identically before it is timed.
    std::vector<std::vector<uint8_t>> logs_v1(names.size());
    std::vector<std::vector<uint8_t>> logs_elided(names.size());
    for (size_t k = 0; k < names.size(); ++k) {
        TraceLogOptions v1opt;
        v1opt.version = TraceLogFormat::kVersionV1;
        TraceLogWriter w1(&logs_v1[k], v1opt);
        TraceLogOptions eopt;
        eopt.elideWith = compiled[k];
        TraceLogWriter we(&logs_elided[k], eopt);
        for (const BlockTransition &tr : decoded[k].transitions) {
            w1.append(tr);
            we.append(tr);
        }
        w1.finish();
        we.finish();
    }
    uint64_t total_records = 0;
    for (const DecodedStream &s : decoded)
        total_records += s.transitions.size();
    const char *enc_name[3] = {"v1 raw", "v2 delta", "v2 elided"};
    uint64_t enc_bytes[3] = {0, 0, 0};
    double enc_ns[3] = {0, 0, 0};
    for (int enc = 0; enc < 3; ++enc) {
        double weighted_ns = 0;
        for (size_t k = 0; k < names.size(); ++k) {
            const std::vector<uint8_t> &b = enc == 0   ? logs_v1[k]
                                            : enc == 1 ? logs[k]
                                                       : logs_elided[k];
            const CompiledTea *aut =
                enc == 2 ? compiled[k].get() : nullptr;
            std::vector<BlockTransition> back = readTraceLog(b, aut);
            const std::vector<BlockTransition> &want =
                decoded[k].transitions;
            bool same = back.size() == want.size();
            for (size_t i = 0; same && i < back.size(); ++i)
                same = back[i].from == want[i].from &&
                       back[i].toStart == want[i].toStart &&
                       back[i].kind == want[i].kind;
            if (!same) {
                std::fprintf(stderr,
                             "%s container of %s does not decode back "
                             "to the recorded stream\n",
                             enc_name[enc], names[k].c_str());
                return 1;
            }
            enc_bytes[enc] += b.size();
            weighted_ns +=
                decodeNsPerTransition(b, aut) *
                static_cast<double>(want.size());
        }
        enc_ns[enc] =
            total_records
                ? weighted_ns / static_cast<double>(total_records)
                : 0.0;
    }
    double compression_v2 =
        enc_bytes[1] ? static_cast<double>(enc_bytes[0]) /
                           static_cast<double>(enc_bytes[1])
                     : 0.0;
    double compression_elided =
        enc_bytes[2] ? static_cast<double>(enc_bytes[0]) /
                           static_cast<double>(enc_bytes[2])
                     : 0.0;
    double decode_ratio = enc_ns[0] > 0 ? enc_ns[1] / enc_ns[0] : 0.0;
    TextTable codec(
        {"encoding", "bytes", "B/record", "vs v1", "decode ns/rec"});
    for (int enc = 0; enc < 3; ++enc)
        codec.addRow(
            {enc_name[enc], std::to_string(enc_bytes[enc]),
             TextTable::num(static_cast<double>(enc_bytes[enc]) /
                                static_cast<double>(total_records),
                            2),
             TextTable::num(static_cast<double>(enc_bytes[0]) /
                                static_cast<double>(enc_bytes[enc]),
                            2),
             TextTable::num(enc_ns[enc], 2)});
    std::fputs(codec.render().c_str(), stdout);
    std::printf("log codec: v2 %.2fx smaller than v1 (elided %.2fx), "
                "v2 decode at %.2fx the v1 time; all three decode "
                "bit-identically\n",
                compression_v2, compression_elided, decode_ratio);

    TextTable table({"workers", "batch ms", "streams/s", "speedup"});
    double base_sps = 0.0;
    BatchResult reference;
    std::vector<std::pair<unsigned, double>> worker_sps;
    for (unsigned workers = 1; workers <= std::max(4u, hw);
         workers *= 2) {
        ReplayService service(workers, compiled_cfg);
        service.runBatch(jobs); // warm-up: page in logs, fault stacks
        Stopwatch timer;
        BatchResult batch = service.runBatch(jobs);
        double ms = timer.elapsedMillis();
        if (batch.failures != 0) {
            std::fprintf(stderr, "%zu streams failed\n", batch.failures);
            return 1;
        }
        double sps = ms > 0 ? 1e3 * static_cast<double>(streams) / ms : 0;
        if (workers == 1) {
            base_sps = sps;
            reference = batch;
        } else {
            // Determinism across worker counts, checked at every scale.
            if (batch.total != reference.total) {
                std::fprintf(stderr,
                             "summed stats diverge at %u workers\n",
                             workers);
                return 1;
            }
            for (size_t i = 0; i < batch.streams.size(); ++i) {
                if (batch.streams[i].execCounts !=
                    reference.streams[i].execCounts) {
                    std::fprintf(stderr,
                                 "stream %zu profile diverges at %u "
                                 "workers\n", i, workers);
                    return 1;
                }
            }
        }
        // Kernel bit-identity, re-checked at every worker count: the
        // same batch on the reference kernel must match counter for
        // counter — stats, per-stream profiles, everything.
        {
            ReplayService ref_service(workers, reference_cfg);
            BatchResult ref_batch = ref_service.runBatch(jobs);
            if (ref_batch.failures != 0 ||
                ref_batch.total != batch.total) {
                std::fprintf(stderr,
                             "compiled/reference stats diverge at %u "
                             "workers\n", workers);
                return 1;
            }
            for (size_t i = 0; i < batch.streams.size(); ++i) {
                if (ref_batch.streams[i].execCounts !=
                    batch.streams[i].execCounts) {
                    std::fprintf(stderr,
                                 "compiled/reference profile of stream "
                                 "%zu diverges at %u workers\n", i,
                                 workers);
                    return 1;
                }
            }
        }
        worker_sps.emplace_back(workers, sps);
        table.addRow({std::to_string(workers), TextTable::num(ms, 1),
                      TextTable::num(sps, 1),
                      TextTable::num(base_sps > 0 ? sps / base_sps : 0.0,
                                     2)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("(profiles bit-identical across all worker counts and "
                "both kernels)\n");

    if (!json_path.empty()) {
        FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"svc_throughput\",\n");
        std::fprintf(f, "  \"streams\": %zu,\n", streams);
        std::fprintf(f, "  \"nsPerTransitionCompiled\": %.4f,\n",
                     compiled_ns);
        std::fprintf(f, "  \"nsPerTransitionReference\": %.4f,\n",
                     reference_ns);
        std::fprintf(f, "  \"nsPerTransitionInstrumented\": %.4f,\n",
                     instrumented_ns);
        std::fprintf(f, "  \"metricsOverheadPct\": %.4f,\n",
                     overhead_pct);
        std::fprintf(f, "  \"kernelSpeedup\": %.4f,\n", kernel_speedup);
        std::fprintf(f, "  \"logBytesV1\": %llu,\n",
                     static_cast<unsigned long long>(enc_bytes[0]));
        std::fprintf(f, "  \"logBytesV2\": %llu,\n",
                     static_cast<unsigned long long>(enc_bytes[1]));
        std::fprintf(f, "  \"logBytesElided\": %llu,\n",
                     static_cast<unsigned long long>(enc_bytes[2]));
        std::fprintf(f, "  \"compressionV2\": %.4f,\n", compression_v2);
        std::fprintf(f, "  \"compressionElided\": %.4f,\n",
                     compression_elided);
        std::fprintf(f, "  \"decodeNsPerRecordV1\": %.4f,\n", enc_ns[0]);
        std::fprintf(f, "  \"decodeNsPerRecordV2\": %.4f,\n", enc_ns[1]);
        std::fprintf(f, "  \"decodeNsPerRecordElided\": %.4f,\n",
                     enc_ns[2]);
        std::fprintf(f, "  \"decodeRatioV2\": %.4f,\n", decode_ratio);
        std::fprintf(f, "  \"streamsPerSec\": [\n");
        for (size_t i = 0; i < worker_sps.size(); ++i)
            std::fprintf(f,
                         "    {\"workers\": %u, \"streamsPerSec\": "
                         "%.2f}%s\n",
                         worker_sps[i].first, worker_sps[i].second,
                         i + 1 < worker_sps.size() ? "," : "");
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (min_speedup > 0.0 && kernel_speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: compiled kernel speedup %.2fx below the "
                     "required %.2fx\n", kernel_speedup, min_speedup);
        return 1;
    }
    if (max_overhead > 0.0 && overhead_pct > max_overhead) {
        std::fprintf(stderr,
                     "FAIL: metrics overhead %.2f%% exceeds the "
                     "allowed %.2f%%\n", overhead_pct, max_overhead);
        return 1;
    }
    if (min_compression > 0.0 && compression_v2 < min_compression) {
        std::fprintf(stderr,
                     "FAIL: v2 compression %.2fx below the required "
                     "%.2fx\n", compression_v2, min_compression);
        return 1;
    }
    if (max_decode_ratio > 0.0 && decode_ratio > max_decode_ratio) {
        std::fprintf(stderr,
                     "FAIL: v2 decode at %.2fx the v1 time exceeds "
                     "the allowed %.2fx\n", decode_ratio,
                     max_decode_ratio);
        return 1;
    }
    return 0;
}
