/**
 * @file
 * Replay-service throughput: streams/sec of batch replay at 1, 2, 4,
 * ... hardware_concurrency workers.
 *
 * Records one trace log per workload in a small `syn.gzip`-class set,
 * replicates the logs into a batch of streams, and replays the batch at
 * each worker count. Reports streams/sec, speedup over one worker, and
 * verifies at every scale that the merged profile is bit-identical to
 * the single-worker merge (the svc determinism contract).
 *
 * Note the speedup column measures the *host*: on a single-core
 * container every worker count necessarily lands near 1.0x.
 *
 * Usage: svc_throughput [--size test|train|ref] [--streams N]
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "bench/harness.hh"
#include "svc/replay_service.hh"
#include "svc/tracelog.hh"
#include "tea/builder.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "vm/machine.hh"

using namespace tea;
using namespace tea::bench;

namespace {

/** Record a workload's transition stream into an in-memory log. */
std::vector<uint8_t>
recordLog(const Program &prog)
{
    std::vector<uint8_t> bytes;
    TraceLogWriter writer(&bytes);
    Machine m(prog);
    BlockTracker tracker(
        prog, [&](const BlockTransition &tr) { writer.append(tr); },
        /*rep_per_iteration=*/false, /*collect_blocks=*/false);
    m.runHooked([&](const EdgeEvent &ev) { tracker.onEdge(ev); }, false);
    writer.finish();
    return bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    InputSize size = sizeFromArgs(argc, argv);
    size_t streams = 32;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--streams") && i + 1 < argc)
            streams = static_cast<size_t>(std::atoi(argv[i + 1]));

    // The syn.gzip-class set: data-dependent compression-loop CFGs.
    const std::vector<std::string> names{"syn.gzip", "syn.bzip2"};
    std::vector<std::shared_ptr<const Tea>> teas;
    std::vector<std::vector<uint8_t>> logs;
    uint64_t log_bytes = 0, log_records = 0;
    for (const std::string &name : names) {
        Workload w = Workloads::build(name, size);
        teas.push_back(std::make_shared<const Tea>(
            buildTea(recordWithDbt(w, "mret"))));
        logs.push_back(recordLog(w.program));
        log_bytes += logs.back().size();
        {
            TraceLogReader probe(logs.back());
            BlockTransition tr;
            while (probe.next(tr))
                ;
            log_records += probe.recordsRead();
        }
    }

    // One batch = `streams` jobs round-robined over the workload logs.
    // Jobs alternate automata, so the merge check below uses per-stream
    // profiles (cross-automaton merged profiles are deliberately empty).
    std::vector<ReplayJob> jobs;
    for (size_t i = 0; i < streams; ++i) {
        size_t k = i % names.size();
        jobs.push_back(ReplayJob{teas[k], "", &logs[k]});
    }

    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::printf("svc_throughput: %zu streams (%llu records, %.1f MiB of "
                "logs), host has %u hardware threads\n",
                streams, static_cast<unsigned long long>(
                             log_records * (streams / names.size())),
                static_cast<double>(log_bytes) / (1 << 20), hw);

    TextTable table({"workers", "batch ms", "streams/s", "speedup"});
    double base_sps = 0.0;
    BatchResult reference;
    for (unsigned workers = 1; workers <= std::max(4u, hw);
         workers *= 2) {
        ReplayService service(workers);
        service.runBatch(jobs); // warm-up: page in logs, fault stacks
        Stopwatch timer;
        BatchResult batch = service.runBatch(jobs);
        double ms = timer.elapsedMillis();
        if (batch.failures != 0) {
            std::fprintf(stderr, "%zu streams failed\n", batch.failures);
            return 1;
        }
        double sps = ms > 0 ? 1e3 * static_cast<double>(streams) / ms : 0;
        if (workers == 1) {
            base_sps = sps;
            reference = batch;
        } else {
            // Determinism across worker counts, checked at every scale.
            if (batch.total != reference.total) {
                std::fprintf(stderr,
                             "summed stats diverge at %u workers\n",
                             workers);
                return 1;
            }
            for (size_t i = 0; i < batch.streams.size(); ++i) {
                if (batch.streams[i].execCounts !=
                    reference.streams[i].execCounts) {
                    std::fprintf(stderr,
                                 "stream %zu profile diverges at %u "
                                 "workers\n", i, workers);
                    return 1;
                }
            }
        }
        table.addRow({std::to_string(workers), TextTable::num(ms, 1),
                      TextTable::num(sps, 1),
                      TextTable::num(base_sps > 0 ? sps / base_sps : 0.0,
                                     2)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("(profiles bit-identical across all worker counts)\n");
    return 0;
}
