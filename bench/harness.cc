#include "bench/harness.hh"

#include <algorithm>
#include <cstring>

#include "dbt/runtime.hh"
#include "tea/builder.hh"
#include "tea/recorder.hh"
#include "trace/factory.hh"
#include "util/timer.hh"
#include "vm/block.hh"
#include "vm/machine.hh"

namespace tea {
namespace bench {

namespace {

/**
 * Wall-clock of a deterministic run, minimum over a few repetitions
 * (the runs are identical, so the minimum is the least-noisy estimate).
 */
template <typename F>
double
minWallMs(F &&run, int reps = 3)
{
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        Stopwatch timer;
        run();
        best = std::min(best, timer.elapsedMillis());
    }
    return best;
}

} // namespace

Baseline
measureBaseline(const Workload &w)
{
    Baseline base;
    base.interpMs = minWallMs([&] {
        Machine machine(w.program);
        machine.run();
        base.icount = machine.icountRepPerIter();
    });
    return base;
}

double
modeledMillis(const Baseline &base, double host_ms)
{
    double overhead = std::max(0.0, host_ms - base.interpMs);
    return base.modeledNativeMs() + overhead;
}

TraceSet
recordWithDbt(const Workload &w, const std::string &selector,
              SelectorConfig config)
{
    DbtRuntime dbt(w.program);
    return dbt.record(selector, config).traces;
}

MemoryCell
memoryExperiment(const Workload &w, const std::string &selector,
                 SelectorConfig config)
{
    TraceSet traces = recordWithDbt(w, selector, config);

    MemoryCell cell;
    cell.traces = traces.size();
    cell.tbbs = traces.totalBlocks();
    for (const TraceMemory &m : accountTraces(w.program, traces))
        cell.dbtBytes += m.total();
    cell.teaBytes = buildTea(traces).serializedBytes();
    return cell;
}

RunOutcome
replayExperiment(const Workload &w, const Baseline &base,
                 const TraceSet &traces, LookupConfig config)
{
    Tea tea = buildTea(traces);
    RunOutcome out;
    // Edge instrumentation (§4.1): the replayer must see exactly the
    // transitions the StarDBT recorder saw, so no CPUID/REP splitting;
    // Pin's per-iteration REP counting still applies.
    out.hostMillis = minWallMs([&] {
        TeaReplayer replayer(tea, config);
        Machine machine(w.program);
        BlockTracker tracker(
            w.program,
            [&replayer](const BlockTransition &tr) { replayer.feed(tr); },
            /*rep_per_iteration=*/true, /*collect_blocks=*/false);
        machine.runHooked(
            [&tracker](const EdgeEvent &ev) { tracker.onEdge(ev); },
            /*split_at_special=*/false);
        out.stats = replayer.stats();
    });
    out.millis = modeledMillis(base, out.hostMillis);
    out.coverage = out.stats.coverage();
    out.traces = traces.size();
    return out;
}

RunOutcome
teaRecordExperiment(const Workload &w, const Baseline &base,
                    const std::string &selector, LookupConfig lookup,
                    SelectorConfig config)
{
    RunOutcome out;
    // Pin's own dynamic blocks: split at CPUID/REP, count per iteration.
    out.hostMillis = minWallMs([&] {
        TeaRecorder recorder(makeSelector(selector, config), lookup);
        Machine machine(w.program);
        BlockTracker tracker(
            w.program,
            [&recorder](const BlockTransition &tr) { recorder.feed(tr); },
            /*rep_per_iteration=*/true, /*collect_blocks=*/false);
        machine.runHooked(
            [&tracker](const EdgeEvent &ev) { tracker.onEdge(ev); },
            /*split_at_special=*/true);
        out.stats = recorder.stats();
        out.traces = recorder.traces().size();
    });
    out.millis = modeledMillis(base, out.hostMillis);
    out.coverage = out.stats.coverage();
    return out;
}

RunOutcome
dbtExperiment(const Workload &w, const Baseline &base,
              const std::string &selector, SelectorConfig config)
{
    DbtRuntime dbt(w.program);
    auto rec = dbt.record(selector, config);
    RunOutcome out;
    out.stats = rec.stats;
    out.coverage = rec.stats.coverage();
    out.traces = rec.traces.size();
    out.hostMillis = minWallMs([&] {
        Machine machine(w.program);
        uint64_t edges = 0;
        machine.runHooked([&edges](const EdgeEvent &) { ++edges; },
                          /*split_at_special=*/false);
    });
    out.millis = modeledMillis(base, out.hostMillis);
    return out;
}

OverheadRow
overheadExperiment(const Workload &w, const std::string &selector,
                   SelectorConfig config)
{
    Baseline base = measureBaseline(w);
    OverheadRow row;
    row.nativeMs = base.modeledNativeMs();

    { // Under the runtime with no tool loaded: edge dispatch only, with
      // the same hook policy as the replay runs for comparability.
        double host = minWallMs([&] {
            Machine machine(w.program);
            uint64_t edges = 0;
            machine.runHooked([&edges](const EdgeEvent &) { ++edges; },
                              /*split_at_special=*/false);
        });
        row.withoutToolMs = modeledMillis(base, host);
    }
    { // TEA with an empty trace set: B+ tree on, no local caches.
        TraceSet empty;
        LookupConfig cfg;
        cfg.useLocalCache = false;
        cfg.useCompiled = false;
        row.emptyMs = replayExperiment(w, base, empty, cfg).millis;
    }

    TraceSet traces = recordWithDbt(w, selector, config);
    auto run = [&](bool global, bool local, bool compiled) {
        LookupConfig cfg;
        cfg.useGlobalBTree = global;
        cfg.useLocalCache = local;
        cfg.useCompiled = compiled;
        return replayExperiment(w, base, traces, cfg).millis;
    };
    // The paper's three points, on the paper's structures.
    row.noGlobalLocalMs = run(false, true, false);
    row.globalNoLocalMs = run(true, false, false);
    row.globalLocalMs = run(true, true, false);
    // Ours: the same Global/Local function on the flat kernel.
    row.compiledMs = run(true, true, true);
    return row;
}

InputSize
sizeFromArgs(int argc, char **argv, InputSize fallback)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--size=", 7) == 0)
            return parseInputSize(arg + 7);
        if (std::strcmp(arg, "--size") == 0 && i + 1 < argc)
            return parseInputSize(argv[i + 1]);
    }
    return fallback;
}

} // namespace bench
} // namespace tea
