/**
 * @file
 * teaasm — standalone TinyX86 assembler / disassembler.
 *
 *   teaasm build <in.asm> -o <out.bin>    assemble to a raw code image
 *   teaasm dump <in.bin> [--base ADDR]    disassemble a raw code image
 *   teaasm check <in.asm>                 assemble and report statistics
 *
 * The binary image is the raw encoded code section
 * (Program::encodeImage); labels, the entry point, and data-section
 * contents are source-level concepts and are not part of the image, as
 * with any flat binary.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

using namespace tea;

namespace {

[[noreturn]] void
usage()
{
    std::fputs("usage: teaasm build <in.asm> -o <out.bin>\n"
               "       teaasm dump <in.bin> [--base ADDR]\n"
               "       teaasm check <in.asm>\n",
               stderr);
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
cmdBuild(const std::string &input, const std::string &output)
{
    Program prog = assemble(readFile(input));
    std::vector<uint8_t> image = prog.encodeImage();
    std::ofstream out(output, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", output.c_str());
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out)
        fatal("error writing '%s'", output.c_str());
    std::printf("%s: %zu instructions, %zu bytes, base %s\n",
                output.c_str(), prog.size(), image.size(),
                hex32(prog.baseAddr()).c_str());
    if (!prog.data().empty())
        warn("%zu data words are source-level only and not in the image",
             prog.data().size());
    return 0;
}

int
cmdDump(const std::string &input, Addr base)
{
    std::string raw = readFile(input);
    std::vector<uint8_t> bytes(raw.begin(), raw.end());
    Program prog = Program::decodeImage(bytes, base);
    std::fputs(disassemble(prog).c_str(), stdout);
    return 0;
}

int
cmdCheck(const std::string &input)
{
    Program prog = assemble(readFile(input));
    size_t branches = 0, indirect = 0, mem_ops = 0, specials = 0;
    for (const Insn &insn : prog.instructions()) {
        if (isControlFlow(insn.op)) {
            ++branches;
            if (insn.op != Opcode::Ret &&
                insn.dst.kind != OperandKind::Imm)
                ++indirect;
        }
        if (insn.dst.kind == OperandKind::Mem ||
            insn.src.kind == OperandKind::Mem)
            ++mem_ops;
        if (isPinBlockSplitter(insn.op))
            ++specials;
    }
    std::printf("%s: OK\n", input.c_str());
    std::printf("  %zu instructions, %zu code bytes (%.2f bytes/insn)\n",
                prog.size(), prog.codeBytes(),
                static_cast<double>(prog.codeBytes()) /
                    static_cast<double>(prog.size()));
    std::printf("  %zu labels, %zu data words, entry %s\n",
                prog.labels().size(), prog.data().size(),
                hex32(prog.entry()).c_str());
    std::printf("  %zu control transfers (%zu indirect), %zu memory "
                "operands, %zu CPUID/REP\n",
                branches, indirect, mem_ops, specials);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 3)
            usage();
        std::string command = argv[1];
        std::string input = argv[2];
        if (command == "build") {
            if (argc != 5 || std::strcmp(argv[3], "-o") != 0)
                usage();
            return cmdBuild(input, argv[4]);
        }
        if (command == "dump") {
            Addr base = 0x1000;
            if (argc == 5 && std::strcmp(argv[3], "--base") == 0) {
                int64_t v;
                if (!parseInt(argv[4], v))
                    usage();
                base = static_cast<Addr>(v);
            } else if (argc != 3) {
                usage();
            }
            return cmdDump(input, base);
        }
        if (command == "check")
            return cmdCheck(input);
        usage();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
