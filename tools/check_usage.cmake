# Usage-path smoke test for the teadbt CLI, run via
#   cmake -DTEADBT=<path> -P check_usage.cmake
#
# Every case below is an invalid invocation: it must exit nonzero and
# print the usage text to stderr. A case that "succeeds", crashes, or
# stays silent fails the test.

if(NOT TEADBT)
    message(FATAL_ERROR "pass -DTEADBT=<path to teadbt>")
endif()

# Each entry is a |-separated argv; NONE means "no arguments at all".
set(cases
    "NONE"                    # no subcommand
    "frobnicate"              # unknown subcommand
    "run"                     # missing <prog>
    "disasm"
    "record"
    "replay|syn.mcf"          # missing --traces
    "translate"
    "simulate"
    "info"                    # missing --traces/--tea
    "dot"
    "record-log|syn.mcf"      # missing --log
    "record-log"
    "record-log|syn.mcf|--log|o.tlog|--elide|--log-v1" # v1 can't elide
    "record-log|syn.mcf|--log|o.tlog|--teac|o.teac" # --teac needs --elide
    "log-info"                # missing <file.tlog>
    "log-info|a.tlog|b.tlog"  # excess positional
    "batch-replay"            # missing <tea> <log>...
    "batch-replay|only.tea"   # missing logs
    "batch-replay|--jobs|0|a.tea|b.tlog" # bad worker count
    "compile"                 # missing <tea> and --out
    "compile|a.tea"           # missing --out
    "compile|--out|dir"       # missing <tea> inputs
    "inspect"                 # missing <file.teac>
    "serve"                   # missing --listen
    "serve|--listen|tcp:127.0.0.1:0|--store" # flag without a value
    "serve|--listen|tcp:127.0.0.1:0|--max-resident-bytes|-1" # bad budget
    "serve|--listen|tcp:127.0.0.1:0|--max-resident|-1" # bad budget
    "serve|--listen"          # flag without a value
    "serve|--listen|tcp:127.0.0.1:0|--max-queue|0" # bad queue bound
    "serve|--listen|tcp:127.0.0.1:0|not-a-preload" # want name=tea
    "serve|--listen|tcp:127.0.0.1:0|--trace-ring|0" # ring needs slots
    "stats"                   # missing --connect
    "stats|--connect|tcp:localhost:9|--watch|0" # bad poll interval
    "serve|--listen|tcp:127.0.0.1:0|--stats-span-limit|0" # need >= 1
    "serve|--listen|tcp:127.0.0.1:0|--history-interval-ms|-1" # negative
    "serve|--listen|tcp:127.0.0.1:0|--history-frames|1" # ring needs 2
    "serve|--listen|tcp:127.0.0.1:0|--flight-dump" # flag without a value
    "flight-dump"             # missing --connect
    "remote-replay"           # missing --connect <name> <log>...
    "remote-replay|--connect|tcp:localhost:9" # missing name and logs
    "remote-replay|--connect|tcp:localhost:9|gzip" # missing logs
    "record|syn.mcf|stray-arg" # local record takes one positional
    "record|--connect|tcp:localhost:9" # missing name and logs
    "record|--connect|tcp:localhost:9|gzip" # missing logs
    "record|--connect|tcp:localhost:9|gzip|--live" # missing <prog>
    "record|--connect|tcp:localhost:9|gzip|a.tlog|--swap-interval|-1"
    "run|syn.mcf|stray-arg"   # excess positional
    "run|--bogus-flag"        # unknown flag
)

foreach(case IN LISTS cases)
    if(case STREQUAL "NONE")
        set(args "")
    else()
        string(REPLACE "|" ";" args "${case}")
    endif()
    execute_process(COMMAND ${TEADBT} ${args}
                    RESULT_VARIABLE rv
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(rv EQUAL 0)
        message(FATAL_ERROR "teadbt ${case}: expected failure, got exit 0")
    endif()
    if(NOT err MATCHES "usage:")
        message(FATAL_ERROR
                "teadbt ${case}: exit ${rv} but no usage on stderr:\n${err}")
    endif()
endforeach()

message(STATUS "all ${CMAKE_ARGC} usage paths exit nonzero with usage")
