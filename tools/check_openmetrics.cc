/**
 * @file
 * check_openmetrics: a deliberately small OpenMetrics lint for CI.
 *
 *   check_openmetrics [--require-label KEY] [file]
 *
 * Reads an exposition (file argument or stdin) and enforces the subset
 * of the spec our /metrics endpoint promises: every sample belongs to
 * a family announced by a preceding `# TYPE`, counter samples end in
 * `_total`, histogram samples end in `_bucket`/`_sum`/`_count`, every
 * value parses as a number, and the document ends with `# EOF`.
 * --require-label fails the run unless at least one sample carries
 * that label key (CI uses it to prove per-automaton series exist).
 * Exit 0 on a clean document, 1 with a line-numbered diagnostic.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

static int
fail(size_t line, const std::string &msg)
{
    std::fprintf(stderr, "check_openmetrics: line %zu: %s\n", line,
                 msg.c_str());
    return 1;
}

int
main(int argc, char **argv)
{
    std::string requireLabel, path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--require-label") == 0 && i + 1 < argc)
            requireLabel = argv[++i];
        else
            path = argv[i];
    }
    std::ifstream file;
    if (!path.empty()) {
        file.open(path);
        if (!file) {
            std::fprintf(stderr, "check_openmetrics: cannot open %s\n",
                         path.c_str());
            return 1;
        }
    }
    std::istream &in = path.empty() ? std::cin : file;

    std::map<std::string, std::string> types; // family -> type
    bool sawEof = false, sawLabel = requireLabel.empty();
    size_t lineNo = 0, samples = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lineNo;
        if (sawEof)
            return fail(lineNo, "content after # EOF");
        if (line.empty())
            return fail(lineNo, "blank line");
        if (line[0] == '#') {
            if (line == "# EOF") {
                sawEof = true;
            } else if (line.rfind("# TYPE ", 0) == 0) {
                std::istringstream ss(line.substr(7));
                std::string fam, type;
                if (!(ss >> fam >> type) ||
                    (type != "counter" && type != "gauge" &&
                     type != "histogram" && type != "summary" &&
                     type != "unknown" && type != "info"))
                    return fail(lineNo, "malformed TYPE line");
                if (!types.emplace(fam, type).second)
                    return fail(lineNo, "duplicate TYPE for " + fam);
            } // other comments (# HELP, # UNIT) pass through
            continue;
        }
        // Sample: name[{labels}] value [timestamp]
        size_t brace = line.find('{'), sp = line.find(' ');
        size_t nameEnd = std::min(brace, sp);
        if (nameEnd == std::string::npos || nameEnd == 0)
            return fail(lineNo, "malformed sample");
        std::string name = line.substr(0, nameEnd);
        size_t valAt = brace == std::string::npos
                           ? sp
                           : line.find(' ', line.find('}', brace));
        if (valAt == std::string::npos)
            return fail(lineNo, "sample has no value");
        char *end = nullptr;
        std::string val = line.substr(valAt + 1);
        std::strtod(val.c_str(), &end);
        if (end == val.c_str())
            return fail(lineNo, "unparseable value '" + val + "'");
        // Strip the per-type suffix to recover the family name.
        std::string fam = name;
        for (const char *sfx : {"_total", "_bucket", "_sum", "_count",
                                "_created"}) {
            size_t n = std::strlen(sfx);
            if (name.size() > n &&
                name.compare(name.size() - n, n, sfx) == 0 &&
                types.count(name.substr(0, name.size() - n))) {
                fam = name.substr(0, name.size() - n);
                break;
            }
        }
        auto it = types.find(fam);
        if (it == types.end())
            return fail(lineNo, "sample '" + name + "' has no TYPE");
        if (it->second == "counter" && fam == name)
            return fail(lineNo, "counter sample '" + name +
                                    "' must end in _total");
        if (!requireLabel.empty() && brace != std::string::npos &&
            line.find(requireLabel + "=", brace) <
                line.find('}', brace))
            sawLabel = true;
        ++samples;
    }
    if (!sawEof)
        return fail(lineNo, "document does not end with # EOF");
    if (!sawLabel)
        return fail(lineNo, "no sample carries label '" + requireLabel +
                                "'");
    std::printf("check_openmetrics: %zu samples in %zu families ok\n",
                samples, types.size());
    return 0;
}
